//! Streaming linearizability auditing over a bounded window.
//!
//! [`StreamingAuditor`] consumes sampled [`AuditRecord`]s from a live
//! deployment and maintains the order-graph atomicity check *online*: every
//! few completions it re-judges the retained window with
//! [`check_atomicity`], then truncates the settled prefix so the window
//! stays bounded while traffic runs indefinitely.
//!
//! # Why truncation is sound
//!
//! Records arrive through one channel, and each client emits its `Invoked`
//! record before the operation takes effect and its `Completed` record
//! after. Channel arrival order is therefore a faithful real-time witness:
//! if `a`'s completion record arrived before `b`'s invocation record, then
//! `a` really finished before `b` started. The auditor stamps every record
//! with `(at_micros, arrival index)`, so every op in the window
//! real-time-precedes every op that will ever arrive later.
//!
//! A completed operation `o` is dropped from the window only when all of:
//!
//! 1. **`o` precedes everything open** — `o.completed` is below the
//!    earliest invocation among pending and source-awaiting ops. Retained
//!    completed ops may overlap `o`, but every `o`-versus-retained
//!    constraint was already judged by the check that just passed, with
//!    both intervals final. Open ops and all future arrivals get even
//!    later stamps, so `o` real-time-precedes every op the checker will
//!    ever see again: no future edge *into* `o` can form, and `o`'s only
//!    remaining obligations point forward — which the floors below carry.
//! 2. **(writes) nobody in the window reads it** — a retained read of a
//!    dropped write would turn into a spurious `ReadWithoutSource`.
//! 3. **(writes) a settled read dominates it** — there exists a completed
//!    read `fr` with `tag(fr) > tag(o)` that `o` real-time-precedes
//!    (`fr.invoked > o.completed`) and that itself precedes every pending
//!    op and all future arrivals (`fr.completed` below the earliest
//!    pending/awaiting invocation). Any later read returning `tag(o)` then
//!    closes the cycle `fr → w(tag(o)) → fr` (rule 4 plus real time), i.e.
//!    it is a *genuine* new/old inversion — which is exactly how the
//!    auditor reports it: a read returning a tag at or below the truncated
//!    line is flagged without needing the dropped write back.
//!
//! What the future still owes the dropped prefix is carried by two
//! *floors*, judged when later reads are admitted:
//!
//! - The **write floor** (the truncated line) is the highest dropped write
//!   tag. A later read returning a tag at or below it — with no matching
//!   source retained or in flight — is a new/old inversion: the dominating
//!   frontier read of condition 3 finished before that read started.
//! - The **read floor** is the highest value any dropped read observed. A
//!   later read returning strictly less (again with no source retained or
//!   in flight) regresses behind that settled observation; equality is
//!   legal — one source may serve many reads.
//!
//! Writes are *not* judged against the floors: a write may legally mint a
//! tag below values already observed so long as nobody reads it — it
//! linearizes right after its invocation with no observer, and tag order
//! between writes is only constrained through reads. Reads of such a
//! write are legal too (the write intervenes between the old observation
//! and the new read), which is why a below-floor read first looks for a
//! retained or in-flight source and is flagged only when neither can
//! exist. The one write flagged outright is an exact re-mint of the
//! truncated line — a certain duplicate of a dropped tag. (Duplicates of
//! dropped tags strictly below the line are the one post-hoc judgment
//! truncation gives up: remembering every dropped tag forever would
//! unbound the auditor's memory.)
//!
//! Floor violations are genuine, not conservative: every dropped op
//! completed before each later op was invoked (condition 1 plus arrival
//! order), so the real-time edge the dropped witness would have
//! contributed is certain — only the witness itself is gone, which is why
//! these violations carry a compressed, single-node witness.
//!
//! Condition 3 is the stream-observed form of "settled at the GC
//! acknowledged floor": once the cluster floor reaches `f`, every reader
//! has completed a read at or above `f` (readers only read), so the
//! dominating read exists and the frontier tracks the floor. The auditor
//! uses the in-stream read frontier as the exact witness and records
//! [`AuditRecord::FloorAdvance`] announcements as corroboration (and as a
//! cue to attempt truncation).
//!
//! # Window-boundary (pending) operations
//!
//! Ops that started before the truncation line but have not finished are
//! *never* dropped: they are held outside the checked history (so the
//! checker's [`Timestamp::MAX`] open-op rejection never fires), their
//! invocation stamps hold the truncation line back (condition 1), and they
//! re-enter the window at their true interval when they complete. Reads
//! whose source write is still in flight (the value is visible at servers
//! before the writer's second round finishes) wait in a side pocket and are
//! spliced into the window when the write completes.

use std::collections::BTreeMap;
use std::fmt;

use mwr_core::{AuditRecord, OpId, OpKind, OpResult};
use mwr_sim::SimTime;
use mwr_types::TaggedValue;

use crate::graph::{check_atomicity, Verdict, Violation, WitnessNode};
use crate::history::{History, HistoryError, Operation, Timestamp};

/// Tuning for a [`StreamingAuditor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Soft cap on retained completed ops; the high-water mark in
    /// [`AuditStats`] reports how close traffic came to it. Truncation is
    /// driven by settledness, not by this cap — the cap only forces an
    /// early check-and-truncate attempt when exceeded.
    pub window: usize,
    /// Completions between incremental [`check_atomicity`] passes.
    pub check_interval: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { window: 4096, check_interval: 64 }
    }
}

/// Counters describing what a [`StreamingAuditor`] has seen and done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditStats {
    /// Total records observed (including any after a violation).
    pub records: u64,
    /// Completed operations admitted to the checked window.
    pub audited: u64,
    /// Settled operations dropped from the window.
    pub truncated: u64,
    /// Peak live footprint: retained + pending + source-awaiting ops.
    pub window_high_water: usize,
    /// Incremental checker passes run.
    pub checks: u64,
    /// Highest GC floor announced via [`AuditRecord::FloorAdvance`].
    pub announced_floor: Option<TaggedValue>,
    /// Highest tag returned by a completed read (the truncation frontier).
    pub read_frontier: Option<TaggedValue>,
    /// Completions with no matching invocation record (dropped samples).
    pub orphaned: u64,
}

/// Final report from [`StreamingAuditor::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// The verdict over everything observed.
    pub verdict: Verdict,
    /// Stream counters.
    pub stats: AuditStats,
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} audited, {} truncated, window hwm {}, {} checks)",
            if self.verdict.is_ok() { "ok" } else { "VIOLATION" },
            self.stats.audited,
            self.stats.truncated,
            self.stats.window_high_water,
            self.stats.checks,
        )
    }
}

/// Online atomicity judge over a floor-truncated window of live traffic.
///
/// Feed records with [`observe`](Self::observe); poll
/// [`verdict`](Self::verdict) between batches; call
/// [`finish`](Self::finish) at shutdown for the final report. The first
/// violation is sticky: subsequent records are counted but not checked.
///
/// # Examples
///
/// ```
/// use mwr_check::{AuditRecord, StreamingAuditor};
/// use mwr_core::{OpKind, OpResult};
/// use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};
///
/// let mut auditor = StreamingAuditor::default();
/// let w = ClientId::writer(0);
/// let tv = TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(7));
/// auditor.observe(AuditRecord::Invoked {
///     client: w, seq: 0, kind: OpKind::Write(Value::new(7)), at_micros: 0,
/// });
/// auditor.observe(AuditRecord::Completed {
///     client: w, seq: 0, result: OpResult::Written(tv), at_micros: 5,
/// });
/// let report = auditor.finish();
/// assert!(report.verdict.is_ok());
/// assert_eq!(report.stats.audited, 1);
/// ```
#[derive(Debug)]
pub struct StreamingAuditor {
    cfg: StreamConfig,
    /// Arrival counter; doubles as the timestamp tiebreaker (starts at 1 so
    /// [`Timestamp::MIN`] stays strictly first).
    arrivals: u64,
    /// Invoked but not completed: op → (kind, invocation stamp).
    pending: BTreeMap<OpId, (OpKind, Timestamp)>,
    /// Completed ops retained for checking, sorted by completion stamp.
    window: Vec<Operation>,
    /// Completed reads whose source write has not completed yet.
    awaiting_source: BTreeMap<TaggedValue, Vec<Operation>>,
    /// Tags of writes currently in the window.
    window_write_tags: BTreeMap<TaggedValue, ()>,
    /// Highest tag among truncated writes; a later read at or below this
    /// line is a genuine new/old inversion (see module docs).
    truncated_line: Option<TaggedValue>,
    /// Highest value observed by a truncated read; a later sourceless read
    /// strictly below it regresses behind a settled observation (see
    /// module docs).
    read_floor: Option<TaggedValue>,
    since_check: usize,
    verdict: Verdict,
    error: Option<HistoryError>,
    stats: AuditStats,
}

impl Default for StreamingAuditor {
    fn default() -> Self {
        Self::new(StreamConfig::default())
    }
}

impl StreamingAuditor {
    /// A fresh auditor with the given tuning.
    pub fn new(cfg: StreamConfig) -> Self {
        StreamingAuditor {
            cfg: StreamConfig {
                window: cfg.window.max(1),
                check_interval: cfg.check_interval.max(1),
            },
            arrivals: 0,
            pending: BTreeMap::new(),
            window: Vec::new(),
            awaiting_source: BTreeMap::new(),
            window_write_tags: BTreeMap::new(),
            truncated_line: None,
            read_floor: None,
            since_check: 0,
            verdict: Verdict::Ok,
            error: None,
            stats: AuditStats::default(),
        }
    }

    /// The verdict so far. Sticky: once a violation is recorded the auditor
    /// stops checking and keeps only counting.
    pub fn verdict(&self) -> &Verdict {
        &self.verdict
    }

    /// Stream counters so far.
    pub fn stats(&self) -> &AuditStats {
        &self.stats
    }

    /// A malformed-stream error, if one occurred (a client overlapping its
    /// own ops — impossible for the blocking runtime clients).
    pub fn error(&self) -> Option<&HistoryError> {
        self.error.as_ref()
    }

    /// Current live footprint: retained + pending + source-awaiting ops.
    pub fn live_ops(&self) -> usize {
        self.window.len()
            + self.pending.len()
            + self.awaiting_source.values().map(Vec::len).sum::<usize>()
    }

    /// Consume one record.
    pub fn observe(&mut self, record: AuditRecord) {
        self.stats.records += 1;
        if !self.verdict.is_ok() || self.error.is_some() {
            return;
        }
        self.arrivals += 1;
        let stamp = |arrivals: u64, at_micros: u64| Timestamp {
            time: SimTime::from_ticks(at_micros),
            seq: arrivals,
        };
        match record {
            AuditRecord::Invoked { client, seq, kind, at_micros } => {
                let id = OpId { client, seq };
                self.pending.insert(id, (kind, stamp(self.arrivals, at_micros)));
            }
            AuditRecord::Completed { client, seq, result, at_micros } => {
                let id = OpId { client, seq };
                let Some((kind, invoked)) = self.pending.remove(&id) else {
                    // The invocation record was sampled away or dropped by
                    // a full channel; without an interval there is nothing
                    // sound to check.
                    self.stats.orphaned += 1;
                    return;
                };
                let op = Operation {
                    id,
                    kind,
                    result,
                    invoked,
                    completed: stamp(self.arrivals, at_micros),
                };
                self.admit(op);
                self.since_check += 1;
                if self.since_check >= self.cfg.check_interval
                    || self.window.len() > self.cfg.window
                {
                    self.check_and_truncate();
                }
            }
            AuditRecord::FloorAdvance { floor } => {
                let advanced = self.stats.announced_floor.is_none_or(|f| floor > f);
                if advanced {
                    self.stats.announced_floor = Some(floor);
                    // The floor moving is the natural moment to try to
                    // shed settled history.
                    self.check_and_truncate();
                }
            }
        }
        self.stats.window_high_water = self.stats.window_high_water.max(self.live_ops());
    }

    /// Admit a completed op to the window (or park a read that arrived
    /// before its source write completed).
    fn admit(&mut self, op: Operation) {
        match op.result {
            OpResult::Written(tv) => {
                if self.truncated_line == Some(tv) {
                    // An exact re-mint of the highest truncated write tag:
                    // a duplicate whose original witness is gone, so the
                    // pair collapses (the post-hoc checker does the same
                    // for a write producing the initial tag).
                    self.verdict = Verdict::Violation(Violation::DuplicateWriteTag {
                        value: tv,
                        writes: (op.id, op.id),
                    });
                    return;
                }
                self.window_write_tags.insert(tv, ());
                self.push_sorted(op);
                if let Some(readers) = self.awaiting_source.remove(&tv) {
                    for read in readers {
                        self.note_read(read.tagged_value());
                        self.push_sorted(read);
                        self.stats.audited += 1;
                    }
                }
                self.stats.audited += 1;
            }
            OpResult::Read(tv) => {
                self.note_read(tv);
                let source_in_flight = self
                    .pending
                    .values()
                    .any(|(kind, _)| matches!(kind, OpKind::Write(v) if *v == tv.value()));
                if tv == TaggedValue::initial() || self.window_write_tags.contains_key(&tv) {
                    self.push_sorted(op);
                    self.stats.audited += 1;
                } else if source_in_flight {
                    // The value is visible at the servers before the
                    // writer's second round completes: park the read and
                    // splice it in when the write lands. Even a write
                    // minting a tag below the floors is a legal source for
                    // reads that overlap it, so this gate comes first.
                    self.awaiting_source.entry(tv).or_default().push(op);
                } else if self.truncated_line.is_some_and(|line| tv <= line) {
                    // No source retained or in flight, and the tag sits at
                    // or below the truncated line: a dominating read
                    // completed before this one was even invoked, so
                    // returning this value is a new/old inversion
                    // regardless of which write carried it (or whether one
                    // did).
                    self.verdict =
                        Verdict::Violation(Violation::ReadWithoutSource { read: op.id, value: tv });
                } else if self.read_floor.is_some_and(|floor| tv < floor) {
                    // A truncated read observed a strictly newer value
                    // before this read was invoked: new/old inversion with
                    // the witness compressed to the offending op.
                    self.verdict =
                        Verdict::Violation(Violation::Cycle { nodes: vec![WitnessNode::Op(op.id)] });
                } else {
                    // No completed source yet and nothing rules one out:
                    // wait for it.
                    self.awaiting_source.entry(tv).or_default().push(op);
                }
            }
        }
    }

    /// Insert keeping the window sorted by completion stamp. Ops almost
    /// always arrive in completion order; only reads resolved out of
    /// `awaiting_source` land in the interior.
    fn push_sorted(&mut self, op: Operation) {
        let at = self
            .window
            .iter()
            .rposition(|o| o.completed <= op.completed)
            .map_or(0, |i| i + 1);
        self.window.insert(at, op);
    }

    fn note_read(&mut self, tv: TaggedValue) {
        if self.stats.read_frontier.is_none_or(|f| tv > f) {
            self.stats.read_frontier = Some(tv);
        }
    }

    fn check_and_truncate(&mut self) {
        self.since_check = 0;
        self.stats.checks += 1;
        match History::from_operations(self.window.clone()) {
            Ok(history) => match check_atomicity(&history) {
                Verdict::Ok => self.truncate(),
                violation => self.verdict = violation,
            },
            Err(err) => self.error = Some(err),
        }
    }

    /// Drop the settled prefix of the window (see module docs for the
    /// three conditions and why they are exact).
    fn truncate(&mut self) {
        if self.window.is_empty() {
            return;
        }
        // Earliest invocation among ops that are still open: pending ops
        // and reads waiting on their source.
        let open_min = self
            .pending
            .values()
            .map(|(_, invoked)| *invoked)
            .chain(self.awaiting_source.values().flatten().map(|o| o.invoked))
            .min()
            .unwrap_or(Timestamp::MAX);
        // Condition 1: the settled prefix — ops that completed before any
        // open op was invoked (the window is completion-sorted, so this is
        // a prefix). Retained completed ops may overlap the prefix, but
        // those pairs were judged by the check that just passed; open and
        // future ops only ever follow it.
        let settled = self.window.partition_point(|o| o.completed < open_min);
        if settled == 0 {
            return;
        }
        // Settled dominating reads: completed before every open op, so they
        // also precede every future arrival. Sorted by invocation with a
        // suffix max of tags, so "is there a dominating read invoked after
        // this write completed" is a binary search.
        let mut frontier: Vec<(Timestamp, TaggedValue)> = self.window[..settled]
            .iter()
            .filter(|o| o.is_read())
            .map(|o| (o.invoked, o.tagged_value()))
            .collect();
        frontier.sort_by_key(|&(invoked, _)| invoked);
        let mut frontier_max = vec![None::<TaggedValue>; frontier.len() + 1];
        for i in (0..frontier.len()).rev() {
            let below = frontier_max[i + 1];
            frontier_max[i] = Some(below.map_or(frontier[i].1, |b: TaggedValue| b.max(frontier[i].1)));
        }
        let dominated = |w: &Operation| -> bool {
            let tag = w.tagged_value();
            let from = frontier.partition_point(|&(invoked, _)| invoked <= w.completed);
            frontier_max[from].is_some_and(|best| best > tag)
        };
        // Condition 3 bounds the prefix at the first undominated write.
        let mut cut = self.window[..settled]
            .iter()
            .position(|op| op.is_write() && !dominated(op))
            .unwrap_or(settled);
        // Condition 2: every retained read's source must stay retained, so
        // a write whose reader survives the cut pins the prefix at itself.
        // Shrinking the cut can orphan further writes; iterate to fixpoint
        // (the cut strictly decreases, so this terminates).
        let mut reads_of: BTreeMap<TaggedValue, usize> = BTreeMap::new();
        for op in self.window.iter().filter(|o| o.is_read()) {
            *reads_of.entry(op.tagged_value()).or_default() += 1;
        }
        loop {
            let mut reads_inside: BTreeMap<TaggedValue, usize> = BTreeMap::new();
            for op in self.window[..cut].iter().filter(|o| o.is_read()) {
                *reads_inside.entry(op.tagged_value()).or_default() += 1;
            }
            let pinned = self.window[..cut].iter().position(|op| {
                op.is_write() && {
                    let tag = op.tagged_value();
                    reads_of.get(&tag).copied().unwrap_or(0)
                        > reads_inside.get(&tag).copied().unwrap_or(0)
                }
            });
            match pinned {
                Some(at) => cut = at,
                None => break,
            }
        }
        if cut == 0 {
            return;
        }
        for op in &self.window[..cut] {
            let tv = op.tagged_value();
            if op.is_write() {
                self.window_write_tags.remove(&tv);
                if self.truncated_line.is_none_or(|line| tv > line) {
                    self.truncated_line = Some(tv);
                }
            } else if self.read_floor.is_none_or(|floor| tv > floor) {
                self.read_floor = Some(tv);
            }
        }
        self.window.drain(..cut);
        self.stats.truncated += cut as u64;
    }

    /// Run a final check and produce the report. Reads still waiting for a
    /// source write that never completed in the stream are reported as
    /// [`Violation::ReadWithoutSource`] — exactly what the post-hoc checker
    /// says about the same records.
    pub fn finish(mut self) -> AuditReport {
        if self.verdict.is_ok() && self.error.is_none() {
            self.check_and_truncate();
        }
        if self.verdict.is_ok() && self.error.is_none() {
            if let Some((&value, reads)) = self.awaiting_source.iter().next() {
                self.verdict =
                    Verdict::Violation(Violation::ReadWithoutSource { read: reads[0].id, value });
            }
        }
        AuditReport { verdict: self.verdict, stats: self.stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::{ClientId, Tag, Value, WriterId};

    fn tv(ts: u64, writer: u32, value: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts, WriterId::new(writer)), Value::new(value))
    }

    struct Feed {
        auditor: StreamingAuditor,
        micros: u64,
        seqs: BTreeMap<ClientId, u64>,
    }

    impl Feed {
        fn new(cfg: StreamConfig) -> Self {
            Feed { auditor: StreamingAuditor::new(cfg), micros: 0, seqs: BTreeMap::new() }
        }

        fn invoke(&mut self, client: ClientId, kind: OpKind) -> u64 {
            let seq = *self.seqs.entry(client).or_insert(0);
            self.seqs.insert(client, seq + 1);
            self.micros += 1;
            self.auditor.observe(AuditRecord::Invoked {
                client,
                seq,
                kind,
                at_micros: self.micros,
            });
            seq
        }

        fn complete(&mut self, client: ClientId, seq: u64, result: OpResult) {
            self.micros += 1;
            self.auditor.observe(AuditRecord::Completed {
                client,
                seq,
                result,
                at_micros: self.micros,
            });
        }

        fn write(&mut self, writer: u32, value: TaggedValue) {
            let client = ClientId::writer(writer);
            let seq = self.invoke(client, OpKind::Write(value.value()));
            self.complete(client, seq, OpResult::Written(value));
        }

        fn read(&mut self, reader: u32, value: TaggedValue) {
            let client = ClientId::reader(reader);
            let seq = self.invoke(client, OpKind::Read);
            self.complete(client, seq, OpResult::Read(value));
        }
    }

    /// Sequential write/read pairs truncate down to a bounded window.
    #[test]
    fn settled_history_is_truncated() {
        let mut feed = Feed::new(StreamConfig { window: 64, check_interval: 8 });
        for i in 1..=200u64 {
            let value = tv(i, 0, i);
            feed.write(0, value);
            feed.read(0, value);
        }
        let stats = *feed.auditor.stats();
        assert!(stats.truncated > 300, "truncated {}", stats.truncated);
        assert!(
            stats.window_high_water <= 64,
            "window high-water {} should stay near the check interval",
            stats.window_high_water
        );
        let report = feed.auditor.finish();
        assert!(report.verdict.is_ok(), "{:?}", report.verdict);
    }

    /// A pending op invoked before the truncation line pins the window:
    /// nothing behind its invocation is dropped, and it is judged at its
    /// true interval once it completes.
    #[test]
    fn pending_op_holds_the_window_open() {
        let mut feed = Feed::new(StreamConfig { window: 1024, check_interval: 4 });
        let reader = ClientId::reader(1);
        feed.write(0, tv(1, 0, 1));
        let slow = feed.invoke(reader, OpKind::Read);
        for i in 2..=40u64 {
            let value = tv(i, 0, i);
            feed.write(0, value);
            feed.read(0, value);
        }
        // The slow read's invocation stamp fences truncation.
        assert_eq!(feed.auditor.stats().truncated, 0);
        assert!(feed.auditor.pending.len() == 1);
        // It completes with the value current at its invocation: legal
        // (concurrent with everything since), and now history can settle.
        feed.complete(reader, slow, OpResult::Read(tv(1, 0, 1)));
        for i in 41..=60u64 {
            let value = tv(i, 0, i);
            feed.write(0, value);
            feed.read(0, value);
        }
        let report = feed.auditor.finish();
        assert!(report.verdict.is_ok(), "{:?}", report.verdict);
        assert!(report.stats.truncated > 0);
    }

    /// A stale read arriving after its source write was truncated is still
    /// flagged: the truncated line stands in for the dropped write.
    #[test]
    fn stale_read_below_truncated_line_is_flagged() {
        let mut feed = Feed::new(StreamConfig { window: 1024, check_interval: 2 });
        for i in 1..=30u64 {
            let value = tv(i, 0, i);
            feed.write(0, value);
            feed.read(0, value);
        }
        assert!(feed.auditor.stats().truncated > 0, "history should have settled");
        assert!(
            feed.auditor.truncated_line.is_some_and(|line| line >= tv(5, 0, 5)),
            "the truncated line should cover the stale tag"
        );
        feed.read(1, tv(5, 0, 5));
        let report = feed.auditor.finish();
        match report.verdict {
            Verdict::Violation(Violation::ReadWithoutSource { value, .. }) => {
                assert_eq!(value, tv(5, 0, 5));
            }
            other => panic!("expected stale-read violation, got {other:?}"),
        }
    }

    /// A read may legally return a write that is still in flight; the read
    /// waits in the side pocket and is judged when the write completes.
    #[test]
    fn read_of_inflight_write_waits_for_the_source() {
        let mut feed = Feed::new(StreamConfig::default());
        feed.write(0, tv(1, 0, 1));
        let writer = ClientId::writer(1);
        let value = tv(2, 1, 7);
        let wseq = feed.invoke(writer, OpKind::Write(value.value()));
        feed.read(0, value); // sees the in-flight write at the servers
        assert!(feed.auditor.verdict().is_ok());
        feed.complete(writer, wseq, OpResult::Written(value));
        let report = feed.auditor.finish();
        assert!(report.verdict.is_ok(), "{:?}", report.verdict);
    }

    /// A read of a value nobody ever wrote is a violation at finish.
    #[test]
    fn thin_air_read_is_flagged_at_finish() {
        let mut feed = Feed::new(StreamConfig::default());
        feed.write(0, tv(1, 0, 1));
        feed.read(0, tv(9, 1, 99));
        let report = feed.auditor.finish();
        match report.verdict {
            Verdict::Violation(Violation::ReadWithoutSource { value, .. }) => {
                assert_eq!(value, tv(9, 1, 99));
            }
            other => panic!("expected thin-air violation, got {other:?}"),
        }
    }

    /// New/old inversion inside the window is caught by the incremental
    /// check, before any truncation.
    #[test]
    fn inversion_in_window_is_caught() {
        let mut feed = Feed::new(StreamConfig { window: 1024, check_interval: 1 });
        let v1 = tv(1, 0, 1);
        let v2 = tv(2, 1, 2);
        // Two concurrent writes, then sequential reads seeing new-then-old.
        let w0 = ClientId::writer(0);
        let w1 = ClientId::writer(1);
        let s0 = feed.invoke(w0, OpKind::Write(v1.value()));
        let s1 = feed.invoke(w1, OpKind::Write(v2.value()));
        feed.complete(w0, s0, OpResult::Written(v1));
        feed.complete(w1, s1, OpResult::Written(v2));
        // Overlapping reads (new then old) keep both in the window: the
        // pending second read fences truncation until it completes.
        let r0 = ClientId::reader(0);
        let r1 = ClientId::reader(1);
        let t0 = feed.invoke(r0, OpKind::Read);
        let t1 = feed.invoke(r1, OpKind::Read);
        feed.complete(r0, t0, OpResult::Read(v2));
        feed.complete(r1, t1, OpResult::Read(v1));
        let report = feed.auditor.finish();
        assert!(
            matches!(report.verdict, Verdict::Violation(Violation::Cycle { .. })),
            "expected a cycle, got {:?}",
            report.verdict
        );
    }

    /// A fresh write minting a tag below the truncated line is legal — it
    /// linearizes after its invocation with no observer — and so is a
    /// subsequent read of it (the write intervenes between the settled
    /// observations and the read).
    #[test]
    fn fresh_write_below_the_line_is_legal_and_readable() {
        let mut feed = Feed::new(StreamConfig { window: 1024, check_interval: 2 });
        for i in 10..=40u64 {
            let value = tv(i, 0, i);
            feed.write(0, value);
            feed.read(0, value);
        }
        assert!(feed.auditor.stats().truncated > 0, "history should have settled");
        assert!(feed.auditor.truncated_line.is_some_and(|line| line > tv(5, 1, 5)));
        feed.write(1, tv(5, 1, 5));
        feed.read(1, tv(5, 1, 5));
        let report = feed.auditor.finish();
        assert!(report.verdict.is_ok(), "{:?}", report.verdict);
    }

    /// A write re-minting the truncated line exactly is a duplicate of a
    /// dropped tag and is flagged outright.
    #[test]
    fn duplicate_of_a_truncated_write_tag_is_flagged() {
        let mut feed = Feed::new(StreamConfig { window: 1024, check_interval: 2 });
        for i in 1..=30u64 {
            let value = tv(i, 0, i);
            feed.write(0, value);
            feed.read(0, value);
        }
        let line = feed.auditor.truncated_line.expect("history should have settled");
        feed.write(0, line);
        let report = feed.auditor.finish();
        assert!(
            matches!(report.verdict, Verdict::Violation(Violation::DuplicateWriteTag { .. })),
            "expected a duplicate-tag violation, got {:?}",
            report.verdict
        );
    }

    /// A read regressing strictly behind a truncated read's observation is
    /// flagged even when the observed value's *write* is still retained:
    /// the read floor stands in for the dropped read.
    #[test]
    fn read_regressing_behind_a_truncated_read_is_flagged() {
        let mut feed = Feed::new(StreamConfig { window: 1024, check_interval: 1 });
        feed.write(0, tv(1, 0, 1));
        // A read returns the in-flight write's value (legal: visible at the
        // servers first), completing before the write does; once the write
        // lands, the read settles and is truncated while its source stays.
        let writer = ClientId::writer(1);
        let v5 = tv(5, 1, 5);
        let wseq = feed.invoke(writer, OpKind::Write(v5.value()));
        feed.read(0, v5);
        feed.complete(writer, wseq, OpResult::Written(v5));
        assert!(feed.auditor.stats().truncated > 0, "the settled read should be dropped");
        assert_eq!(feed.auditor.read_floor, Some(v5));
        assert!(feed.auditor.window_write_tags.contains_key(&v5), "source stays retained");
        // Older than the dropped read's observation, newer than any
        // truncated write: only the read floor can catch this.
        feed.read(1, tv(3, 0, 3));
        let report = feed.auditor.finish();
        assert!(
            matches!(report.verdict, Verdict::Violation(Violation::Cycle { .. })),
            "expected a read-floor violation, got {:?}",
            report.verdict
        );
    }

    /// Violations are sticky: later records only bump counters.
    #[test]
    fn verdict_is_sticky() {
        let mut feed = Feed::new(StreamConfig { window: 1024, check_interval: 1 });
        let v1 = tv(1, 0, 1);
        let v2 = tv(2, 1, 2);
        let w0 = ClientId::writer(0);
        let w1 = ClientId::writer(1);
        let s0 = feed.invoke(w0, OpKind::Write(v1.value()));
        let s1 = feed.invoke(w1, OpKind::Write(v2.value()));
        feed.complete(w0, s0, OpResult::Written(v1));
        feed.complete(w1, s1, OpResult::Written(v2));
        feed.read(0, v2);
        feed.read(1, v1);
        let frozen = feed.auditor.verdict().clone();
        assert!(!frozen.is_ok());
        feed.write(0, tv(3, 0, 3));
        feed.read(0, tv(3, 0, 3));
        assert_eq!(*feed.auditor.verdict(), frozen);
        let report = feed.auditor.finish();
        assert_eq!(report.verdict, frozen);
        assert!(report.stats.records >= 12);
    }
}
