//! Polynomial-time atomicity checking for uniquely-tagged register
//! histories, by constraint-graph saturation.
//!
//! Every write in our histories carries a unique [`TaggedValue`] (tags embed
//! the writer id, and each writer's timestamps increase), so the *reads-from*
//! relation is observable. Under unique values, atomicity (Definition 2.1 of
//! the paper) is decidable in polynomial time by saturating an order graph
//! with four sound rules and checking acyclicity:
//!
//! 1. **Real-time**: `a → b` when `a.f < b.s` (the paper's `≺σ`).
//! 2. **Read-from**: `w(v) → r(v)`.
//! 3. **No intervening write before the read's source**: if `w' ⇝ r(v)` for
//!    a write `w' ≠ w(v)`, then `w' → w(v)` — otherwise `w'` would fall
//!    between `w(v)` and `r(v)` in any linearization extending the graph,
//!    contradicting the read-from requirement.
//! 4. **Reads precede later writes**: if `w(v) ⇝ w'`, then `r(v) → w'`.
//!
//! (`⇝` is reachability.) Saturation runs rules 3–4 to fixpoint, recomputing
//! reachability; the history is atomic iff the final graph is acyclic. For
//! registers with unique values this rule set is complete (Gibbons & Korach's
//! *VL* analysis; cf. Wei et al.'s atomicity verification, ref [28] of the
//! paper) — the property-based tests in this crate cross-validate the verdict
//! against the exhaustive [`search`](crate::search_atomicity) oracle on
//! thousands of random histories.
//!
//! Complexity: `O(k · n³/64)` with bitset reachability, where `k` is the
//! number of saturation rounds (tiny in practice). The `checker` Criterion
//! bench measures it.

use std::fmt;

use mwr_types::TaggedValue;

use crate::history::{History, Operation, Timestamp};
use mwr_core::OpId;

/// A node in a violation witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessNode {
    /// The virtual write that installed the initial value `(0, ⊥)`.
    InitialWrite,
    /// A real operation.
    Op(OpId),
}

impl fmt::Display for WitnessNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessNode::InitialWrite => write!(f, "⟨init⟩"),
            WitnessNode::Op(op) => write!(f, "{op}"),
        }
    }
}

/// Why a history is not atomic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A read returned a value no write produced ("thin air").
    ReadWithoutSource {
        /// The offending read.
        read: OpId,
        /// The unexplained value.
        value: TaggedValue,
    },
    /// Two writes produced the same tag — the tag discipline itself broke
    /// (MWA0 fallout), so reads-from is ambiguous.
    DuplicateWriteTag {
        /// The shared tag.
        value: TaggedValue,
        /// The two writes.
        writes: (OpId, OpId),
    },
    /// The saturated order graph has a cycle: no linearization can satisfy
    /// both the real-time order and the read-from requirement.
    Cycle {
        /// Operations forming the cycle, in order.
        nodes: Vec<WitnessNode>,
    },
    /// The history contains operations that never completed; run the
    /// execution to quiescence before checking.
    OpenOperations {
        /// How many operations were open.
        count: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ReadWithoutSource { read, value } => {
                write!(f, "read {read} returned {value}, which no write produced")
            }
            Violation::DuplicateWriteTag { value, writes } => write!(
                f,
                "writes {} and {} both produced {value}",
                writes.0, writes.1
            ),
            Violation::Cycle { nodes } => {
                write!(f, "ordering contradiction: ")?;
                for (i, n) in nodes.iter().enumerate() {
                    if i > 0 {
                        write!(f, " → ")?;
                    }
                    write!(f, "{n}")?;
                }
                Ok(())
            }
            Violation::OpenOperations { count } => {
                write!(f, "{count} operation(s) never completed")
            }
        }
    }
}

/// The read→write analogue of MWA2, required (together with MWA0–MWA4)
/// for the tag order to be a legal linearization of an *arbitrary*
/// uniquely-tagged history: a write invoked after a read completed must
/// carry a strictly larger tag than the value that read returned.
fn writes_dominate_preceding_reads(history: &History) -> bool {
    history.reads().all(|r| {
        history
            .writes()
            .all(|w| !r.precedes(w) || w.tagged_value().tag() > r.tagged_value().tag())
    })
}

/// The outcome of a consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The history satisfies the property.
    Ok,
    /// The history violates it, with a witness.
    Violation(Violation),
}

impl Verdict {
    /// Whether the property holds.
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Ok)
    }

    /// The violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            Verdict::Ok => None,
            Verdict::Violation(v) => Some(v),
        }
    }
}

/// Square bitset adjacency/reachability matrix.
#[derive(Clone)]
struct BitMatrix {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl BitMatrix {
    fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        BitMatrix { n, words, rows: vec![0; n * words] }
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize) {
        self.rows[i * self.words + j / 64] |= 1 << (j % 64);
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> bool {
        self.rows[i * self.words + j / 64] & (1 << (j % 64)) != 0
    }

    /// Warshall's transitive closure with word-parallel row unions.
    fn transitive_closure(&self) -> BitMatrix {
        let mut c = self.clone();
        for k in 0..c.n {
            let krow: Vec<u64> =
                c.rows[k * c.words..(k + 1) * c.words].to_vec();
            for i in 0..c.n {
                if c.get(i, k) {
                    let base = i * c.words;
                    for (w, &bits) in krow.iter().enumerate() {
                        c.rows[base + w] |= bits;
                    }
                }
            }
        }
        c
    }
}

/// A direct-edge graph with an incrementally maintained transitive closure.
///
/// The saturation loop adds edges one at a time; recomputing a full
/// Warshall closure per round made each round `O(n³/64)` and dominated the
/// checker on long histories (the ROADMAP's second perf item). Instead the
/// closure is computed once and then *maintained*: inserting `u → v` unions
/// `reach(v) ∪ {v}` into the row of `u` and of every node that reaches `u`
/// — `O(n²/64)` per edge that actually changes reachability, and a no-op
/// for edges already implied.
struct Reach {
    /// Direct edges only (what `extract_cycle` walks).
    direct: BitMatrix,
    /// Reachability over `direct` (irreflexive unless a cycle exists).
    closed: BitMatrix,
}

impl Reach {
    fn new(direct: BitMatrix) -> Self {
        let closed = direct.transitive_closure();
        Reach { direct, closed }
    }

    /// First node on a cycle, if any.
    fn cycle_node(&self) -> Option<usize> {
        (0..self.closed.n).find(|&i| self.closed.get(i, i))
    }

    /// Whether `j` is reachable from `i` via one or more direct edges.
    #[inline]
    fn reaches(&self, i: usize, j: usize) -> bool {
        self.closed.get(i, j)
    }

    /// Inserts the direct edge `u → v`, updating the closure. Returns
    /// `Some(node)` if the insertion created a cycle through `node`.
    fn add_edge(&mut self, u: usize, v: usize) -> Option<usize> {
        self.direct.set(u, v);
        if self.closed.get(u, v) {
            return None; // already implied: closure unchanged
        }
        let creates_cycle = u == v || self.closed.get(v, u);
        // target = reach(v) ∪ {v}
        let words = self.closed.words;
        let mut target: Vec<u64> = self.closed.rows[v * words..(v + 1) * words].to_vec();
        target[v / 64] |= 1 << (v % 64);
        for i in 0..self.closed.n {
            if i == u || self.closed.get(i, u) {
                let base = i * words;
                for (w, &bits) in target.iter().enumerate() {
                    self.closed.rows[base + w] |= bits;
                }
            }
        }
        creates_cycle.then_some(u)
    }
}

/// Checks a history for atomicity (Definition 2.1).
///
/// # Examples
///
/// A stale read is caught:
///
/// ```
/// use mwr_check::{check_atomicity, History, Operation, Timestamp};
/// use mwr_core::{OpId, OpKind, OpResult};
/// use mwr_sim::SimTime;
/// use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};
///
/// let ts = |t: u64| Timestamp { time: SimTime::from_ticks(t), seq: t };
/// let v1 = TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(1));
/// let v2 = TaggedValue::new(Tag::new(2, WriterId::new(1)), Value::new(2));
/// let history = History::from_operations(vec![
///     Operation { id: OpId { client: ClientId::writer(0), seq: 0 },
///                 kind: OpKind::Write(Value::new(1)),
///                 result: OpResult::Written(v1), invoked: ts(0), completed: ts(1) },
///     Operation { id: OpId { client: ClientId::writer(1), seq: 0 },
///                 kind: OpKind::Write(Value::new(2)),
///                 result: OpResult::Written(v2), invoked: ts(2), completed: ts(3) },
///     // Read after both writes returns the *older* value: not atomic.
///     Operation { id: OpId { client: ClientId::reader(0), seq: 0 },
///                 kind: OpKind::Read,
///                 result: OpResult::Read(v1), invoked: ts(4), completed: ts(5) },
/// ])?;
/// assert!(!check_atomicity(&history).is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_atomicity(history: &History) -> Verdict {
    let open = history
        .ops()
        .iter()
        .filter(|o| o.completed == Timestamp::MAX)
        .count();
    if open > 0 {
        return Verdict::Violation(Violation::OpenOperations { count: open });
    }

    // Node 0 is the virtual initial write; real ops follow.
    let ops: Vec<&Operation> = history.ops().iter().collect();
    let n = ops.len() + 1;
    let node = |i: usize| i + 1;

    // Map each written tag to its writer node; detect duplicates.
    let mut write_of: std::collections::BTreeMap<TaggedValue, usize> =
        std::collections::BTreeMap::new();
    write_of.insert(TaggedValue::initial(), 0);
    for (i, op) in ops.iter().enumerate() {
        if op.is_write() {
            if let Some(&prev) = write_of.get(&op.tagged_value()) {
                let prev_id = if prev == 0 {
                    // A real write produced the initial tag — nonsensical,
                    // report it as a duplicate against the virtual write.
                    return Verdict::Violation(Violation::DuplicateWriteTag {
                        value: op.tagged_value(),
                        writes: (op.id, op.id),
                    });
                } else {
                    ops[prev - 1].id
                };
                return Verdict::Violation(Violation::DuplicateWriteTag {
                    value: op.tagged_value(),
                    writes: (prev_id, op.id),
                });
            }
            write_of.insert(op.tagged_value(), node(i));
        }
    }

    // (read node, source write node) pairs.
    let mut reads: Vec<(usize, usize)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if op.is_read() {
            match write_of.get(&op.tagged_value()) {
                Some(&w) => reads.push((node(i), w)),
                None => {
                    return Verdict::Violation(Violation::ReadWithoutSource {
                        read: op.id,
                        value: op.tagged_value(),
                    })
                }
            }
        }
    }
    // Fast path: a tag-disciplined history whose tag order is a legal
    // linearization is atomic, and all its reads have known sources
    // (checked above) with no duplicate tags. This turns the common
    // all-clear case from cubic into quadratic.
    //
    // MWA0-MWA4 (paper Appendix A) are *almost* that condition, but not
    // quite: they constrain write/write (MWA0), write→read (MWA2) and
    // read/read (MWA4) pairs, yet say nothing about a write that follows a
    // read. An artificial history can satisfy all five while a later write
    // takes a tag *below* an already-returned value — property-based
    // cross-validation against the search oracle surfaced exactly such a
    // case. The paper's algorithms cannot produce it (a two-round write's
    // `maxTS + 1` dominates every previously-returned timestamp), which is
    // the implicit step in the appendix argument; for arbitrary histories
    // the fast path must check the read→write direction explicitly.
    if crate::mwa::check_mwa(history).is_ok() && writes_dominate_preceding_reads(history) {
        return Verdict::Ok;
    }

    let writes: Vec<usize> = std::iter::once(0)
        .chain(ops.iter().enumerate().filter(|(_, o)| o.is_write()).map(|(i, _)| node(i)))
        .collect();

    let mut edges = BitMatrix::new(n);
    // Real-time edges; the virtual initial write precedes everything.
    for i in 1..n {
        edges.set(0, i);
    }
    for (i, a) in ops.iter().enumerate() {
        for (j, b) in ops.iter().enumerate() {
            if i != j && a.precedes(b) {
                edges.set(node(i), node(j));
            }
        }
    }
    // Read-from edges.
    for &(r, w) in &reads {
        if w != r {
            edges.set(w, r);
        }
    }

    // Saturate rules 3 and 4 with an incrementally maintained closure:
    // only edges that add reachability cost an O(n²/64) closure update.
    let mut reach = Reach::new(edges);
    if let Some(i) = reach.cycle_node() {
        return Verdict::Violation(Violation::Cycle {
            nodes: extract_cycle(&reach.direct, i, &ops),
        });
    }
    loop {
        let mut changed = false;
        for &(r, w) in &reads {
            for &w2 in &writes {
                if w2 == w {
                    continue;
                }
                // Rule 3: w2 ⇝ r implies w2 → w.
                if reach.reaches(w2, r) && !reach.direct.get(w2, w) {
                    changed = true;
                    if let Some(i) = reach.add_edge(w2, w) {
                        return Verdict::Violation(Violation::Cycle {
                            nodes: extract_cycle(&reach.direct, i, &ops),
                        });
                    }
                }
                // Rule 4: w ⇝ w2 implies r → w2.
                if reach.reaches(w, w2) && !reach.direct.get(r, w2) {
                    changed = true;
                    if let Some(i) = reach.add_edge(r, w2) {
                        return Verdict::Violation(Violation::Cycle {
                            nodes: extract_cycle(&reach.direct, i, &ops),
                        });
                    }
                }
            }
        }
        if !changed {
            return Verdict::Ok;
        }
    }
}

/// Recovers a *shortest* concrete cycle through `start` for the witness.
///
/// BFS from `start` over the direct edges, stopping at the first dequeued
/// node with an edge back to `start`; the parent chain reconstructs the
/// cycle. O(V²) on the bitset adjacency — a path-enumerating DFS here is
/// exponential on the dense contradiction graphs that non-atomic
/// high-contention histories produce, and shortest witnesses read better
/// anyway.
fn extract_cycle(edges: &BitMatrix, start: usize, ops: &[&Operation]) -> Vec<WitnessNode> {
    let n = edges.n;
    let as_witness = |path: &[usize]| {
        path.iter()
            .map(|&i| {
                if i == 0 {
                    WitnessNode::InitialWrite
                } else {
                    WitnessNode::Op(ops[i - 1].id)
                }
            })
            .collect()
    };
    let mut parent = vec![usize::MAX; n];
    parent[start] = start;
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        if v != start && edges.get(v, start) {
            // Reconstruct start → … → v; the edge v → start closes it.
            let mut path = vec![v];
            let mut at = v;
            while at != start {
                at = parent[at];
                path.push(at);
            }
            path.reverse();
            return as_witness(&path);
        }
        // `j` is a graph-node id probed through the bitset, not a slice
        // traversal.
        #[allow(clippy::needless_range_loop)]
        for j in 0..n {
            if edges.get(v, j) && parent[j] == usize::MAX {
                parent[j] = v;
                queue.push_back(j);
            }
        }
    }
    // The caller only invokes this when the closure has `start ⇝ start`, so
    // a cycle through `start` must have been found above.
    vec![WitnessNode::InitialWrite]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_core::{OpKind, OpResult};
    use mwr_sim::SimTime;
    use mwr_types::{ClientId, Tag, Value, WriterId};

    fn ts(t: u64) -> Timestamp {
        Timestamp { time: SimTime::from_ticks(t), seq: t }
    }

    fn tv(ts_: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts_, WriterId::new(w)), Value::new(v))
    }

    fn write(client: u32, seq: u64, val: TaggedValue, s: u64, f: u64) -> Operation {
        Operation {
            id: OpId { client: ClientId::writer(client), seq },
            kind: OpKind::Write(val.value()),
            result: OpResult::Written(val),
            invoked: ts(s),
            completed: ts(f),
        }
    }

    fn read(client: u32, seq: u64, val: TaggedValue, s: u64, f: u64) -> Operation {
        Operation {
            id: OpId { client: ClientId::reader(client), seq },
            kind: OpKind::Read,
            result: OpResult::Read(val),
            invoked: ts(s),
            completed: ts(f),
        }
    }

    #[test]
    fn empty_history_is_atomic() {
        assert!(check_atomicity(&History::default()).is_ok());
    }

    /// Regression: MWA0–MWA4 alone are not sufficient for atomicity of
    /// arbitrary histories. Here a write (`wA`, tag `(1, w2)`) begins after
    /// a read already returned the larger tag `(1, w3)`; every MWA property
    /// holds (they never compare a read with a *later* write), yet no
    /// linearization exists: read-from forces `w3 ≺ r1 ≺ wA ≺ w3`. The
    /// fast path must therefore also check the read→write direction. Found
    /// by property-based cross-validation against the search oracle.
    #[test]
    fn write_after_read_with_smaller_tag_is_caught_despite_mwa() {
        let history = History::from_operations(vec![
            write(0, 0, tv(1, 0, 68), 0, 5),
            write(1, 0, tv(1, 1, 57), 13, 17), // follows r0, smaller tag than (1, w2)
            write(2, 0, tv(1, 2, 7), 11, 19),
            read(0, 0, tv(1, 2, 7), 1, 12), // overlaps the (1, w2) write, precedes (1, w1)
            read(1, 0, tv(1, 2, 7), 14, 24),
            read(1, 1, tv(1, 2, 7), 32, 36),
        ])
        .unwrap();
        assert!(crate::check_mwa(&history).is_ok(), "all five MWA properties hold");
        let verdict = check_atomicity(&history);
        assert!(
            matches!(verdict, Verdict::Violation(Violation::Cycle { .. })),
            "got {verdict:?}"
        );
        assert!(!crate::search_atomicity(&history).is_ok(), "the oracle agrees");
    }

    #[test]
    fn sequential_write_read_is_atomic() {
        let v = tv(1, 0, 1);
        let h = History::from_operations(vec![
            write(0, 0, v, 0, 10),
            read(0, 0, v, 20, 30),
        ])
        .unwrap();
        assert!(check_atomicity(&h).is_ok());
    }

    #[test]
    fn read_of_initial_before_any_write_is_atomic() {
        let h = History::from_operations(vec![
            read(0, 0, TaggedValue::initial(), 0, 10),
            write(0, 0, tv(1, 0, 1), 20, 30),
        ])
        .unwrap();
        assert!(check_atomicity(&h).is_ok());
    }

    #[test]
    fn read_of_initial_after_a_write_is_a_violation() {
        let h = History::from_operations(vec![
            write(0, 0, tv(1, 0, 1), 0, 10),
            read(0, 0, TaggedValue::initial(), 20, 30),
        ])
        .unwrap();
        let verdict = check_atomicity(&h);
        assert!(matches!(verdict.violation(), Some(Violation::Cycle { .. })), "{verdict:?}");
    }

    #[test]
    fn stale_read_after_two_writes_is_a_violation() {
        let v1 = tv(1, 0, 1);
        let v2 = tv(2, 1, 2);
        let h = History::from_operations(vec![
            write(0, 0, v1, 0, 10),
            write(1, 0, v2, 20, 30),
            read(0, 0, v1, 40, 50),
        ])
        .unwrap();
        assert!(!check_atomicity(&h).is_ok());
    }

    #[test]
    fn concurrent_writes_allow_either_read_order_consistently() {
        let v1 = tv(1, 0, 1);
        let v2 = tv(1, 1, 2);
        // Two concurrent writes; later reads agree on v2 then stay at v2.
        let h = History::from_operations(vec![
            write(0, 0, v1, 0, 100),
            write(1, 0, v2, 0, 100),
            read(0, 0, v2, 110, 120),
            read(1, 0, v2, 130, 140),
        ])
        .unwrap();
        assert!(check_atomicity(&h).is_ok());
    }

    #[test]
    fn new_old_inversion_between_reads_is_a_violation() {
        let v1 = tv(1, 0, 1);
        let v2 = tv(1, 1, 2);
        // r1 sees v2, then a later r2 sees v1: the paper's canonical
        // atomicity violation (read-read inversion).
        let h = History::from_operations(vec![
            write(0, 0, v1, 0, 100),
            write(1, 0, v2, 0, 100),
            read(0, 0, v2, 110, 120),
            read(1, 0, v1, 130, 140),
        ])
        .unwrap();
        assert!(!check_atomicity(&h).is_ok());
    }

    #[test]
    fn read_concurrent_with_write_may_return_old_or_new() {
        let v1 = tv(1, 0, 1);
        for returned in [TaggedValue::initial(), v1] {
            let h = History::from_operations(vec![
                write(0, 0, v1, 0, 100),
                read(0, 0, returned, 50, 60),
            ])
            .unwrap();
            assert!(check_atomicity(&h).is_ok(), "returned {returned}");
        }
    }

    #[test]
    fn thin_air_read_is_reported() {
        let h = History::from_operations(vec![read(0, 0, tv(7, 0, 7), 0, 10)]).unwrap();
        assert!(matches!(
            check_atomicity(&h).violation(),
            Some(Violation::ReadWithoutSource { .. })
        ));
    }

    #[test]
    fn duplicate_write_tags_are_reported() {
        let v = tv(1, 0, 1);
        let h = History::from_operations(vec![
            write(0, 0, v, 0, 10),
            write(0, 1, v, 20, 30),
        ])
        .unwrap();
        assert!(matches!(
            check_atomicity(&h).violation(),
            Some(Violation::DuplicateWriteTag { .. })
        ));
    }

    #[test]
    fn write_read_ping_pong_chain_is_atomic() {
        // w1 → r(v1) ∥ w2 → r(v2) with proper ordering.
        let v1 = tv(1, 0, 1);
        let v2 = tv(2, 1, 2);
        let h = History::from_operations(vec![
            write(0, 0, v1, 0, 10),
            read(0, 0, v1, 5, 25), // concurrent with w1's tail: returns v1
            write(1, 0, v2, 30, 40),
            read(1, 0, v2, 35, 50),
            read(0, 1, v2, 60, 70),
        ])
        .unwrap();
        assert!(check_atomicity(&h).is_ok());
    }

    #[test]
    fn future_read_is_a_violation() {
        // Read completes before the write that produced its value begins.
        let v1 = tv(1, 0, 1);
        let h = History::from_operations(vec![
            read(0, 0, v1, 0, 10),
            write(0, 0, v1, 20, 30),
        ])
        .unwrap();
        assert!(!check_atomicity(&h).is_ok());
    }

    #[test]
    fn open_operations_are_rejected() {
        let mut op = read(0, 0, TaggedValue::initial(), 0, 10);
        op.completed = Timestamp::MAX;
        let h = History::from_operations(vec![op]).unwrap();
        assert!(matches!(
            check_atomicity(&h).violation(),
            Some(Violation::OpenOperations { count: 1 })
        ));
    }

    #[test]
    fn violation_display_is_informative() {
        let h = History::from_operations(vec![read(0, 0, tv(7, 0, 7), 0, 10)]).unwrap();
        let text = check_atomicity(&h).violation().unwrap().to_string();
        assert!(text.contains("no write produced"), "{text}");
    }
}
