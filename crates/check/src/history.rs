//! Execution histories: the observable record of invocations and responses
//! against which consistency is judged (paper §2.1).

use std::collections::BTreeMap;
use std::fmt;

use mwr_core::{ClientEvent, OpId, OpKind, OpResult};
use mwr_sim::SimTime;
use mwr_types::{ClientId, TaggedValue};

/// A totally ordered event timestamp: virtual time plus a tiebreaker
/// (the emission index within the run).
///
/// The paper's global clock assigns *unique* timestamps to events; the
/// simulator can emit several notifications at one virtual instant, so the
/// emission index restores uniqueness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Emission index within the run.
    pub seq: u64,
}

impl Timestamp {
    /// A timestamp before every real event (the virtual initial write).
    pub const MIN: Timestamp = Timestamp { time: SimTime::ZERO, seq: 0 };

    /// A timestamp after every real event (open operations).
    pub const MAX: Timestamp =
        Timestamp { time: SimTime::FAR_FUTURE, seq: u64::MAX };
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.time, self.seq)
    }
}

/// One completed (or open) operation in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// The operation identity (client + sequence).
    pub id: OpId,
    /// Read or write.
    pub kind: OpKind,
    /// The outcome. For open operations this is the *pending* write value.
    pub result: OpResult,
    /// Invocation event timestamp (`O.s` in the paper).
    pub invoked: Timestamp,
    /// Response event timestamp (`O.f`); [`Timestamp::MAX`] if open.
    pub completed: Timestamp,
}

impl Operation {
    /// The tagged value this operation wrote or read.
    pub fn tagged_value(&self) -> TaggedValue {
        self.result.tagged_value()
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self.kind, OpKind::Write(_))
    }

    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        matches!(self.kind, OpKind::Read)
    }

    /// Real-time precedence: `self ≺σ other` iff `self.f < other.s`.
    pub fn precedes(&self, other: &Operation) -> bool {
        self.completed < other.invoked
    }

    /// Whether the two operations overlap in real time.
    pub fn concurrent_with(&self, other: &Operation) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }
}

/// Errors when assembling a history from client events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// An operation completed without a matching invocation.
    CompletionWithoutInvocation {
        /// The orphan operation.
        op: OpId,
    },
    /// An operation was invoked twice.
    DuplicateInvocation {
        /// The duplicated operation.
        op: OpId,
    },
    /// Operations never completed (run was not quiescent). Use
    /// [`History::from_events_with_open_ops`] to include them as open.
    PendingOperations {
        /// The unfinished operations.
        ops: Vec<OpId>,
    },
    /// A client overlapped two of its own operations — the execution is not
    /// well-formed (§2.1) and no consistency verdict is meaningful.
    NotWellFormed {
        /// The client with overlapping operations.
        client: ClientId,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::CompletionWithoutInvocation { op } => {
                write!(f, "operation {op} completed without an invocation")
            }
            HistoryError::DuplicateInvocation { op } => {
                write!(f, "operation {op} invoked twice")
            }
            HistoryError::PendingOperations { ops } => {
                write!(f, "{} operation(s) never completed", ops.len())
            }
            HistoryError::NotWellFormed { client } => {
                write!(f, "client {client} overlapped its own operations")
            }
        }
    }
}

impl std::error::Error for HistoryError {}

/// A register execution history.
///
/// # Examples
///
/// ```
/// use mwr_check::History;
/// use mwr_core::{Cluster, Protocol, ScheduledOp, SimCluster};
/// use mwr_sim::SimTime;
/// use mwr_types::{ClusterConfig, Value};
///
/// let config = ClusterConfig::new(5, 1, 2, 2)?;
/// let cluster = Cluster::new(config, Protocol::W2R1);
/// let events = cluster.run_schedule(
///     1,
///     &[
///         (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(5) }),
///         (SimTime::from_ticks(50), ScheduledOp::Read { reader: 0 }),
///     ],
/// )?;
/// let history = History::from_events(&events)?;
/// assert_eq!(history.len(), 2);
/// assert_eq!(history.reads().count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct History {
    ops: Vec<Operation>,
}

impl History {
    /// Builds a history from a quiescent run's client events.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError`] on orphan completions, duplicate
    /// invocations, pending operations, or per-client overlap.
    pub fn from_events(events: &[(SimTime, ClientEvent)]) -> Result<Self, HistoryError> {
        Self::build(events, false)
    }

    /// Like [`History::from_events`] but keeps operations that never
    /// completed, assigning them [`Timestamp::MAX`] as response time (an
    /// open operation may be linearized anywhere after its invocation).
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError`] on orphan completions, duplicate
    /// invocations, or per-client overlap.
    pub fn from_events_with_open_ops(
        events: &[(SimTime, ClientEvent)],
    ) -> Result<Self, HistoryError> {
        Self::build(events, true)
    }

    fn build(events: &[(SimTime, ClientEvent)], keep_open: bool) -> Result<Self, HistoryError> {
        // seq starts at 1 so Timestamp::MIN is strictly before everything.
        let mut open: BTreeMap<OpId, (OpKind, Timestamp)> = BTreeMap::new();
        let mut ops: Vec<Operation> = Vec::new();
        for (i, (time, event)) in events.iter().enumerate() {
            let ts = Timestamp { time: *time, seq: i as u64 + 1 };
            match event {
                ClientEvent::Invoked { op, kind } => {
                    if open.insert(*op, (*kind, ts)).is_some() {
                        return Err(HistoryError::DuplicateInvocation { op: *op });
                    }
                }
                // Internal round-trip marker: consistency is judged on
                // invocation and response events only (paper §2.1).
                ClientEvent::SecondRound { .. } => {}
                ClientEvent::Completed { op, kind, result } => {
                    let Some((_, invoked)) = open.remove(op) else {
                        return Err(HistoryError::CompletionWithoutInvocation { op: *op });
                    };
                    ops.push(Operation {
                        id: *op,
                        kind: *kind,
                        result: *result,
                        invoked,
                        completed: ts,
                    });
                }
            }
        }
        if !open.is_empty() {
            if keep_open {
                for (op, (kind, invoked)) in open {
                    let result = match kind {
                        OpKind::Write(v) => {
                            // The tag is unknown for an open write; record
                            // the intent with an initial tag — checkers
                            // treat open writes specially.
                            OpResult::Written(TaggedValue::new(
                                mwr_types::Tag::initial().next(mwr_types::WriterId::new(0)),
                                v,
                            ))
                        }
                        OpKind::Read => OpResult::Read(TaggedValue::initial()),
                    };
                    ops.push(Operation { id: op, kind, result, invoked, completed: Timestamp::MAX });
                }
            } else {
                return Err(HistoryError::PendingOperations { ops: open.into_keys().collect() });
            }
        }
        let history = History { ops };
        history.verify_well_formed()?;
        Ok(history)
    }

    /// Builds a history directly from operations (used by tests and by
    /// hand-crafted counterexample constructions).
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::NotWellFormed`] if a client overlaps its own
    /// operations.
    pub fn from_operations(ops: Vec<Operation>) -> Result<Self, HistoryError> {
        let history = History { ops };
        history.verify_well_formed()?;
        Ok(history)
    }

    fn verify_well_formed(&self) -> Result<(), HistoryError> {
        let mut by_client: BTreeMap<ClientId, Vec<&Operation>> = BTreeMap::new();
        for op in &self.ops {
            by_client.entry(op.id.client).or_default().push(op);
        }
        for (client, mut ops) in by_client {
            ops.sort_by_key(|o| o.invoked);
            for pair in ops.windows(2) {
                if !pair[0].precedes(pair[1]) {
                    return Err(HistoryError::NotWellFormed { client });
                }
            }
        }
        Ok(())
    }

    /// All operations, in completion order of the underlying event stream.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The write operations.
    pub fn writes(&self) -> impl Iterator<Item = &Operation> + '_ {
        self.ops.iter().filter(|o| o.is_write())
    }

    /// The read operations.
    pub fn reads(&self) -> impl Iterator<Item = &Operation> + '_ {
        self.ops.iter().filter(|o| o.is_read())
    }

    /// The operations of one client, in program order.
    pub fn by_client(&self, client: ClientId) -> Vec<&Operation> {
        let mut ops: Vec<&Operation> =
            self.ops.iter().filter(|o| o.id.client == client).collect();
        ops.sort_by_key(|o| o.invoked);
        ops
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut ops: Vec<&Operation> = self.ops.iter().collect();
        ops.sort_by_key(|o| o.invoked);
        for op in ops {
            let what = match op.kind {
                OpKind::Read => format!("read() = {}", op.tagged_value()),
                OpKind::Write(v) => format!("write({v}) @ {}", op.tagged_value().tag()),
            };
            writeln!(f, "[{} … {}] {}: {}", op.invoked, op.completed, op.id, what)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::{Tag, Value, WriterId};

    fn ts(t: u64, s: u64) -> Timestamp {
        Timestamp { time: SimTime::from_ticks(t), seq: s }
    }

    fn tv(ts_: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts_, WriterId::new(w)), Value::new(v))
    }

    fn write_op(client: u32, seq: u64, tag: TaggedValue, s: u64, f: u64) -> Operation {
        Operation {
            id: OpId { client: ClientId::writer(client), seq },
            kind: OpKind::Write(tag.value()),
            result: OpResult::Written(tag),
            invoked: ts(s, s),
            completed: ts(f, f),
        }
    }

    fn read_op(client: u32, seq: u64, tag: TaggedValue, s: u64, f: u64) -> Operation {
        Operation {
            id: OpId { client: ClientId::reader(client), seq },
            kind: OpKind::Read,
            result: OpResult::Read(tag),
            invoked: ts(s, s),
            completed: ts(f, f),
        }
    }

    #[test]
    fn precedence_and_concurrency() {
        let a = write_op(0, 0, tv(1, 0, 1), 0, 10);
        let b = read_op(0, 0, tv(1, 0, 1), 11, 20);
        let c = read_op(1, 0, tv(1, 0, 1), 5, 15);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(a.concurrent_with(&c));
        assert!(c.concurrent_with(&b));
    }

    #[test]
    fn from_events_pairs_invocations_and_completions() {
        let op = OpId { client: ClientId::writer(0), seq: 0 };
        let tvv = tv(1, 0, 9);
        let events = vec![
            (SimTime::ZERO, ClientEvent::Invoked { op, kind: OpKind::Write(Value::new(9)) }),
            (
                SimTime::from_ticks(4),
                ClientEvent::Completed {
                    op,
                    kind: OpKind::Write(Value::new(9)),
                    result: OpResult::Written(tvv),
                },
            ),
        ];
        let h = History::from_events(&events).unwrap();
        assert_eq!(h.len(), 1);
        assert_eq!(h.writes().count(), 1);
        assert_eq!(h.ops()[0].tagged_value(), tvv);
        assert!(h.ops()[0].invoked < h.ops()[0].completed);
    }

    #[test]
    fn pending_operations_are_rejected_by_default() {
        let op = OpId { client: ClientId::reader(0), seq: 0 };
        let events = vec![(SimTime::ZERO, ClientEvent::Invoked { op, kind: OpKind::Read })];
        assert_eq!(
            History::from_events(&events),
            Err(HistoryError::PendingOperations { ops: vec![op] })
        );
        let h = History::from_events_with_open_ops(&events).unwrap();
        assert_eq!(h.len(), 1);
        assert_eq!(h.ops()[0].completed, Timestamp::MAX);
    }

    #[test]
    fn orphan_completion_is_rejected() {
        let op = OpId { client: ClientId::reader(0), seq: 0 };
        let events = vec![(
            SimTime::ZERO,
            ClientEvent::Completed {
                op,
                kind: OpKind::Read,
                result: OpResult::Read(TaggedValue::initial()),
            },
        )];
        assert_eq!(
            History::from_events(&events),
            Err(HistoryError::CompletionWithoutInvocation { op })
        );
    }

    #[test]
    fn overlapping_client_ops_are_rejected() {
        let ops = vec![
            read_op(0, 0, tv(0, 0, 0), 0, 10),
            read_op(0, 1, tv(0, 0, 0), 5, 15), // same reader overlaps itself
        ];
        assert_eq!(
            History::from_operations(ops),
            Err(HistoryError::NotWellFormed { client: ClientId::reader(0) })
        );
    }

    #[test]
    fn by_client_is_in_program_order() {
        let h = History::from_operations(vec![
            read_op(0, 1, tv(1, 0, 1), 20, 30),
            read_op(0, 0, tv(1, 0, 1), 0, 10),
            read_op(1, 0, tv(1, 0, 1), 0, 10),
        ])
        .unwrap();
        let r0 = h.by_client(ClientId::reader(0));
        assert_eq!(r0.len(), 2);
        assert!(r0[0].invoked < r0[1].invoked);
    }

    #[test]
    fn display_is_sorted_by_invocation() {
        let h = History::from_operations(vec![
            read_op(0, 0, tv(1, 0, 5), 12, 20),
            write_op(0, 0, tv(1, 0, 5), 0, 10),
        ])
        .unwrap();
        let text = h.to_string();
        let w_pos = text.find("write(5)").unwrap();
        let r_pos = text.find("read()").unwrap();
        assert!(w_pos < r_pos, "write should render first:\n{text}");
    }
}
