//! Exhaustive atomicity checking by linearization search (Wing & Gong).
//!
//! This is the *oracle* checker: it enumerates linearizations directly, with
//! memoization on `(linearized-set, register-content)` states, so its verdict
//! is correct by construction for any complete history of at most 128
//! operations. The production checker ([`check_atomicity`]) is polynomial;
//! property tests assert the two always agree.
//!
//! [`check_atomicity`]: crate::check_atomicity

use std::collections::HashSet;

use mwr_types::TaggedValue;

use crate::graph::{Verdict, Violation, WitnessNode};
use crate::history::{History, Operation, Timestamp};

/// Maximum history size the search oracle accepts.
pub const MAX_SEARCH_OPS: usize = 128;

/// Exhaustively decides atomicity of `history` by searching for a legal
/// linearization.
///
/// # Panics
///
/// Panics if the history exceeds [`MAX_SEARCH_OPS`] operations — use the
/// polynomial [`check_atomicity`](crate::check_atomicity) for large
/// histories.
///
/// # Examples
///
/// ```
/// use mwr_check::{search_atomicity, History};
///
/// assert!(search_atomicity(&History::default()).is_ok());
/// ```
pub fn search_atomicity(history: &History) -> Verdict {
    let ops: Vec<&Operation> = history.ops().iter().collect();
    assert!(
        ops.len() <= MAX_SEARCH_OPS,
        "search oracle supports at most {MAX_SEARCH_OPS} operations, got {}",
        ops.len()
    );
    let open = ops.iter().filter(|o| o.completed == Timestamp::MAX).count();
    if open > 0 {
        return Verdict::Violation(Violation::OpenOperations { count: open });
    }
    if ops.is_empty() {
        return Verdict::Ok;
    }

    let n = ops.len();
    let full: u128 = if n == 128 { u128::MAX } else { (1u128 << n) - 1 };

    // Precompute real-time predecessors as bitmasks.
    let mut preds: Vec<u128> = vec![0; n];
    for (i, a) in ops.iter().enumerate() {
        for (j, b) in ops.iter().enumerate() {
            if i != j && b.precedes(a) {
                preds[i] |= 1 << j;
            }
        }
    }

    let mut failed: HashSet<(u128, TaggedValue)> = HashSet::new();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    if dfs(&ops, &preds, full, 0, TaggedValue::initial(), &mut failed, &mut order) {
        Verdict::Ok
    } else {
        // No linearization exists. As a witness, report the operations in
        // invocation order (the search has no single canonical cycle).
        let mut sorted: Vec<&Operation> = ops.clone();
        sorted.sort_by_key(|o| o.invoked);
        Verdict::Violation(Violation::Cycle {
            nodes: sorted.iter().map(|o| WitnessNode::Op(o.id)).collect(),
        })
    }
}

fn dfs(
    ops: &[&Operation],
    preds: &[u128],
    full: u128,
    done: u128,
    content: TaggedValue,
    failed: &mut HashSet<(u128, TaggedValue)>,
    order: &mut Vec<usize>,
) -> bool {
    if done == full {
        return true;
    }
    if failed.contains(&(done, content)) {
        return false;
    }
    for i in 0..ops.len() {
        let bit = 1u128 << i;
        if done & bit != 0 {
            continue;
        }
        // `i` is linearizable next only if all its real-time predecessors
        // are already linearized.
        if preds[i] & !done != 0 {
            continue;
        }
        let op = ops[i];
        let next_content = if op.is_write() {
            op.tagged_value()
        } else {
            if op.tagged_value() != content {
                continue; // this read cannot go here
            }
            content
        };
        order.push(i);
        if dfs(ops, preds, full, done | bit, next_content, failed, order) {
            return true;
        }
        order.pop();
    }
    failed.insert((done, content));
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::check_atomicity;
    use mwr_core::{OpId, OpKind, OpResult};
    use mwr_sim::SimTime;
    use mwr_types::{ClientId, Tag, Value, WriterId};
    use proptest::prelude::*;

    fn ts(t: u64) -> Timestamp {
        Timestamp { time: SimTime::from_ticks(t), seq: t }
    }

    fn tv(ts_: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts_, WriterId::new(w)), Value::new(v))
    }

    fn write(client: u32, seq: u64, val: TaggedValue, s: u64, f: u64) -> Operation {
        Operation {
            id: OpId { client: ClientId::writer(client), seq },
            kind: OpKind::Write(val.value()),
            result: OpResult::Written(val),
            invoked: ts(s),
            completed: ts(f),
        }
    }

    fn read(client: u32, seq: u64, val: TaggedValue, s: u64, f: u64) -> Operation {
        Operation {
            id: OpId { client: ClientId::reader(client), seq },
            kind: OpKind::Read,
            result: OpResult::Read(val),
            invoked: ts(s),
            completed: ts(f),
        }
    }

    #[test]
    fn agrees_with_graph_on_canonical_cases() {
        let v1 = tv(1, 0, 1);
        let v2 = tv(1, 1, 2);
        let cases: Vec<(Vec<Operation>, bool)> = vec![
            (vec![write(0, 0, v1, 0, 10), read(0, 0, v1, 20, 30)], true),
            (
                vec![
                    write(0, 0, v1, 0, 10),
                    write(1, 0, v2, 20, 30),
                    read(0, 0, v1, 40, 50),
                ],
                false,
            ),
            (
                vec![
                    write(0, 0, v1, 0, 100),
                    write(1, 0, v2, 0, 100),
                    read(0, 0, v2, 110, 120),
                    read(1, 0, v1, 130, 140),
                ],
                false,
            ),
            (
                vec![
                    write(0, 0, v1, 0, 100),
                    write(1, 0, v2, 0, 100),
                    read(0, 0, v1, 110, 120),
                    read(1, 0, v1, 130, 140),
                ],
                true,
            ),
        ];
        for (ops, expected) in cases {
            let h = History::from_operations(ops).unwrap();
            assert_eq!(search_atomicity(&h).is_ok(), expected, "search on:\n{h}");
            assert_eq!(check_atomicity(&h).is_ok(), expected, "graph on:\n{h}");
        }
    }

    /// Generates a random well-formed history: per client, a sequence of
    /// non-overlapping operations; writes get unique tags; reads return a
    /// randomly chosen written (or initial) tag — sometimes atomic,
    /// sometimes not.
    fn arbitrary_history() -> impl Strategy<Value = History> {
        // (client op counts, interval seeds, read choices)
        (
            proptest::collection::vec(1usize..4, 1..4), // ops per writer
            proptest::collection::vec(1usize..4, 1..4), // ops per reader
            any::<u64>(),
        )
            .prop_map(|(writer_ops, reader_ops, seed)| {
                use rand::rngs::SmallRng;
                use rand::{Rng, SeedableRng};
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut ops: Vec<Operation> = Vec::new();
                let mut tags: Vec<TaggedValue> = vec![TaggedValue::initial()];
                // Writers first: lay out each client's ops in its own
                // timeline with random gaps/overlap across clients.
                for (w, count) in writer_ops.iter().enumerate() {
                    let mut clock = rng.gen_range(0..20);
                    for k in 0..*count {
                        let start = clock;
                        let end = start + rng.gen_range(1u64..15);
                        clock = end + rng.gen_range(1u64..10);
                        let tag = tv(k as u64 + 1, w as u32, rng.gen_range(0..100));
                        tags.push(tag);
                        ops.push(write(w as u32, k as u64, tag, start, end));
                    }
                }
                for (r, count) in reader_ops.iter().enumerate() {
                    let mut clock = rng.gen_range(0..20);
                    for k in 0..*count {
                        let start = clock;
                        let end = start + rng.gen_range(1u64..15);
                        clock = end + rng.gen_range(1u64..10);
                        let tag = tags[rng.gen_range(0..tags.len())];
                        ops.push(read(r as u32, k as u64, tag, start, end));
                    }
                }
                // Re-sequence timestamps so they are unique.
                for (i, op) in ops.iter_mut().enumerate() {
                    op.invoked = Timestamp {
                        time: op.invoked.time,
                        seq: 2 * i as u64,
                    };
                    op.completed = Timestamp {
                        time: op.completed.time,
                        seq: 2 * i as u64 + 1,
                    };
                }
                History::from_operations(ops).expect("generated histories are well-formed")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]
        /// The polynomial graph checker and the exhaustive oracle must agree
        /// on every random history.
        #[test]
        fn prop_graph_checker_agrees_with_search(h in arbitrary_history()) {
            let fast = check_atomicity(&h).is_ok();
            let slow = search_atomicity(&h).is_ok();
            prop_assert_eq!(fast, slow, "checker disagreement on:\n{}", h);
        }
    }
}
