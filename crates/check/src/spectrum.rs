//! Safe and regular register checks — the weaker rungs of the consistency
//! spectrum in the paper's Fig 2 ("the partial order relation can be thought
//! of as providing stronger consistency guarantees or inducing less data
//! access latency").
//!
//! Lamport's conditions are defined for a single writer; we use the natural
//! multi-writer generalization over real-time order:
//!
//! - the *legal preceding values* of a read `r` are the values of the
//!   real-time-maximal writes among those that completed before `r` began
//!   (if none, the initial value);
//! - **MW-safe**: a read concurrent with no write returns a legal preceding
//!   value; reads concurrent with a write may return anything (that a write
//!   produced, or the initial value — we still flag thin-air values);
//! - **MW-regular**: every read returns a legal preceding value or the value
//!   of a write concurrent with it.
//!
//! Atomicity ⟹ regularity ⟹ safety; the `fig2_latency_consistency`
//! experiment places every protocol on this spectrum.

use mwr_types::TaggedValue;

use crate::graph::{Verdict, Violation};
use crate::history::{History, Operation, Timestamp};

/// Which spectrum property to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Level {
    Safe,
    Regular,
}

/// Checks the multi-writer *safe* register condition.
///
/// # Examples
///
/// ```
/// use mwr_check::{check_safe, History};
///
/// assert!(check_safe(&History::default()).is_ok());
/// ```
pub fn check_safe(history: &History) -> Verdict {
    check_level(history, Level::Safe)
}

/// Checks the multi-writer *regular* register condition.
///
/// # Examples
///
/// ```
/// use mwr_check::{check_regular, History};
///
/// assert!(check_regular(&History::default()).is_ok());
/// ```
pub fn check_regular(history: &History) -> Verdict {
    check_level(history, Level::Regular)
}

fn check_level(history: &History, level: Level) -> Verdict {
    let open = history
        .ops()
        .iter()
        .filter(|o| o.completed == Timestamp::MAX)
        .count();
    if open > 0 {
        return Verdict::Violation(Violation::OpenOperations { count: open });
    }
    let writes: Vec<&Operation> = history.writes().collect();

    for read in history.reads() {
        let value = read.tagged_value();
        // Thin-air check applies at every level.
        let produced = value == TaggedValue::initial()
            || writes.iter().any(|w| w.tagged_value() == value);
        if !produced {
            return Verdict::Violation(Violation::ReadWithoutSource { read: read.id, value });
        }

        let preceding: Vec<&&Operation> =
            writes.iter().filter(|w| w.precedes(read)).collect();
        let concurrent: Vec<&&Operation> =
            writes.iter().filter(|w| w.concurrent_with(read)).collect();

        // Real-time-maximal preceding writes.
        let legal_preceding: Vec<TaggedValue> = preceding
            .iter()
            .filter(|w| !preceding.iter().any(|w2| w.precedes(w2)))
            .map(|w| w.tagged_value())
            .collect();

        let legal = |v: TaggedValue| -> bool {
            if legal_preceding.is_empty() {
                // Nothing completed before the read: initial value is legal.
                if v == TaggedValue::initial() {
                    return true;
                }
            } else if legal_preceding.contains(&v) {
                return true;
            }
            false
        };

        let ok = match level {
            Level::Safe => {
                if concurrent.is_empty() {
                    legal(value)
                } else {
                    true // anything produced is allowed under safety
                }
            }
            Level::Regular => {
                legal(value) || concurrent.iter().any(|w| w.tagged_value() == value)
            }
        };
        if !ok {
            return Verdict::Violation(Violation::ReadWithoutSource { read: read.id, value });
        }
    }
    Verdict::Ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::check_atomicity;
    use mwr_core::{OpId, OpKind, OpResult};
    use mwr_sim::SimTime;
    use mwr_types::{ClientId, Tag, Value, WriterId};

    fn ts(t: u64) -> Timestamp {
        Timestamp { time: SimTime::from_ticks(t), seq: t }
    }

    fn tv(ts_: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts_, WriterId::new(w)), Value::new(v))
    }

    fn write(client: u32, seq: u64, val: TaggedValue, s: u64, f: u64) -> Operation {
        Operation {
            id: OpId { client: ClientId::writer(client), seq },
            kind: OpKind::Write(val.value()),
            result: OpResult::Written(val),
            invoked: ts(s),
            completed: ts(f),
        }
    }

    fn read(client: u32, seq: u64, val: TaggedValue, s: u64, f: u64) -> Operation {
        Operation {
            id: OpId { client: ClientId::reader(client), seq },
            kind: OpKind::Read,
            result: OpResult::Read(val),
            invoked: ts(s),
            completed: ts(f),
        }
    }

    #[test]
    fn stale_read_with_no_concurrency_fails_both_levels() {
        let v1 = tv(1, 0, 1);
        let v2 = tv(2, 1, 2);
        let h = History::from_operations(vec![
            write(0, 0, v1, 0, 10),
            write(1, 0, v2, 20, 30),
            read(0, 0, v1, 40, 50),
        ])
        .unwrap();
        assert!(!check_safe(&h).is_ok());
        assert!(!check_regular(&h).is_ok());
    }

    #[test]
    fn read_concurrent_with_write_is_safe_but_checked_by_regular() {
        let v1 = tv(1, 0, 1);
        let v2 = tv(2, 0, 2);
        // v2's write overlaps the read; read returns the older v1.
        let overlap = History::from_operations(vec![
            write(0, 0, v1, 0, 10),
            write(0, 1, v2, 20, 40),
            read(0, 0, v1, 30, 50),
        ])
        .unwrap();
        assert!(check_safe(&overlap).is_ok(), "safety allows anything under concurrency");
        assert!(check_regular(&overlap).is_ok(), "v1 is the legal preceding value");

        // Returning a *future* unrelated value is not regular.
        let v3 = tv(3, 0, 3);
        let bad = History::from_operations(vec![
            write(0, 0, v1, 0, 10),
            write(0, 1, v2, 20, 40),
            read(0, 0, v3, 30, 50),
            write(0, 2, v3, 60, 70),
        ])
        .unwrap();
        assert!(!check_regular(&bad).is_ok());
    }

    #[test]
    fn new_old_inversion_is_regular_but_not_atomic() {
        // The canonical gap between regular and atomic (Lamport): two
        // sequential reads concurrent with one write see new-then-old.
        let v1 = tv(1, 0, 1);
        let h = History::from_operations(vec![
            write(0, 0, v1, 0, 100),
            read(0, 0, v1, 10, 20),
            read(1, 0, TaggedValue::initial(), 30, 40),
        ])
        .unwrap();
        assert!(check_regular(&h).is_ok());
        assert!(!check_atomicity(&h).is_ok());
    }

    #[test]
    fn initial_value_is_legal_only_before_completed_writes() {
        let v1 = tv(1, 0, 1);
        let early = History::from_operations(vec![
            read(0, 0, TaggedValue::initial(), 0, 5),
            write(0, 0, v1, 10, 20),
        ])
        .unwrap();
        assert!(check_safe(&early).is_ok());
        assert!(check_regular(&early).is_ok());

        let late = History::from_operations(vec![
            write(0, 0, v1, 0, 5),
            read(0, 0, TaggedValue::initial(), 10, 20),
        ])
        .unwrap();
        assert!(!check_safe(&late).is_ok());
        assert!(!check_regular(&late).is_ok());
    }

    #[test]
    fn concurrent_preceding_writes_offer_multiple_legal_values() {
        let v1 = tv(1, 0, 1);
        let v2 = tv(1, 1, 2);
        for returned in [v1, v2] {
            let h = History::from_operations(vec![
                write(0, 0, v1, 0, 100),
                write(1, 0, v2, 0, 100),
                read(0, 0, returned, 110, 120),
            ])
            .unwrap();
            assert!(check_safe(&h).is_ok(), "{returned}");
            assert!(check_regular(&h).is_ok(), "{returned}");
        }
    }

    #[test]
    fn thin_air_fails_even_safety() {
        let h = History::from_operations(vec![read(0, 0, tv(9, 0, 9), 0, 10)]).unwrap();
        assert!(!check_safe(&h).is_ok());
    }

    #[test]
    fn atomic_histories_are_regular_and_safe() {
        let v1 = tv(1, 0, 1);
        let v2 = tv(2, 1, 2);
        let h = History::from_operations(vec![
            write(0, 0, v1, 0, 10),
            read(0, 0, v1, 20, 30),
            write(1, 0, v2, 40, 50),
            read(1, 0, v2, 60, 70),
        ])
        .unwrap();
        assert!(check_atomicity(&h).is_ok());
        assert!(check_regular(&h).is_ok());
        assert!(check_safe(&h).is_ok());
    }
}
