//! Property pin for the streaming auditor: over random interleavings,
//! random floor-advance points, and randomly corrupted read values, the
//! online [`StreamingAuditor`] verdict must agree with the post-hoc
//! [`check_atomicity`] judgment of the full recorded history — truncation
//! must neither hide a violation nor invent one.
//!
//! The generator drives four clients (two writers, two readers) through an
//! arbitrary invoke/complete interleaving against a simple linearizable
//! register model, so uncorrupted histories are atomic by construction;
//! corruption rewrites a read's return to a stale or thin-air tag, or a
//! write's tag to a stale timestamp, which may or may not be a violation
//! depending on the surrounding concurrency — exactly the boundary the
//! auditor has to get right.

use std::collections::BTreeMap;

use mwr_check::{
    check_atomicity, AuditRecord, History, Operation, StreamConfig, StreamingAuditor, Timestamp,
};
use mwr_core::{OpId, OpKind, OpResult};
use mwr_sim::SimTime;
use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};

use proptest::collection::vec;
use proptest::prelude::*;

/// One generator step: which client acts (invoke if idle, complete if
/// busy), how a completing read picks its value, and whether/how that
/// value is corrupted.
type Step = (u8, bool, u8);

fn client_of(index: u8) -> ClientId {
    match index % 4 {
        0 => ClientId::writer(0),
        1 => ClientId::writer(1),
        2 => ClientId::reader(0),
        _ => ClientId::reader(1),
    }
}

struct InFlight {
    seq: u64,
    kind: OpKind,
    /// Register contents (max completed write tag) at invocation.
    at_invoke: TaggedValue,
    /// Timestamp minted at invocation (writes only).
    ts: u64,
}

/// Replay the records exactly the way `StreamingAuditor::observe` stamps
/// them, producing the completed operations of the full history.
fn replay(records: &[AuditRecord]) -> Vec<Operation> {
    let mut open: BTreeMap<OpId, (OpKind, Timestamp)> = BTreeMap::new();
    let mut ops = Vec::new();
    for (arrivals, record) in (1u64..).zip(records) {
        match *record {
            AuditRecord::Invoked { client, seq, kind, at_micros } => {
                let stamp = Timestamp { time: SimTime::from_ticks(at_micros), seq: arrivals };
                open.insert(OpId { client, seq }, (kind, stamp));
            }
            AuditRecord::Completed { client, seq, result, at_micros } => {
                let stamp = Timestamp { time: SimTime::from_ticks(at_micros), seq: arrivals };
                let (kind, invoked) = open
                    .remove(&OpId { client, seq })
                    .expect("generator only completes invoked ops");
                ops.push(Operation {
                    id: OpId { client, seq },
                    kind,
                    result,
                    invoked,
                    completed: stamp,
                });
            }
            AuditRecord::FloorAdvance { .. } => {}
        }
    }
    ops
}

/// Drive the step list against the register model, returning the record
/// stream (with floor advances spliced in at every eighth step).
fn record_stream(steps: &[Step]) -> Vec<AuditRecord> {
    let mut records = Vec::new();
    let mut next_ts = 0u64;
    let mut seqs: BTreeMap<ClientId, u64> = BTreeMap::new();
    let mut inflight: BTreeMap<ClientId, InFlight> = BTreeMap::new();
    let mut register = TaggedValue::initial();
    let mut completed_writes: Vec<TaggedValue> = Vec::new();

    for (index, &(who, read_at_invoke, corrupt)) in steps.iter().enumerate() {
        let client = client_of(who);
        let micros = index as u64 + 1;
        if let Some(op) = inflight.remove(&client) {
            let result = match op.kind {
                OpKind::Write(value) => {
                    // The tag was minted at invocation; the write becomes
                    // visible (joins the register) at completion. Overlap
                    // can complete tags out of order — legal, the writes
                    // are concurrent — while non-concurrent writes always
                    // carry increasing timestamps. Corruption re-mints a
                    // stale timestamp: depending on surrounding concurrency
                    // that is a duplicate tag, a write that fails to
                    // dominate a read that preceded it, or (early enough)
                    // perfectly legal.
                    let ts = if corrupt == 2 { op.ts.saturating_sub(4).max(1) } else { op.ts };
                    let tag = TaggedValue::new(
                        Tag::new(ts, client.as_writer().expect("writes come from writers")),
                        value,
                    );
                    register = register.max(tag);
                    completed_writes.push(tag);
                    OpResult::Written(tag)
                }
                OpKind::Read => {
                    let honest = if read_at_invoke { op.at_invoke } else { register };
                    let value = match corrupt {
                        // Stale: the oldest completed write (or initial).
                        0 => completed_writes
                            .first()
                            .copied()
                            .unwrap_or_else(TaggedValue::initial),
                        // Thin air: a tag nobody ever wrote.
                        1 => TaggedValue::new(
                            Tag::new(900 + index as u64, WriterId::new(0)),
                            Value::new(999),
                        ),
                        _ => honest,
                    };
                    OpResult::Read(value)
                }
            };
            records.push(AuditRecord::Completed {
                client,
                seq: op.seq,
                result,
                at_micros: micros,
            });
        } else {
            let seq = *seqs.entry(client).or_insert(0);
            seqs.insert(client, seq + 1);
            let (kind, ts) = if let Some(w) = client.as_writer() {
                next_ts += 1;
                (OpKind::Write(Value::new(next_ts * 10 + u64::from(w.index()))), next_ts)
            } else {
                (OpKind::Read, 0)
            };
            records.push(AuditRecord::Invoked { client, seq, kind, at_micros: micros });
            inflight.insert(client, InFlight { seq, kind, at_invoke: register, ts });
        }
        if index % 8 == 7 {
            records.push(AuditRecord::FloorAdvance { floor: register });
        }
    }
    records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Streaming and post-hoc verdicts agree on every interleaving, with
    /// truncation forced as aggressively as possible (check every
    /// completion, tiny window).
    #[test]
    fn streaming_verdict_matches_post_hoc(
        steps in vec((0u8..4, any::<bool>(), 0u8..40), 0..160),
    ) {
        let records = record_stream(&steps);
        let full: Vec<Operation> = replay(&records);

        let reference = History::from_operations(full).expect("replayed history is well-formed");
        let post_hoc = check_atomicity(&reference);

        let mut auditor = StreamingAuditor::new(StreamConfig { window: 8, check_interval: 1 });
        for &record in &records {
            auditor.observe(record);
        }
        let report = auditor.finish();

        prop_assert_eq!(
            report.verdict.is_ok(),
            post_hoc.is_ok(),
            "streaming {:?} vs post-hoc {:?} over {} records (truncated {})",
            report.verdict,
            post_hoc,
            records.len(),
            report.stats.truncated
        );
        // When the history is clean the agreement is byte-equal: both Ok.
        if post_hoc.is_ok() {
            prop_assert_eq!(report.verdict, mwr_check::Verdict::Ok);
        }
    }
}
