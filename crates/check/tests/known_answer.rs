//! Known-answer tests: tiny hand-written histories with verdicts derivable
//! on paper, pinning the graph checker, the Wing–Gong oracle, and the
//! MWA judge to each other and to the definitions.

use mwr_check::{check_atomicity, check_mwa, search_atomicity, History, MwaViolation, Operation, Timestamp};
use mwr_core::{OpId, OpKind, OpResult};
use mwr_sim::SimTime;
use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};

fn ts(t: u64) -> Timestamp {
    Timestamp { time: SimTime::from_ticks(t), seq: t }
}

fn tv(ts_: u64, w: u32, v: u64) -> TaggedValue {
    TaggedValue::new(Tag::new(ts_, WriterId::new(w)), Value::new(v))
}

fn write(client: u32, seq: u64, val: TaggedValue, s: u64, f: u64) -> Operation {
    Operation {
        id: OpId { client: ClientId::writer(client), seq },
        kind: OpKind::Write(val.value()),
        result: OpResult::Written(val),
        invoked: ts(s),
        completed: ts(f),
    }
}

fn read(client: u32, seq: u64, val: TaggedValue, s: u64, f: u64) -> Operation {
    Operation {
        id: OpId { client: ClientId::reader(client), seq },
        kind: OpKind::Read,
        result: OpResult::Read(val),
        invoked: ts(s),
        completed: ts(f),
    }
}

/// Sequential writes, each read returning the latest completed write, with
/// one read overlapping a write and legally returning the older value.
fn atomic_history() -> History {
    let v1 = tv(1, 0, 10);
    let v2 = tv(2, 1, 20);
    History::from_operations(vec![
        write(0, 0, v1, 0, 10),
        read(0, 0, v1, 12, 18),
        // Overlaps the second write; returning the pre-state is atomic.
        read(1, 0, v1, 19, 27),
        write(1, 0, v2, 20, 30),
        read(0, 1, v2, 32, 40),
        read(1, 1, v2, 42, 50),
    ])
    .expect("well-formed")
}

/// The canonical new/old inversion: reader 1 sees the new value, then
/// reader 2 — strictly later — sees the old one. The inverting write is
/// still open, so MWA2 (read after a *completed* write) does not bind and
/// the violation is exactly MWA4.
fn new_old_inversion_mwa4() -> History {
    let v1 = tv(1, 0, 10);
    let v2 = tv(2, 1, 20);
    History::from_operations(vec![
        write(0, 0, v1, 0, 10),
        write(1, 0, v2, 20, 100), // open past both reads
        read(0, 0, v2, 30, 40),   // new…
        read(1, 0, v1, 50, 60),   // …then old: inversion
    ])
    .expect("well-formed")
}

/// The same inversion, but the newer write completes before the stale
/// read, so the first violated obligation is MWA2.
fn new_old_inversion_mwa2() -> History {
    let v1 = tv(1, 0, 10);
    let v2 = tv(2, 1, 20);
    History::from_operations(vec![
        write(0, 0, v1, 0, 10),
        write(1, 0, v2, 20, 30),
        read(0, 0, v2, 32, 40),
        read(1, 0, v1, 50, 60),
    ])
    .expect("well-formed")
}

#[test]
fn hand_written_atomic_history_passes_every_judge() {
    let h = atomic_history();
    assert!(check_atomicity(&h).is_ok(), "graph checker");
    assert!(search_atomicity(&h).is_ok(), "exhaustive oracle");
    assert!(check_mwa(&h).is_ok(), "MWA0–MWA4");
}

#[test]
fn new_old_inversion_fails_atomicity_and_mwa4() {
    let h = new_old_inversion_mwa4();
    assert!(!check_atomicity(&h).is_ok(), "graph checker must reject");
    assert!(!search_atomicity(&h).is_ok(), "oracle must reject");
    assert!(
        matches!(check_mwa(&h), Err(MwaViolation::Mwa4 { .. })),
        "expected MWA4, got {:?}",
        check_mwa(&h)
    );
}

#[test]
fn completed_write_turns_the_inversion_into_mwa2() {
    let h = new_old_inversion_mwa2();
    assert!(!check_atomicity(&h).is_ok());
    assert!(!search_atomicity(&h).is_ok());
    assert!(
        matches!(check_mwa(&h), Err(MwaViolation::Mwa2 { .. })),
        "expected MWA2, got {:?}",
        check_mwa(&h)
    );
}

#[test]
fn mwa_and_atomicity_verdicts_match_on_all_known_answers() {
    // For tag-disciplined histories the MWA obligations imply atomicity and
    // vice versa; the three known answers must agree judge-for-judge.
    for (history, expect_ok) in [
        (atomic_history(), true),
        (new_old_inversion_mwa4(), false),
        (new_old_inversion_mwa2(), false),
    ] {
        assert_eq!(check_atomicity(&history).is_ok(), expect_ok, "graph: {history}");
        assert_eq!(search_atomicity(&history).is_ok(), expect_ok, "oracle: {history}");
        assert_eq!(check_mwa(&history).is_ok(), expect_ok, "mwa: {history}");
    }
}
