//! Latency statistics.

use std::fmt;

use mwr_sim::SimTime;

/// A collection of latency samples with exact percentile queries.
///
/// Experiment scales in this workspace are ≤ 10⁶ samples, so samples are
/// stored exactly and sorted lazily; no bucketing error is introduced.
///
/// # Examples
///
/// ```
/// use mwr_sim::SimTime;
/// use mwr_workload::LatencyStats;
///
/// let mut stats = LatencyStats::new();
/// for t in [10, 20, 30, 40, 50] {
///     stats.record(SimTime::from_ticks(t));
/// }
/// assert_eq!(stats.count(), 5);
/// assert_eq!(stats.percentile(50.0), SimTime::from_ticks(30));
/// assert_eq!(stats.max(), SimTime::from_ticks(50));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        self.samples.push(latency.ticks());
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Absorbs every sample of `other` (used to combine per-thread stats).
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn sorted_samples(&mut self) -> &[u64] {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        &self.samples
    }

    /// The `p`-th percentile (nearest-rank), or zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&mut self, p: f64) -> SimTime {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        let samples = self.sorted_samples();
        if samples.is_empty() {
            return SimTime::ZERO;
        }
        let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
        SimTime::from_ticks(samples[rank - 1])
    }

    /// The arithmetic mean, or zero when empty.
    pub fn mean(&self) -> SimTime {
        if self.samples.is_empty() {
            return SimTime::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        SimTime::from_ticks((sum / self.samples.len() as u128) as u64)
    }

    /// The largest sample, or zero when empty.
    pub fn max(&self) -> SimTime {
        SimTime::from_ticks(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// The smallest sample, or zero when empty.
    pub fn min(&self) -> SimTime {
        SimTime::from_ticks(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// A one-line summary (count, mean, p50/p95/p99, max).
    pub fn summary(&mut self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean: self.mean(),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
            max: self.max(),
        }
    }
}

/// A snapshot of the interesting latency aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean: SimTime,
    /// Median.
    pub p50: SimTime,
    /// 95th percentile.
    pub p95: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// Maximum.
    pub max: SimTime,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.percentile(99.0), SimTime::ZERO);
        assert_eq!(s.mean(), SimTime::ZERO);
        assert_eq!(s.max(), SimTime::ZERO);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut s = LatencyStats::new();
        for t in 1..=100 {
            s.record(SimTime::from_ticks(t));
        }
        assert_eq!(s.percentile(1.0), SimTime::from_ticks(1));
        assert_eq!(s.percentile(50.0), SimTime::from_ticks(50));
        assert_eq!(s.percentile(99.0), SimTime::from_ticks(99));
        assert_eq!(s.percentile(100.0), SimTime::from_ticks(100));
    }

    #[test]
    fn summary_aggregates() {
        let mut s = LatencyStats::new();
        for t in [2, 4, 6] {
            s.record(SimTime::from_ticks(t));
        }
        assert_eq!(s.min(), SimTime::from_ticks(2));
        let sum = s.summary();
        assert_eq!(sum.count, 3);
        assert_eq!(sum.mean, SimTime::from_ticks(4));
        assert_eq!(sum.max, SimTime::from_ticks(6));
        assert!(sum.to_string().contains("n=3"));
    }

    #[test]
    fn recording_after_query_resorts() {
        let mut s = LatencyStats::new();
        s.record(SimTime::from_ticks(10));
        assert_eq!(s.percentile(50.0), SimTime::from_ticks(10));
        s.record(SimTime::from_ticks(1));
        assert_eq!(s.percentile(50.0), SimTime::from_ticks(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        LatencyStats::new().percentile(101.0);
    }
}
