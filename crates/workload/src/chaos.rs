//! Fault-injected open-loop drive: the live throughput driver with a
//! deterministic [`FaultPlan`] executing against the cluster while client
//! threads hammer it.
//!
//! The injector runs on the driving thread, walking the plan **in order**:
//! each step waits for its trigger (a cluster-wide completed-op count or
//! an elapsed wall-clock time), then fires against the cluster — crashing
//! a server, rejoining it through quorum state transfer, or running a
//! burst of short-lived churn clients that join, read, and depart
//! floor-safely. Client threads never abort the drive on an operation
//! error: failures are counted in the report, because the whole point of
//! a chaos drive is to measure whether the service stayed up (with
//! retries on, a plan that keeps a quorum alive should report zero).
//!
//! Churn clients run sequentially on one **reserved reader slot** — the
//! highest-indexed reader of the configuration, which the stable drive
//! leaves unspawned whenever the plan contains a
//! [`FaultEvent::ChurnBurst`]. Each churn incarnation registers, reads,
//! then departs, so acknowledged-floor GC on the servers never wedges on
//! a client that will never report again.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use mwr_core::FastWire;
use mwr_runtime::{
    AuditTap, EndpointFactory, FaultEvent, FaultPlan, FaultTrigger, RetryPolicy, RuntimeCluster,
    RuntimeError,
};
use mwr_sim::SimTime;
use mwr_types::Value;

use crate::live::ThroughputReport;
use crate::stats::LatencyStats;

/// How often the injector polls its current step's trigger.
const TRIGGER_POLL: Duration = Duration::from_micros(200);

/// What a fault-injected drive did to the cluster and how the service
/// held up. The latency/throughput half lives in `throughput`; the rest
/// counts the plan's effects so harnesses can assert a scenario actually
/// exercised what it claimed (a plan whose triggers never fire reports
/// zero crashes, not a silent pass).
#[derive(Debug)]
pub struct ChaosReport {
    /// The measured drive (completed operations only).
    pub throughput: ThroughputReport,
    /// Servers crashed by the plan.
    pub crashes: u32,
    /// Servers brought back through quorum state transfer.
    pub rejoins: u32,
    /// Rejoin attempts refused (no fetch quorum of live peers).
    pub rejoin_failures: u32,
    /// Committed live reconfigurations (joint-quorum handovers).
    pub reconfigs: u32,
    /// Reconfigurations refused (handover short of both quorums, or a
    /// target shape that would not assemble quorums).
    pub reconfig_failures: u32,
    /// Short-lived churn clients that joined (registered and read).
    pub churn_joined: u32,
    /// Churn clients that departed floor-safely (acknowledged by a
    /// quorum).
    pub churn_departed: u32,
    /// Reads completed by churn clients (counted in `throughput` too).
    pub churn_reads: u64,
    /// Operations that returned an error (timeouts, dead endpoints). The
    /// issuing thread keeps going; with retries armed and a plan that
    /// never kills a quorum this should be zero.
    pub failed_ops: u64,
    /// Plan steps that never fired because the drive's duration elapsed
    /// first — a non-zero count means the scenario under-ran its plan.
    pub steps_skipped: u32,
    /// Servers alive when the drive finished, ascending.
    pub live_servers: Vec<u32>,
}

impl ChaosReport {
    /// True if every injected fault healed: all rejoins succeeded, every
    /// plan step fired, no operation failed, and every churn client that
    /// joined also departed.
    pub fn healed(&self) -> bool {
        self.rejoin_failures == 0
            && self.reconfig_failures == 0
            && self.steps_skipped == 0
            && self.failed_ops == 0
            && self.churn_joined == self.churn_departed
    }
}

/// Runs an open-loop drive for `duration` while executing `plan` against
/// the cluster (the module docs above describe the execution model).
/// Stable clients get `retry` so transient fault windows are ridden out
/// rather than surfaced; when `tap` is given they also emit sampled
/// records to the streaming auditor (churn clients stay untapped — each
/// incarnation reuses the reserved slot's client id, and the auditor
/// keys operations by id). Note `&mut` on the cluster: crash and rejoin
/// restructure it.
///
/// # Errors
///
/// Returns a [`RuntimeError`] only for setup failures (a stable client
/// endpoint that cannot open). Operation failures during the drive are
/// counted in the report, never returned.
pub fn run_chaos_live<F: EndpointFactory>(
    cluster: &mut RuntimeCluster<F>,
    wire: FastWire,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    plan: FaultPlan,
    duration: Duration,
    tap: Option<&AuditTap>,
) -> Result<ChaosReport, RuntimeError> {
    let config = cluster.config();
    let churny = plan.steps().iter().any(|s| matches!(s.event, FaultEvent::ChurnBurst { .. }));
    // The churn slot is the highest reader index; the stable drive leaves
    // it free so sequential churn incarnations can mint it.
    let stable_readers =
        if churny { config.readers().saturating_sub(1) } else { config.readers() };
    let churn_slot = config.readers().saturating_sub(1) as u32;

    let mut writers = Vec::with_capacity(config.writers());
    for w in 0..config.writers() as u32 {
        let mut client = cluster.writer(w)?.with_retry(retry);
        if let Some(t) = timeout {
            client = client.with_timeout(t);
        }
        if let Some(tap) = tap {
            client = client.with_tap(tap.clone());
        }
        writers.push((w, client));
    }
    let mut readers = Vec::with_capacity(stable_readers);
    for r in 0..stable_readers as u32 {
        let mut client = cluster.reader_with_wire(r, wire)?.with_retry(retry);
        if let Some(t) = timeout {
            client = client.with_timeout(t);
        }
        if let Some(tap) = tap {
            client = client.with_tap(tap.clone());
        }
        readers.push(client);
    }

    let completed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let start = Instant::now();
    let (mut reads, mut writes) = (LatencyStats::new(), LatencyStats::new());
    let mut report = ChaosReport {
        throughput: ThroughputReport {
            reads: LatencyStats::new(),
            writes: LatencyStats::new(),
            elapsed: Duration::ZERO,
        },
        crashes: 0,
        rejoins: 0,
        rejoin_failures: 0,
        reconfigs: 0,
        reconfig_failures: 0,
        churn_joined: 0,
        churn_departed: 0,
        churn_reads: 0,
        failed_ops: 0,
        steps_skipped: 0,
        live_servers: Vec::new(),
    };

    thread::scope(|scope| {
        let completed = &completed;
        let failed = &failed;
        let mut write_threads = Vec::new();
        for (w, mut client) in writers {
            write_threads.push(scope.spawn(move || {
                let mut lat = LatencyStats::new();
                let mut value = u64::from(w) * 1_000_000_000 + 1;
                while start.elapsed() < duration {
                    let t0 = Instant::now();
                    match client.write(Value::new(value)) {
                        Ok(_) => {
                            lat.record(SimTime::from_ticks(t0.elapsed().as_micros() as u64));
                            completed.fetch_add(1, Ordering::Relaxed);
                            value += 1;
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            // Don't hot-spin on a persistent failure mode.
                            thread::sleep(TRIGGER_POLL);
                        }
                    }
                }
                lat
            }));
        }
        let mut read_threads = Vec::new();
        for mut client in readers {
            read_threads.push(scope.spawn(move || {
                let mut lat = LatencyStats::new();
                while start.elapsed() < duration {
                    let t0 = Instant::now();
                    match client.read() {
                        Ok(_) => {
                            lat.record(SimTime::from_ticks(t0.elapsed().as_micros() as u64));
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            thread::sleep(TRIGGER_POLL);
                        }
                    }
                }
                lat
            }));
        }

        // The injector: this thread walks the plan in order while the
        // client threads run. Steps whose trigger never comes due before
        // the drive ends are counted as skipped, not silently dropped.
        for step in plan.steps() {
            let due = |now: Duration| match step.trigger {
                FaultTrigger::Ops(n) => completed.load(Ordering::Relaxed) >= n,
                FaultTrigger::Elapsed(d) => now >= d,
            };
            let mut fired = true;
            loop {
                let now = start.elapsed();
                if due(now) {
                    break;
                }
                if now >= duration {
                    fired = false;
                    break;
                }
                thread::sleep(TRIGGER_POLL);
            }
            if !fired {
                report.steps_skipped += 1;
                continue;
            }
            match step.event {
                FaultEvent::CrashServer(idx) => {
                    if cluster.live_servers().contains(&idx) {
                        cluster.crash_server(idx);
                        report.crashes += 1;
                    }
                }
                FaultEvent::RejoinServer(idx) => {
                    if cluster.live_servers().contains(&idx) {
                        continue;
                    }
                    match cluster.rejoin_server(idx) {
                        Ok(()) => report.rejoins += 1,
                        Err(_) => report.rejoin_failures += 1,
                    }
                }
                FaultEvent::ChurnBurst { clients, ops_each } => {
                    for _ in 0..clients {
                        let Ok(client) = cluster.reader_with_wire(churn_slot, wire) else {
                            failed.fetch_add(1, Ordering::Relaxed);
                            continue;
                        };
                        let mut client = client.with_retry(retry);
                        if let Some(t) = timeout {
                            client = client.with_timeout(t);
                        }
                        report.churn_joined += 1;
                        for _ in 0..ops_each {
                            let t0 = Instant::now();
                            match client.read() {
                                Ok(_) => {
                                    reads.record(SimTime::from_ticks(
                                        t0.elapsed().as_micros() as u64,
                                    ));
                                    report.churn_reads += 1;
                                    completed.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    failed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        match client.depart() {
                            Ok(()) => report.churn_departed += 1,
                            Err(_) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                FaultEvent::Delay(d) => thread::sleep(d),
                FaultEvent::Reconfigure { add, remove } => {
                    // Retire the lowest-indexed current members; refuse
                    // (count, don't panic) if the target shape would not
                    // assemble quorums.
                    let members = cluster.members().to_vec();
                    let removes: Vec<u32> =
                        members.iter().copied().take(remove as usize).collect();
                    let target = members.len() + add as usize - removes.len();
                    if (add == 0 && removes.is_empty())
                        || cluster.config().reconfigured(target).is_err()
                    {
                        report.reconfig_failures += 1;
                        continue;
                    }
                    match cluster.reconfigure(add as usize, &removes) {
                        Ok(_) => report.reconfigs += 1,
                        Err(_) => report.reconfig_failures += 1,
                    }
                }
            }
        }

        for t in write_threads {
            writes.merge(&t.join().expect("writer thread panicked"));
        }
        for t in read_threads {
            reads.merge(&t.join().expect("reader thread panicked"));
        }
    });

    report.throughput = ThroughputReport { reads, writes, elapsed: start.elapsed() };
    report.failed_ops = failed.load(Ordering::Relaxed);
    report.live_servers = cluster.live_servers();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_core::Protocol;
    use mwr_runtime::InMemoryTransport;
    use mwr_types::ClusterConfig;

    fn cluster() -> RuntimeCluster<InMemoryTransport> {
        let config = ClusterConfig::new(3, 1, 2, 1).unwrap();
        RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap()
    }

    #[test]
    fn crash_and_rejoin_fire_in_order_and_heal() {
        let mut cluster = cluster();
        let plan = FaultPlan::new()
            .at_ops(20, FaultEvent::CrashServer(0))
            .at_ops(60, FaultEvent::RejoinServer(0));
        let report = run_chaos_live(
            &mut cluster,
            FastWire::default(),
            Some(Duration::from_secs(2)),
            RetryPolicy { attempts: 4, backoff: Duration::from_millis(2) },
            plan,
            Duration::from_millis(300),
            None,
        )
        .unwrap();
        assert_eq!(report.crashes, 1, "{report:?}");
        assert_eq!(report.rejoins, 1, "{report:?}");
        assert!(report.healed(), "{report:?}");
        assert_eq!(report.live_servers, vec![0, 1, 2]);
        assert!(report.throughput.ops() > 0);
        cluster.shutdown();
    }

    #[test]
    fn churn_burst_reserves_the_top_reader_slot_and_departs_everyone() {
        let mut cluster = cluster();
        let plan = FaultPlan::churn_storm(25, 2, 10);
        let report = run_chaos_live(
            &mut cluster,
            FastWire::default(),
            Some(Duration::from_secs(2)),
            RetryPolicy::default(),
            plan,
            Duration::from_millis(300),
            None,
        )
        .unwrap();
        assert_eq!(report.churn_joined, 25, "{report:?}");
        assert_eq!(report.churn_departed, 25, "{report:?}");
        assert_eq!(report.churn_reads, 50, "{report:?}");
        assert!(report.healed(), "{report:?}");
        cluster.shutdown();
    }

    #[test]
    fn reconfigure_swaps_members_mid_drive_without_failed_ops() {
        let config = ClusterConfig::new(5, 1, 2, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let plan = FaultPlan::reconfigure(2, 2, 30);
        let report = run_chaos_live(
            &mut cluster,
            FastWire::default(),
            Some(Duration::from_secs(2)),
            RetryPolicy { attempts: 4, backoff: Duration::from_millis(2) },
            plan,
            Duration::from_millis(400),
            None,
        )
        .unwrap();
        assert_eq!(report.reconfigs, 1, "{report:?}");
        assert!(report.healed(), "{report:?}");
        assert_eq!(report.live_servers, vec![2, 3, 4, 5, 6]);
        assert_eq!(cluster.members(), &[2, 3, 4, 5, 6]);
        assert!(report.throughput.ops() > 0);
        cluster.shutdown();
    }

    #[test]
    fn impossible_reconfigure_shape_is_refused_not_fatal() {
        let mut cluster = cluster(); // S = 3, t = 1
        // Removing two of three servers would leave S' = 1 ≤ 2t: refused.
        let plan = FaultPlan::reconfigure(0, 2, 5);
        let report = run_chaos_live(
            &mut cluster,
            FastWire::default(),
            Some(Duration::from_secs(2)),
            RetryPolicy::default(),
            plan,
            Duration::from_millis(200),
            None,
        )
        .unwrap();
        assert_eq!(report.reconfig_failures, 1, "{report:?}");
        assert_eq!(report.reconfigs, 0);
        assert!(!report.healed());
        assert_eq!(cluster.members(), &[0, 1, 2]);
        cluster.shutdown();
    }

    #[test]
    fn steps_past_the_drives_end_are_counted_skipped() {
        let mut cluster = cluster();
        let plan = FaultPlan::new().at_ops(u64::MAX, FaultEvent::CrashServer(0));
        let report = run_chaos_live(
            &mut cluster,
            FastWire::default(),
            None,
            RetryPolicy::default(),
            plan,
            Duration::from_millis(30),
            None,
        )
        .unwrap();
        assert_eq!(report.steps_skipped, 1);
        assert_eq!(report.crashes, 0);
        assert!(!report.healed());
        cluster.shutdown();
    }
}
