//! Workload generation and measurement for `mwr` experiments.
//!
//! - [`run_closed_loop`] — closed-loop clients over the simulator, generic
//!   over every [`SimCluster`](mwr_core::SimCluster) protocol family; the
//!   engine behind the latency figures in `EXPERIMENTS.md`.
//! - [`run_closed_loop_live`] — the same closed-loop [`WorkloadSpec`] over
//!   the live runtime (threads, channels or TCP), one tick = 1 µs.
//! - [`run_open_loop_live`] — the saturating throughput driver: every
//!   client issues back-to-back, load is swept via the client population,
//!   and the [`ThroughputReport`] carries ops/sec plus latency-under-load.
//! - [`run_keyspace_open_loop`] — the open-loop driver over a sharded
//!   [`KeyspaceCluster`](mwr_runtime::KeyspaceCluster): every operation's
//!   key is drawn from a Zipf law over `N` registers, with per-key scoped
//!   clients multiplexed over one endpoint per thread.
//! - [`run_chaos_live`] — the open-loop driver with a deterministic
//!   [`FaultPlan`](mwr_runtime::FaultPlan) executing against the cluster:
//!   crash/rejoin/churn events fire at fixed op-counts or times and the
//!   [`ChaosReport`] counts what fired and whether the service held up.
//! - [`LatencyStats`] / [`LatencySummary`] — exact percentile statistics.
//! - [`TextTable`] — aligned text tables the experiment binaries print.
//!
//! # Examples
//!
//! ```
//! use mwr_core::{Cluster, Protocol};
//! use mwr_sim::SimTime;
//! use mwr_types::ClusterConfig;
//! use mwr_workload::{run_closed_loop, WorkloadSpec};
//!
//! let config = ClusterConfig::new(5, 1, 2, 2)?;
//! let cluster = Cluster::new(config, Protocol::W2R1);
//! let report = run_closed_loop(&cluster, WorkloadSpec::default())?;
//! assert!(report.throughput_per_kilotick() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chaos;
mod driver;
mod keyspace;
mod live;
mod stats;
mod table;

pub use chaos::{run_chaos_live, ChaosReport};
pub use keyspace::{
    run_keyspace_chaos, run_keyspace_open_loop, run_keyspace_open_loop_audited, TapFor,
};
pub use driver::{
    drive_closed_loop, run_closed_loop, run_closed_loop_customized, WorkloadReport, WorkloadSpec,
};
pub use live::{
    run_closed_loop_live, run_closed_loop_live_audited, run_open_loop_live,
    run_open_loop_live_audited, ThroughputReport,
};
pub use stats::{LatencyStats, LatencySummary};
pub use table::TextTable;
