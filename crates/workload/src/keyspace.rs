//! Open-loop throughput driver for the sharded keyspace.
//!
//! The flagship multi-register workload: every writer and reader thread
//! issues back-to-back operations against a [`KeyspaceCluster`], picking
//! the *key* of each operation from a [`Zipf`] distribution over
//! `1..=keys` — rank 1 the hottest register, skew `s` the tail weight.
//! Zipf-skewed popularity is the realistic regime for a keyed service
//! (caches, KV front ends), and it exercises exactly what sharding buys:
//! hot keys contend inside their own `g`-server group while the long tail
//! spreads across the other groups' quorums in parallel.
//!
//! Per-key clients are minted lazily and **multiplex one endpoint per
//! thread** (an `Arc`-shared endpoint under every scoped client), so a
//! thread touching 64 keys still drives one inbox and one set of per-peer
//! connections — the coalescing the keyspace frame header exists for.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{SeedableRng, Zipf};

use mwr_runtime::{
    AuditTap, EndpointFactory, KeyspaceCluster, LiveReader, LiveWriter, RetryPolicy, RuntimeError,
};
use mwr_sim::SimTime;
use mwr_types::{ReaderId, RegisterId, Value, WriterId};

use crate::live::ThroughputReport;
use crate::stats::LatencyStats;

/// Per-register audit wiring for the keyspace driver: atomicity is a
/// per-register property, so each key's clients need that key's tap.
pub type TapFor<'a> = &'a (dyn Fn(RegisterId) -> AuditTap + Sync);

/// Runs an open-loop Zipf-keyed throughput drive against a running
/// keyspace cluster: one thread per configured reader and writer, each
/// issuing back-to-back operations for `duration`, with every operation's
/// key drawn Zipf(`zipf`) from `keys` registers (`zipf = 0.0` is uniform).
///
/// The drive is deterministic in its *key sequence* per `seed` (each
/// thread derives its own stream), though wall-clock interleaving of
/// course is not.
///
/// # Errors
///
/// Returns the first client's [`RuntimeError`] if an endpoint cannot be
/// opened or an operation fails (e.g. a quorum timeout).
///
/// # Panics
///
/// Panics if `keys` is zero.
pub fn run_keyspace_open_loop<F: EndpointFactory>(
    cluster: &KeyspaceCluster<F>,
    keys: usize,
    zipf: f64,
    timeout: Option<Duration>,
    duration: Duration,
    seed: u64,
) -> Result<ThroughputReport, RuntimeError> {
    run_keyspace_open_loop_audited(
        cluster,
        keys,
        zipf,
        timeout,
        RetryPolicy::default(),
        duration,
        seed,
        None,
    )
}

/// [`run_keyspace_open_loop`] with a [`RetryPolicy`] and optional
/// per-register audit taps: when `tap_for` is given, every client a
/// thread mints for key `k` carries `tap_for(k)`, so each register's
/// sampled records flow to that register's own streaming auditor.
///
/// # Errors
///
/// Returns the first client's [`RuntimeError`] if an endpoint cannot be
/// opened or an operation fails (e.g. a quorum timeout).
///
/// # Panics
///
/// Panics if `keys` is zero.
#[allow(clippy::too_many_arguments)]
pub fn run_keyspace_open_loop_audited<F: EndpointFactory>(
    cluster: &KeyspaceCluster<F>,
    keys: usize,
    zipf: f64,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    duration: Duration,
    seed: u64,
    tap_for: Option<TapFor<'_>>,
) -> Result<ThroughputReport, RuntimeError> {
    assert!(keys > 0, "keyspace drive needs at least one key");
    let config = cluster.config();
    let law = Zipf::new(keys as u64, zipf);
    // Everything a thread needs to mint per-key clients is Copy — the
    // cluster itself (whose factory need not be Sync) stays on this thread.
    let router = *cluster.router();
    let group_config = config.group_config();
    let (write_mode, read_mode) =
        (cluster.protocol().write_mode(), cluster.protocol().read_mode());

    // Open every thread's endpoint up front so setup failures surface
    // before any thread spawns; per-key clients are minted lazily inside
    // the threads over Arc clones of these.
    let mut writer_eps = Vec::with_capacity(config.writers());
    for w in 0..config.writers() as u32 {
        let ep = cluster
            .factory()
            .open(WriterId::new(w).into())
            .map_err(RuntimeError::from)?;
        writer_eps.push((w, Arc::new(ep)));
    }
    let mut reader_eps = Vec::with_capacity(config.readers());
    for r in 0..config.readers() as u32 {
        let ep = cluster
            .factory()
            .open(ReaderId::new(r).into())
            .map_err(RuntimeError::from)?;
        reader_eps.push((r, Arc::new(ep)));
    }

    let start = Instant::now();
    let (mut reads, mut writes) = (LatencyStats::new(), LatencyStats::new());
    let mut first_error: Option<RuntimeError> = None;
    thread::scope(|scope| {
        let mut write_threads = Vec::new();
        for (w, ep) in writer_eps {
            write_threads.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(w) << 1));
                let mut clients: BTreeMap<RegisterId, LiveWriter<Arc<F::Endpoint>>> =
                    BTreeMap::new();
                let mut lat = LatencyStats::new();
                let mut value = u64::from(w) * 1_000_000_000 + 1;
                while start.elapsed() < duration {
                    let key = RegisterId::new((law.sample(&mut rng) - 1) as u32);
                    let client = clients.entry(key).or_insert_with(|| {
                        let mut c = LiveWriter::new(
                            Arc::clone(&ep),
                            WriterId::new(w),
                            group_config,
                            write_mode,
                        )
                        .with_scope(key, router.group_of(key))
                        .with_retry(retry);
                        if let Some(t) = timeout {
                            c = c.with_timeout(t);
                        }
                        if let Some(tap_for) = tap_for {
                            c = c.with_tap(tap_for(key));
                        }
                        c
                    });
                    let t0 = Instant::now();
                    client.write(Value::new(value))?;
                    lat.record(SimTime::from_ticks(t0.elapsed().as_micros() as u64));
                    value += 1;
                }
                Ok::<LatencyStats, RuntimeError>(lat)
            }));
        }
        let mut read_threads = Vec::new();
        for (r, ep) in reader_eps {
            read_threads.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(r) << 1) ^ 1);
                let mut clients: BTreeMap<RegisterId, LiveReader<Arc<F::Endpoint>>> =
                    BTreeMap::new();
                let mut lat = LatencyStats::new();
                while start.elapsed() < duration {
                    let key = RegisterId::new((law.sample(&mut rng) - 1) as u32);
                    let client = clients.entry(key).or_insert_with(|| {
                        let mut c = LiveReader::new(
                            Arc::clone(&ep),
                            ReaderId::new(r),
                            group_config,
                            read_mode,
                        )
                        .with_scope(key, router.group_of(key))
                        .with_retry(retry);
                        if let Some(t) = timeout {
                            c = c.with_timeout(t);
                        }
                        if let Some(tap_for) = tap_for {
                            c = c.with_tap(tap_for(key));
                        }
                        c
                    });
                    let t0 = Instant::now();
                    client.read()?;
                    lat.record(SimTime::from_ticks(t0.elapsed().as_micros() as u64));
                }
                Ok::<LatencyStats, RuntimeError>(lat)
            }));
        }
        for t in write_threads {
            match t.join().expect("keyspace writer thread panicked") {
                Ok(lat) => writes.merge(&lat),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        for t in read_threads {
            match t.join().expect("keyspace reader thread panicked") {
                Ok(lat) => reads.merge(&lat),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
    });
    if let Some(e) = first_error {
        return Err(e);
    }
    Ok(ThroughputReport { reads, writes, elapsed: start.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_core::Protocol;
    use mwr_runtime::InMemoryTransport;
    use mwr_types::KeyspaceConfig;

    #[test]
    fn keyspace_drive_reports_throughput_across_keys() {
        let config = KeyspaceConfig::new(5, 1, 3, 8, 2, 2).unwrap();
        let cluster =
            KeyspaceCluster::start_on(InMemoryTransport::new(), config, Protocol::W2Ra).unwrap();
        let report =
            run_keyspace_open_loop(&cluster, 16, 1.1, None, Duration::from_millis(30), 42)
                .unwrap();
        assert!(report.reads.count() > 0 && report.writes.count() > 0);
        assert!(report.ops_per_sec() > 0.0);
        cluster.shutdown();
    }

    #[test]
    fn single_key_drive_degenerates_to_one_register() {
        let config = KeyspaceConfig::new(3, 1, 3, 4, 1, 1).unwrap();
        let cluster =
            KeyspaceCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R2).unwrap();
        let report =
            run_keyspace_open_loop(&cluster, 1, 0.0, None, Duration::from_millis(20), 7).unwrap();
        assert!(report.ops() > 0);
        cluster.shutdown();
    }
}
