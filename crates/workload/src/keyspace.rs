//! Open-loop throughput driver for the sharded keyspace.
//!
//! The flagship multi-register workload: every writer and reader thread
//! issues back-to-back operations against a [`KeyspaceCluster`], picking
//! the *key* of each operation from a [`Zipf`] distribution over
//! `1..=keys` — rank 1 the hottest register, skew `s` the tail weight.
//! Zipf-skewed popularity is the realistic regime for a keyed service
//! (caches, KV front ends), and it exercises exactly what sharding buys:
//! hot keys contend inside their own `g`-server group while the long tail
//! spreads across the other groups' quorums in parallel.
//!
//! Per-key clients are minted lazily and **multiplex one endpoint per
//! thread** (an `Arc`-shared endpoint under every scoped client), so a
//! thread touching 64 keys still drives one inbox and one set of per-peer
//! connections — the coalescing the keyspace frame header exists for.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{SeedableRng, Zipf};

use mwr_runtime::{
    AuditTap, EndpointFactory, FaultEvent, FaultPlan, FaultTrigger, KeyspaceCluster, LiveReader,
    LiveWriter, RetryPolicy, RuntimeError,
};
use mwr_sim::SimTime;
use mwr_types::{ReaderId, RegisterId, Value, WriterId};

use crate::chaos::ChaosReport;
use crate::live::ThroughputReport;
use crate::stats::LatencyStats;

/// How often the keyspace injector polls its current step's trigger.
const TRIGGER_POLL: Duration = Duration::from_micros(200);

/// Per-register audit wiring for the keyspace driver: atomicity is a
/// per-register property, so each key's clients need that key's tap.
pub type TapFor<'a> = &'a (dyn Fn(RegisterId) -> AuditTap + Sync);

/// Runs an open-loop Zipf-keyed throughput drive against a running
/// keyspace cluster: one thread per configured reader and writer, each
/// issuing back-to-back operations for `duration`, with every operation's
/// key drawn Zipf(`zipf`) from `keys` registers (`zipf = 0.0` is uniform).
///
/// The drive is deterministic in its *key sequence* per `seed` (each
/// thread derives its own stream), though wall-clock interleaving of
/// course is not.
///
/// # Errors
///
/// Returns the first client's [`RuntimeError`] if an endpoint cannot be
/// opened or an operation fails (e.g. a quorum timeout).
///
/// # Panics
///
/// Panics if `keys` is zero.
pub fn run_keyspace_open_loop<F: EndpointFactory>(
    cluster: &KeyspaceCluster<F>,
    keys: usize,
    zipf: f64,
    timeout: Option<Duration>,
    duration: Duration,
    seed: u64,
) -> Result<ThroughputReport, RuntimeError> {
    run_keyspace_open_loop_audited(
        cluster,
        keys,
        zipf,
        timeout,
        RetryPolicy::default(),
        duration,
        seed,
        None,
    )
}

/// [`run_keyspace_open_loop`] with a [`RetryPolicy`] and optional
/// per-register audit taps: when `tap_for` is given, every client a
/// thread mints for key `k` carries `tap_for(k)`, so each register's
/// sampled records flow to that register's own streaming auditor.
///
/// # Errors
///
/// Returns the first client's [`RuntimeError`] if an endpoint cannot be
/// opened or an operation fails (e.g. a quorum timeout).
///
/// # Panics
///
/// Panics if `keys` is zero.
#[allow(clippy::too_many_arguments)]
pub fn run_keyspace_open_loop_audited<F: EndpointFactory>(
    cluster: &KeyspaceCluster<F>,
    keys: usize,
    zipf: f64,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    duration: Duration,
    seed: u64,
    tap_for: Option<TapFor<'_>>,
) -> Result<ThroughputReport, RuntimeError> {
    assert!(keys > 0, "keyspace drive needs at least one key");
    let config = cluster.config();
    let law = Zipf::new(keys as u64, zipf);
    // Everything a thread needs to mint per-key clients is Copy — the
    // cluster itself (whose factory need not be Sync) stays on this thread.
    let router = *cluster.router();
    let group_config = config.group_config();
    let (write_mode, read_mode) =
        (cluster.protocol().write_mode(), cluster.protocol().read_mode());
    // Clients watch the cluster view so a reconfiguration mid-drive
    // refreshes their per-key server groups instead of stranding them on
    // retired members.
    let view = cluster.view();

    // Open every thread's endpoint up front so setup failures surface
    // before any thread spawns; per-key clients are minted lazily inside
    // the threads over Arc clones of these.
    let mut writer_eps = Vec::with_capacity(config.writers());
    for w in 0..config.writers() as u32 {
        let ep = cluster
            .factory()
            .open(WriterId::new(w).into())
            .map_err(RuntimeError::from)?;
        writer_eps.push((w, Arc::new(ep)));
    }
    let mut reader_eps = Vec::with_capacity(config.readers());
    for r in 0..config.readers() as u32 {
        let ep = cluster
            .factory()
            .open(ReaderId::new(r).into())
            .map_err(RuntimeError::from)?;
        reader_eps.push((r, Arc::new(ep)));
    }

    let start = Instant::now();
    let (mut reads, mut writes) = (LatencyStats::new(), LatencyStats::new());
    let mut first_error: Option<RuntimeError> = None;
    thread::scope(|scope| {
        let mut write_threads = Vec::new();
        for (w, ep) in writer_eps {
            let view = Arc::clone(&view);
            write_threads.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(w) << 1));
                let mut clients: BTreeMap<RegisterId, LiveWriter<Arc<F::Endpoint>>> =
                    BTreeMap::new();
                let mut lat = LatencyStats::new();
                let mut value = u64::from(w) * 1_000_000_000 + 1;
                while start.elapsed() < duration {
                    let key = RegisterId::new((law.sample(&mut rng) - 1) as u32);
                    let client = clients.entry(key).or_insert_with(|| {
                        let mut c = LiveWriter::new(
                            Arc::clone(&ep),
                            WriterId::new(w),
                            group_config,
                            write_mode,
                        )
                        .with_scope(key, router.group_of(key))
                        .with_view(Arc::clone(&view))
                        .with_retry(retry);
                        if let Some(t) = timeout {
                            c = c.with_timeout(t);
                        }
                        if let Some(tap_for) = tap_for {
                            c = c.with_tap(tap_for(key));
                        }
                        c
                    });
                    let t0 = Instant::now();
                    client.write(Value::new(value))?;
                    lat.record(SimTime::from_ticks(t0.elapsed().as_micros() as u64));
                    value += 1;
                }
                Ok::<LatencyStats, RuntimeError>(lat)
            }));
        }
        let mut read_threads = Vec::new();
        for (r, ep) in reader_eps {
            let view = Arc::clone(&view);
            read_threads.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(r) << 1) ^ 1);
                let mut clients: BTreeMap<RegisterId, LiveReader<Arc<F::Endpoint>>> =
                    BTreeMap::new();
                let mut lat = LatencyStats::new();
                while start.elapsed() < duration {
                    let key = RegisterId::new((law.sample(&mut rng) - 1) as u32);
                    let client = clients.entry(key).or_insert_with(|| {
                        let mut c = LiveReader::new(
                            Arc::clone(&ep),
                            ReaderId::new(r),
                            group_config,
                            read_mode,
                        )
                        .with_scope(key, router.group_of(key))
                        .with_view(Arc::clone(&view))
                        .with_retry(retry);
                        if let Some(t) = timeout {
                            c = c.with_timeout(t);
                        }
                        if let Some(tap_for) = tap_for {
                            c = c.with_tap(tap_for(key));
                        }
                        c
                    });
                    let t0 = Instant::now();
                    client.read()?;
                    lat.record(SimTime::from_ticks(t0.elapsed().as_micros() as u64));
                }
                Ok::<LatencyStats, RuntimeError>(lat)
            }));
        }
        for t in write_threads {
            match t.join().expect("keyspace writer thread panicked") {
                Ok(lat) => writes.merge(&lat),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        for t in read_threads {
            match t.join().expect("keyspace reader thread panicked") {
                Ok(lat) => reads.merge(&lat),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
    });
    if let Some(e) = first_error {
        return Err(e);
    }
    Ok(ThroughputReport { reads, writes, elapsed: start.elapsed() })
}

/// The Zipf-keyed open-loop drive with a deterministic [`FaultPlan`]
/// executing against the keyspace cluster — the multi-register analogue of
/// [`run_chaos_live`](crate::run_chaos_live). The injector walks the plan
/// in order on the driving thread: crashes, quorum-state-transfer rejoins,
/// churn bursts (short-lived readers of the hottest key on the reserved
/// top reader slot), and live [`FaultEvent::Reconfigure`] handovers that
/// add fresh servers and retire the lowest-indexed members while every
/// per-key client keeps serving (clients watch the cluster view and
/// re-derive their shard groups when the epoch moves).
///
/// Client threads never abort the drive on an operation error: failures
/// are counted in the report, because the point of a chaos drive is to
/// measure whether the keyed service stayed up.
///
/// # Errors
///
/// Returns a [`RuntimeError`] only for setup failures (a stable client
/// endpoint that cannot open). Operation failures during the drive are
/// counted, never returned.
///
/// # Panics
///
/// Panics if `keys` is zero.
#[allow(clippy::too_many_arguments)]
pub fn run_keyspace_chaos<F: EndpointFactory>(
    cluster: &mut KeyspaceCluster<F>,
    keys: usize,
    zipf: f64,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    plan: FaultPlan,
    duration: Duration,
    seed: u64,
    tap_for: Option<TapFor<'_>>,
) -> Result<ChaosReport, RuntimeError> {
    assert!(keys > 0, "keyspace drive needs at least one key");
    let config = cluster.config();
    let law = Zipf::new(keys as u64, zipf);
    let router = *cluster.router();
    let group_config = config.group_config();
    let (write_mode, read_mode) =
        (cluster.protocol().write_mode(), cluster.protocol().read_mode());
    let view = cluster.view();
    let churny = plan.steps().iter().any(|s| matches!(s.event, FaultEvent::ChurnBurst { .. }));
    let stable_readers =
        if churny { config.readers().saturating_sub(1) } else { config.readers() };
    let churn_slot = config.readers().saturating_sub(1) as u32;

    let mut writer_eps = Vec::with_capacity(config.writers());
    for w in 0..config.writers() as u32 {
        let ep = cluster
            .factory()
            .open(WriterId::new(w).into())
            .map_err(RuntimeError::from)?;
        writer_eps.push((w, Arc::new(ep)));
    }
    let mut reader_eps = Vec::with_capacity(stable_readers);
    for r in 0..stable_readers as u32 {
        let ep = cluster
            .factory()
            .open(ReaderId::new(r).into())
            .map_err(RuntimeError::from)?;
        reader_eps.push((r, Arc::new(ep)));
    }

    let completed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let start = Instant::now();
    let (mut reads, mut writes) = (LatencyStats::new(), LatencyStats::new());
    let mut report = ChaosReport {
        throughput: ThroughputReport {
            reads: LatencyStats::new(),
            writes: LatencyStats::new(),
            elapsed: Duration::ZERO,
        },
        crashes: 0,
        rejoins: 0,
        rejoin_failures: 0,
        reconfigs: 0,
        reconfig_failures: 0,
        churn_joined: 0,
        churn_departed: 0,
        churn_reads: 0,
        failed_ops: 0,
        steps_skipped: 0,
        live_servers: Vec::new(),
    };

    thread::scope(|scope| {
        let completed = &completed;
        let failed = &failed;
        let mut write_threads = Vec::new();
        for (w, ep) in writer_eps {
            let view = Arc::clone(&view);
            write_threads.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(w) << 1));
                let mut clients: BTreeMap<RegisterId, LiveWriter<Arc<F::Endpoint>>> =
                    BTreeMap::new();
                let mut lat = LatencyStats::new();
                let mut value = u64::from(w) * 1_000_000_000 + 1;
                while start.elapsed() < duration {
                    let key = RegisterId::new((law.sample(&mut rng) - 1) as u32);
                    let client = clients.entry(key).or_insert_with(|| {
                        let mut c = LiveWriter::new(
                            Arc::clone(&ep),
                            WriterId::new(w),
                            group_config,
                            write_mode,
                        )
                        .with_scope(key, router.group_of(key))
                        .with_view(Arc::clone(&view))
                        .with_retry(retry);
                        if let Some(t) = timeout {
                            c = c.with_timeout(t);
                        }
                        if let Some(tap_for) = tap_for {
                            c = c.with_tap(tap_for(key));
                        }
                        c
                    });
                    let t0 = Instant::now();
                    match client.write(Value::new(value)) {
                        Ok(_) => {
                            lat.record(SimTime::from_ticks(t0.elapsed().as_micros() as u64));
                            completed.fetch_add(1, Ordering::Relaxed);
                            value += 1;
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            thread::sleep(TRIGGER_POLL);
                        }
                    }
                }
                lat
            }));
        }
        let mut read_threads = Vec::new();
        for (r, ep) in reader_eps {
            let view = Arc::clone(&view);
            read_threads.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(r) << 1) ^ 1);
                let mut clients: BTreeMap<RegisterId, LiveReader<Arc<F::Endpoint>>> =
                    BTreeMap::new();
                let mut lat = LatencyStats::new();
                while start.elapsed() < duration {
                    let key = RegisterId::new((law.sample(&mut rng) - 1) as u32);
                    let client = clients.entry(key).or_insert_with(|| {
                        let mut c = LiveReader::new(
                            Arc::clone(&ep),
                            ReaderId::new(r),
                            group_config,
                            read_mode,
                        )
                        .with_scope(key, router.group_of(key))
                        .with_view(Arc::clone(&view))
                        .with_retry(retry);
                        if let Some(t) = timeout {
                            c = c.with_timeout(t);
                        }
                        if let Some(tap_for) = tap_for {
                            c = c.with_tap(tap_for(key));
                        }
                        c
                    });
                    let t0 = Instant::now();
                    match client.read() {
                        Ok(_) => {
                            lat.record(SimTime::from_ticks(t0.elapsed().as_micros() as u64));
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            thread::sleep(TRIGGER_POLL);
                        }
                    }
                }
                lat
            }));
        }

        // The injector: walks the plan in order while client threads run.
        for step in plan.steps() {
            let due = |now: Duration| match step.trigger {
                FaultTrigger::Ops(n) => completed.load(Ordering::Relaxed) >= n,
                FaultTrigger::Elapsed(d) => now >= d,
            };
            let mut fired = true;
            loop {
                let now = start.elapsed();
                if due(now) {
                    break;
                }
                if now >= duration {
                    fired = false;
                    break;
                }
                thread::sleep(TRIGGER_POLL);
            }
            if !fired {
                report.steps_skipped += 1;
                continue;
            }
            match step.event {
                FaultEvent::CrashServer(idx) => {
                    if cluster.live_servers().contains(&idx) {
                        cluster.crash_server(idx);
                        report.crashes += 1;
                    }
                }
                FaultEvent::RejoinServer(idx) => {
                    if cluster.live_servers().contains(&idx) {
                        continue;
                    }
                    match cluster.rejoin_server(idx) {
                        Ok(()) => report.rejoins += 1,
                        Err(_) => report.rejoin_failures += 1,
                    }
                }
                FaultEvent::ChurnBurst { clients, ops_each } => {
                    // Each incarnation reads the hottest key (Zipf rank 1)
                    // on the reserved top reader slot, then departs
                    // floor-safely.
                    let key = RegisterId::new(0);
                    for _ in 0..clients {
                        let Ok(ep) = cluster.factory().open(ReaderId::new(churn_slot).into())
                        else {
                            failed.fetch_add(1, Ordering::Relaxed);
                            continue;
                        };
                        let mut client = LiveReader::new(
                            ep,
                            ReaderId::new(churn_slot),
                            group_config,
                            read_mode,
                        )
                        .with_scope(key, router.group_of(key))
                        .with_view(Arc::clone(&view))
                        .with_retry(retry);
                        if let Some(t) = timeout {
                            client = client.with_timeout(t);
                        }
                        report.churn_joined += 1;
                        for _ in 0..ops_each {
                            let t0 = Instant::now();
                            match client.read() {
                                Ok(_) => {
                                    reads.record(SimTime::from_ticks(
                                        t0.elapsed().as_micros() as u64,
                                    ));
                                    report.churn_reads += 1;
                                    completed.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    failed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        match client.depart() {
                            Ok(()) => report.churn_departed += 1,
                            Err(_) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
                FaultEvent::Delay(d) => thread::sleep(d),
                FaultEvent::Reconfigure { add, remove } => {
                    let members = cluster.members();
                    let removes: Vec<u32> =
                        members.iter().copied().take(remove as usize).collect();
                    let target = members.len() + add as usize - removes.len();
                    if (add == 0 && removes.is_empty())
                        || cluster.config().reconfigured(target).is_err()
                    {
                        report.reconfig_failures += 1;
                        continue;
                    }
                    match cluster.reconfigure(add as usize, &removes) {
                        Ok(_) => report.reconfigs += 1,
                        Err(_) => report.reconfig_failures += 1,
                    }
                }
            }
        }

        for t in write_threads {
            writes.merge(&t.join().expect("keyspace writer thread panicked"));
        }
        for t in read_threads {
            reads.merge(&t.join().expect("keyspace reader thread panicked"));
        }
    });

    report.throughput = ThroughputReport { reads, writes, elapsed: start.elapsed() };
    report.failed_ops = failed.load(Ordering::Relaxed);
    report.live_servers = cluster.live_servers();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_core::Protocol;
    use mwr_runtime::InMemoryTransport;
    use mwr_types::KeyspaceConfig;

    #[test]
    fn keyspace_drive_reports_throughput_across_keys() {
        let config = KeyspaceConfig::new(5, 1, 3, 8, 2, 2).unwrap();
        let cluster =
            KeyspaceCluster::start_on(InMemoryTransport::new(), config, Protocol::W2Ra).unwrap();
        let report =
            run_keyspace_open_loop(&cluster, 16, 1.1, None, Duration::from_millis(30), 42)
                .unwrap();
        assert!(report.reads.count() > 0 && report.writes.count() > 0);
        assert!(report.ops_per_sec() > 0.0);
        cluster.shutdown();
    }

    #[test]
    fn keyspace_chaos_reconfigures_mid_drive_with_keys_serving() {
        let config = KeyspaceConfig::new(5, 1, 3, 8, 2, 1).unwrap();
        let mut cluster =
            KeyspaceCluster::start_on(InMemoryTransport::new(), config, Protocol::W2Ra).unwrap();
        let plan = FaultPlan::reconfigure(2, 2, 30);
        let report = run_keyspace_chaos(
            &mut cluster,
            8,
            1.1,
            Some(Duration::from_secs(2)),
            RetryPolicy { attempts: 4, backoff: Duration::from_millis(2) },
            plan,
            Duration::from_millis(400),
            42,
            None,
        )
        .unwrap();
        assert_eq!(report.reconfigs, 1, "{report:?}");
        assert!(report.healed(), "{report:?}");
        assert_eq!(cluster.members(), vec![2, 3, 4, 5, 6]);
        assert!(report.throughput.ops() > 0);
        cluster.shutdown();
    }

    #[test]
    fn keyspace_chaos_churn_burst_departs_every_incarnation() {
        let config = KeyspaceConfig::new(3, 1, 3, 4, 2, 1).unwrap();
        let mut cluster =
            KeyspaceCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R2).unwrap();
        let plan = FaultPlan::churn_storm(10, 2, 5);
        let report = run_keyspace_chaos(
            &mut cluster,
            4,
            0.0,
            Some(Duration::from_secs(2)),
            RetryPolicy::default(),
            plan,
            Duration::from_millis(300),
            7,
            None,
        )
        .unwrap();
        assert_eq!(report.churn_joined, 10, "{report:?}");
        assert_eq!(report.churn_departed, 10, "{report:?}");
        assert_eq!(report.churn_reads, 20, "{report:?}");
        assert!(report.healed(), "{report:?}");
        cluster.shutdown();
    }

    #[test]
    fn single_key_drive_degenerates_to_one_register() {
        let config = KeyspaceConfig::new(3, 1, 3, 4, 1, 1).unwrap();
        let cluster =
            KeyspaceCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R2).unwrap();
        let report =
            run_keyspace_open_loop(&cluster, 1, 0.0, None, Duration::from_millis(20), 7).unwrap();
        assert!(report.ops() > 0);
        cluster.shutdown();
    }
}
