//! Closed-loop workload driver over the simulator.
//!
//! Every client (readers read, writers write — the paper's model gives each
//! client one operation type) runs closed-loop: it issues its next
//! operation a fixed *think time* after the previous one completes. The
//! driver steps the simulation, reacts to completion notifications, and
//! stops issuing at the deadline, letting in-flight operations drain.

use mwr_core::{ClientEvent, Msg, OpKind, SimCluster};
use mwr_sim::{SimError, SimTime};
use mwr_types::{ClientId, Value};

use crate::stats::{LatencyStats, LatencySummary};

/// Parameters of a closed-loop run.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Virtual time during which new operations are issued.
    pub duration: SimTime,
    /// Gap between a completion and the client's next invocation.
    pub think_time: SimTime,
    /// RNG seed for the simulation (delays).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    /// A light default: ~hundreds of operations, fast enough for doc tests
    /// and CI. Experiments configure their own horizons.
    fn default() -> Self {
        WorkloadSpec {
            duration: SimTime::from_ticks(8_000),
            think_time: SimTime::from_ticks(20),
            seed: 1,
        }
    }
}

/// The outcome of a closed-loop run.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// All client events, for history checking. Populated by the simulator
    /// drivers; empty for live-runtime runs (see
    /// [`run_closed_loop_live`](crate::run_closed_loop_live)), which
    /// measure wall-clock latency without a checkable virtual-time
    /// history.
    pub events: Vec<(SimTime, ClientEvent)>,
    /// Read operation latencies.
    pub reads: LatencyStats,
    /// Write operation latencies.
    pub writes: LatencyStats,
    /// Virtual time at which the run went quiescent.
    pub end_time: SimTime,
}

impl WorkloadReport {
    /// Completed operations per 1000 virtual ticks.
    pub fn throughput_per_kilotick(&self) -> f64 {
        let ops = (self.reads.count() + self.writes.count()) as f64;
        let span = self.end_time.ticks().max(1) as f64;
        ops * 1000.0 / span
    }

    /// Summaries for both operation types.
    pub fn summaries(&mut self) -> (LatencySummary, LatencySummary) {
        (self.writes.summary(), self.reads.summary())
    }
}

/// Runs a closed-loop workload against any simulated cluster family
/// (core, tunable-quorum, Byzantine — anything implementing
/// [`SimCluster`]).
///
/// # Errors
///
/// Propagates simulator errors (livelock guard, unknown processes).
///
/// # Examples
///
/// ```
/// use mwr_core::{Cluster, Protocol};
/// use mwr_sim::SimTime;
/// use mwr_types::ClusterConfig;
/// use mwr_workload::{run_closed_loop, WorkloadSpec};
///
/// let config = ClusterConfig::new(5, 1, 2, 2)?;
/// let cluster = Cluster::new(config, Protocol::W2R1);
/// let spec = WorkloadSpec {
///     duration: SimTime::from_ticks(1_000),
///     think_time: SimTime::from_ticks(5),
///     seed: 7,
/// };
/// let mut report = run_closed_loop(&cluster, spec)?;
/// assert!(report.reads.count() > 0);
/// assert!(report.writes.count() > 0);
/// let (writes, reads) = report.summaries();
/// assert!(reads.p50 <= writes.p50, "W2R1: fast reads beat slow writes");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_closed_loop<C: SimCluster>(
    cluster: &C,
    spec: WorkloadSpec,
) -> Result<WorkloadReport, SimError> {
    run_closed_loop_customized(cluster, spec, |_| {})
}

/// Like [`run_closed_loop`], with a hook to customize the simulation (delay
/// models, geo matrices, crash schedules) before the run starts.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_closed_loop_customized<C: SimCluster>(
    cluster: &C,
    spec: WorkloadSpec,
    customize: impl FnOnce(&mut mwr_sim::Simulation<Msg, ClientEvent>),
) -> Result<WorkloadReport, SimError> {
    let mut sim = cluster.build_sim(spec.seed);
    customize(&mut sim);
    drive_closed_loop(&mut sim, cluster.client_config(), spec)
}

/// Drives an already-assembled simulation closed-loop.
///
/// The simulation must contain one client automaton per reader and writer
/// of `config`, each accepting [`Msg::InvokeRead`] / [`Msg::InvokeWrite`]
/// and emitting [`ClientEvent`]s — true of `mwr-core`'s protocol clients
/// and of any protocol variant built on the same message vocabulary (e.g.
/// `mwr-almost`'s tunable-quorum clients).
///
/// # Errors
///
/// Propagates simulator errors (livelock guard, unknown processes).
pub fn drive_closed_loop(
    sim: &mut mwr_sim::Simulation<Msg, ClientEvent>,
    config: mwr_types::ClusterConfig,
    spec: WorkloadSpec,
) -> Result<WorkloadReport, SimError> {
    // Kick off every client at t = 0 (staggered by a tick to avoid a
    // thundering herd of identical timestamps).
    let mut next_value: u64 = 0;
    for (i, w) in config.writer_ids().enumerate() {
        next_value += 1;
        sim.schedule_external(
            SimTime::from_ticks(i as u64),
            w.into(),
            Msg::InvokeWrite(Value::new(next_value)),
        )?;
    }
    for (i, r) in config.reader_ids().enumerate() {
        sim.schedule_external(SimTime::from_ticks(i as u64), r.into(), Msg::InvokeRead)?;
    }

    let mut events: Vec<(SimTime, ClientEvent)> = Vec::new();
    let mut invoked_at: std::collections::BTreeMap<mwr_core::OpId, SimTime> =
        std::collections::BTreeMap::new();
    let mut reads = LatencyStats::new();
    let mut writes = LatencyStats::new();

    loop {
        let stepped = sim.step();
        for (at, event) in sim.drain_notifications() {
            match event {
                ClientEvent::Invoked { op, .. } => {
                    invoked_at.insert(op, at);
                }
                // Round-trip accounting only; latency is measured
                // invocation-to-completion.
                ClientEvent::SecondRound { .. } => {}
                ClientEvent::Completed { op, kind, .. } => {
                    if let Some(start) = invoked_at.get(&op) {
                        let latency = at.saturating_sub(*start);
                        match kind {
                            OpKind::Read => reads.record(latency),
                            OpKind::Write(_) => writes.record(latency),
                        }
                    }
                    // Closed loop: issue the next operation after the
                    // think time, while the issuing window is open.
                    let next_at = at + spec.think_time;
                    if next_at <= spec.duration {
                        let msg = match op.client {
                            ClientId::Reader(_) => Msg::InvokeRead,
                            ClientId::Writer(_) => {
                                next_value += 1;
                                Msg::InvokeWrite(Value::new(next_value))
                            }
                        };
                        sim.schedule_external(next_at, op.client.into(), msg)?;
                    }
                }
            }
            events.push((at, event));
        }
        if stepped.is_none() {
            break;
        }
    }

    Ok(WorkloadReport { events, reads, writes, end_time: sim.now() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_core::{Cluster, Protocol};
    use mwr_types::ClusterConfig;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            duration: SimTime::from_ticks(2_000),
            think_time: SimTime::from_ticks(7),
            seed: 3,
        }
    }

    #[test]
    fn closed_loop_produces_matched_events() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster = Cluster::new(config, Protocol::W2R2);
        let report = run_closed_loop(&cluster, spec()).unwrap();
        let invoked = report
            .events
            .iter()
            .filter(|(_, e)| matches!(e, ClientEvent::Invoked { .. }))
            .count();
        let completed = report
            .events
            .iter()
            .filter(|(_, e)| matches!(e, ClientEvent::Completed { .. }))
            .count();
        assert_eq!(invoked, completed, "every issued op completes (wait-freedom)");
        assert!(completed > 20, "closed loop should issue many ops, got {completed}");
    }

    #[test]
    fn fast_reads_have_lower_latency_than_slow_reads() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let slow = run_closed_loop(&Cluster::new(config, Protocol::W2R2), spec()).unwrap();
        let fast = run_closed_loop(&Cluster::new(config, Protocol::W2R1), spec()).unwrap();
        // One round-trip vs two: the mean must drop by roughly half.
        assert!(
            fast.reads.mean() < slow.reads.mean(),
            "fast {} vs slow {}",
            fast.reads.mean(),
            slow.reads.mean()
        );
    }

    #[test]
    fn identical_specs_reproduce_reports() {
        let config = ClusterConfig::new(3, 1, 2, 2).unwrap();
        let cluster = Cluster::new(config, Protocol::W2R1);
        let a = run_closed_loop(&cluster, spec()).unwrap();
        let b = run_closed_loop(&cluster, spec()).unwrap();
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn throughput_is_positive() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let cluster = Cluster::new(config, Protocol::W2R2);
        let report = run_closed_loop(&cluster, spec()).unwrap();
        assert!(report.throughput_per_kilotick() > 0.0);
    }
}
