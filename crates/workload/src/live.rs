//! Closed-loop workload driver over the live runtime.
//!
//! The same [`WorkloadSpec`] that drives the simulator drives real
//! threads here, with the tick reinterpreted as **one microsecond** of
//! wall-clock time: a spec that issues operations for 8 000 virtual ticks
//! issues them for 8 ms of real time. That convention is what lets one
//! spec produce comparable closed-loop contended workloads on the
//! simulator, on in-memory channels, and on loopback TCP.

use std::thread;
use std::time::{Duration, Instant};

use mwr_core::FastWire;
use mwr_runtime::{AuditTap, EndpointFactory, RetryPolicy, RuntimeCluster, RuntimeError};
use mwr_sim::SimTime;
use mwr_types::Value;

use crate::driver::{WorkloadReport, WorkloadSpec};
use crate::stats::LatencyStats;

/// Runs a closed-loop workload against a running live cluster: one thread
/// per reader and writer, each issuing its next operation `think_time`
/// after the previous one completes, until `duration` elapses (ticks are
/// microseconds; the spec's `seed` is unused — wall-clock runs are not
/// reproducible). Latencies are recorded in microseconds, so percentile
/// summaries are directly comparable across backends.
///
/// The report's `events` are empty: the live runtime has no virtual-time
/// history to check; use the simulator drivers for checkable histories.
///
/// # Errors
///
/// Returns the first client's [`RuntimeError`] if an endpoint cannot be
/// opened or an operation fails (e.g. a quorum timeout).
///
/// # Examples
///
/// ```
/// use mwr_core::{FastWire, Protocol};
/// use mwr_runtime::{InMemoryTransport, RuntimeCluster};
/// use mwr_sim::SimTime;
/// use mwr_types::ClusterConfig;
/// use mwr_workload::{run_closed_loop_live, WorkloadSpec};
///
/// let config = ClusterConfig::new(3, 1, 1, 1)?;
/// let cluster = RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1)?;
/// let spec = WorkloadSpec {
///     duration: SimTime::from_ticks(5_000), // 5 ms of wall-clock issuing
///     think_time: SimTime::from_ticks(100), // 100 µs between operations
///     seed: 0,                              // unused on the live backend
/// };
/// let report = run_closed_loop_live(&cluster, FastWire::default(), None, spec)?;
/// assert!(report.reads.count() > 0 && report.writes.count() > 0);
/// cluster.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_closed_loop_live<F: EndpointFactory>(
    cluster: &RuntimeCluster<F>,
    wire: FastWire,
    timeout: Option<Duration>,
    spec: WorkloadSpec,
) -> Result<WorkloadReport, RuntimeError> {
    run_closed_loop_live_audited(cluster, wire, timeout, RetryPolicy::default(), spec, None)
}

/// [`run_closed_loop_live`] with an optional [`AuditTap`] and a
/// [`RetryPolicy`] applied to every client the driver mints: when a tap
/// is given, the clients emit sampled operation records into it, so the
/// whole drive runs under the streaming linearizability auditor consuming
/// the tap's receiver.
///
/// # Errors
///
/// Returns the first client's [`RuntimeError`] if an endpoint cannot be
/// opened or an operation fails (e.g. a quorum timeout).
pub fn run_closed_loop_live_audited<F: EndpointFactory>(
    cluster: &RuntimeCluster<F>,
    wire: FastWire,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    spec: WorkloadSpec,
    tap: Option<&AuditTap>,
) -> Result<WorkloadReport, RuntimeError> {
    let duration = Duration::from_micros(spec.duration.ticks());
    let think = Duration::from_micros(spec.think_time.ticks());
    let (reads, writes, elapsed) = drive_live(cluster, wire, timeout, retry, duration, think, tap)?;
    Ok(WorkloadReport {
        events: Vec::new(),
        reads,
        writes,
        end_time: SimTime::from_ticks(elapsed.as_micros() as u64),
    })
}

/// A measured run of the open-loop (saturating) live driver: per-operation
/// latency under load plus the completed-operation counts the throughput
/// figures derive from.
#[derive(Debug)]
pub struct ThroughputReport {
    /// Completed-read latencies, in microseconds.
    pub reads: LatencyStats,
    /// Completed-write latencies, in microseconds.
    pub writes: LatencyStats,
    /// Wall-clock time the drive took.
    pub elapsed: Duration,
}

impl ThroughputReport {
    /// Total operations completed (reads plus writes).
    pub fn ops(&self) -> usize {
        self.reads.count() + self.writes.count()
    }

    /// Aggregate completed operations per second of wall-clock time.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ops() as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs an open-loop throughput drive against a running live cluster: one
/// thread per reader and writer, each issuing its next operation the moment
/// the previous one completes (zero think time), for `duration` of
/// wall-clock time.
///
/// "Open loop" here means the offered load is fixed externally — by the
/// cluster's client population, the experiment's sweep axis — rather than
/// throttled to a think-time schedule: sweeping `R`/`W` in the
/// [`ClusterConfig`](mwr_types::ClusterConfig) sweeps the load, and the
/// report's latencies are latency-*under-load*, the second half of the
/// latency/throughput story the closed-loop driver cannot tell.
///
/// # Errors
///
/// Returns the first client's [`RuntimeError`] if an endpoint cannot be
/// opened or an operation fails (e.g. a quorum timeout).
pub fn run_open_loop_live<F: EndpointFactory>(
    cluster: &RuntimeCluster<F>,
    wire: FastWire,
    timeout: Option<Duration>,
    duration: Duration,
) -> Result<ThroughputReport, RuntimeError> {
    run_open_loop_live_audited(cluster, wire, timeout, RetryPolicy::default(), duration, None)
}

/// [`run_open_loop_live`] with an optional [`AuditTap`] and a
/// [`RetryPolicy`] applied to every client the driver mints: when a tap
/// is given, the clients emit sampled operation records into it, so
/// throughput sweeps and fault scenarios run continuously verified by
/// the streaming auditor on the tap's receiving end.
///
/// # Errors
///
/// Returns the first client's [`RuntimeError`] if an endpoint cannot be
/// opened or an operation fails (e.g. a quorum timeout).
pub fn run_open_loop_live_audited<F: EndpointFactory>(
    cluster: &RuntimeCluster<F>,
    wire: FastWire,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    duration: Duration,
    tap: Option<&AuditTap>,
) -> Result<ThroughputReport, RuntimeError> {
    let (reads, writes, elapsed) =
        drive_live(cluster, wire, timeout, retry, duration, Duration::ZERO, tap)?;
    Ok(ThroughputReport { reads, writes, elapsed })
}

/// The shared drive: spawns every configured client, issues operations with
/// `think` between completions until `duration` elapses, and merges
/// per-thread latency stats (in microseconds).
fn drive_live<F: EndpointFactory>(
    cluster: &RuntimeCluster<F>,
    wire: FastWire,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    duration: Duration,
    think: Duration,
    tap: Option<&AuditTap>,
) -> Result<(LatencyStats, LatencyStats, Duration), RuntimeError> {
    let config = cluster.config();

    // Open every client endpoint up front so setup failures surface before
    // any thread spawns.
    let mut writers = Vec::with_capacity(config.writers());
    for w in 0..config.writers() as u32 {
        let mut client = cluster.writer(w)?.with_retry(retry);
        if let Some(t) = timeout {
            client = client.with_timeout(t);
        }
        if let Some(tap) = tap {
            client = client.with_tap(tap.clone());
        }
        writers.push((w, client));
    }
    let mut readers = Vec::with_capacity(config.readers());
    for r in 0..config.readers() as u32 {
        let mut client = cluster.reader_with_wire(r, wire)?.with_retry(retry);
        if let Some(t) = timeout {
            client = client.with_timeout(t);
        }
        if let Some(tap) = tap {
            client = client.with_tap(tap.clone());
        }
        readers.push(client);
    }

    let start = Instant::now();
    let (mut reads, mut writes) = (LatencyStats::new(), LatencyStats::new());
    let mut first_error: Option<RuntimeError> = None;
    thread::scope(|scope| {
        let mut write_threads = Vec::new();
        for (w, mut client) in writers {
            write_threads.push(scope.spawn(move || {
                let mut lat = LatencyStats::new();
                // Unique values per writer keep reads-from observable.
                let mut value = u64::from(w) * 1_000_000_000 + 1;
                while start.elapsed() < duration {
                    let t0 = Instant::now();
                    client.write(Value::new(value))?;
                    lat.record(SimTime::from_ticks(t0.elapsed().as_micros() as u64));
                    value += 1;
                    if !think.is_zero() {
                        thread::sleep(think);
                    }
                }
                Ok::<LatencyStats, RuntimeError>(lat)
            }));
        }
        let mut read_threads = Vec::new();
        for mut client in readers {
            read_threads.push(scope.spawn(move || {
                let mut lat = LatencyStats::new();
                while start.elapsed() < duration {
                    let t0 = Instant::now();
                    client.read()?;
                    lat.record(SimTime::from_ticks(t0.elapsed().as_micros() as u64));
                    if !think.is_zero() {
                        thread::sleep(think);
                    }
                }
                Ok::<LatencyStats, RuntimeError>(lat)
            }));
        }
        for t in write_threads {
            match t.join().expect("writer thread panicked") {
                Ok(lat) => writes.merge(&lat),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        for t in read_threads {
            match t.join().expect("reader thread panicked") {
                Ok(lat) => reads.merge(&lat),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
    });
    if let Some(e) = first_error {
        return Err(e);
    }
    Ok((reads, writes, start.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_core::Protocol;
    use mwr_runtime::InMemoryTransport;
    use mwr_types::ClusterConfig;

    #[test]
    fn open_loop_drive_saturates_and_reports_throughput() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let report = run_open_loop_live(
            &cluster,
            FastWire::default(),
            None,
            Duration::from_millis(30),
        )
        .unwrap();
        assert!(report.reads.count() > 0 && report.writes.count() > 0);
        assert!(report.ops_per_sec() > 0.0);
        assert!(report.elapsed >= Duration::from_millis(30));
        cluster.shutdown();
    }

    #[test]
    fn audited_open_loop_records_every_sampled_operation() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let (tap, rx) = AuditTap::bounded(1.0, mwr_runtime::DEFAULT_TAP_CAPACITY);
        // Drain concurrently like a real sidecar, so the drive never sees
        // tap backpressure no matter how fast the in-memory cluster runs.
        let drain = thread::spawn(move || {
            let mut count = 0usize;
            while rx.recv().is_ok() {
                count += 1;
            }
            count
        });
        let report = run_open_loop_live_audited(
            &cluster,
            FastWire::default(),
            None,
            RetryPolicy::default(),
            Duration::from_millis(30),
            Some(&tap),
        )
        .unwrap();
        drop(tap);
        let records = drain.join().unwrap();
        // Sample rate 1.0: every completed operation contributed an
        // Invoked and a Completed record (floor advances come on top).
        assert!(
            records >= 2 * report.ops(),
            "expected >= {} records, got {records}",
            2 * report.ops()
        );
        cluster.shutdown();
    }

    #[test]
    fn live_closed_loop_measures_both_op_types() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let spec = WorkloadSpec {
            duration: SimTime::from_ticks(20_000),
            think_time: SimTime::from_ticks(200),
            seed: 0,
        };
        let report = run_closed_loop_live(&cluster, FastWire::default(), None, spec).unwrap();
        assert!(report.reads.count() > 0, "readers completed operations");
        assert!(report.writes.count() > 0, "writers completed operations");
        assert!(report.events.is_empty(), "live runs carry no virtual-time events");
        assert!(report.throughput_per_kilotick() > 0.0);
        cluster.shutdown();
    }
}
