//! Minimal aligned text tables for experiment output.

use std::fmt;

/// A text table with a header row and aligned columns.
///
/// # Examples
///
/// ```
/// use mwr_workload::TextTable;
///
/// let mut t = TextTable::new(vec!["protocol", "verdict"]);
/// t.row(vec!["W2R2".into(), "atomic".into()]);
/// t.row(vec!["W1R2-MW".into(), "violation".into()]);
/// let text = t.to_string();
/// assert!(text.contains("W2R2"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxxxx".into(), "y".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // The second column starts at the same offset in header and row.
        let header_off = lines[0].find("long-header").unwrap();
        let row_off = lines[2].find('y').unwrap();
        assert_eq!(header_off, row_off, "{text}");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one".into()]);
    }
}
