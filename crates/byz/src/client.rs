//! The Byzantine-hardened register client.
//!
//! Structure mirrors `mwr-core`'s client; the hardening is threefold:
//!
//! 1. **Inflation-immune write tags** — the writer's first round takes the
//!    `(b + 1)`-st largest reported tag ([`safe_max_tag`]) instead of the
//!    maximum, so forged timestamps cannot drag the clock while every
//!    *completed* write (vouched by `b + 1` quorum-intersection servers) is
//!    still dominated.
//! 2. **Vouched reads** — a read believes a value only when `b + 1` servers
//!    report it identically ([`vouched_values`]); forgeries never qualify.
//! 3. **Quarantined gossip** — the reader's `valQueue` (the Algorithm 1
//!    mechanism by which reads inform later reads) only ever carries
//!    vouched values, so a reader never launders a forgery into the
//!    correct servers' stores.
//!
//! Unlike `mwr-core` and `mwr-runtime`, this client deliberately stays on
//! the *full-info* fast-read wire: the delta protocol trusts each server's
//! version accounting (what the reader "already knows" is whatever that
//! server previously claimed to have sent), and a Byzantine server could
//! equivocate about its version window to starve the reader of vouchable
//! copies. Full snapshots keep the `b + 1`-identical-copies vouching sound.
//! For the same reason the acknowledged-floor GC piggyback stays inert here
//! (floors are reported as the initial tag and Byzantine-era servers never
//! prune).
//!
//! [`safe_max_tag`]: crate::safe_max_tag
//! [`vouched_values`]: crate::vouched_values

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mwr_core::{Admissibility, ClientEvent, Msg, OpHandle, OpId, OpKind, OpResult, Snapshot};
use mwr_sim::{Automaton, Context};
use mwr_types::{ClientId, ProcessId, ReaderId, ServerId, Tag, TaggedValue, Value, WriterId};

use crate::config::ByzConfig;
use crate::vouch::{safe_max_tag, vouched_snapshots, vouched_values};

/// How reads pick their return value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzReadMode {
    /// Two round-trips: vouched maximum, then write-back — the Byzantine
    /// W2R2. Atomic whenever `S ≥ 4b + 1` (the masking-quorum regime).
    Slow,
    /// One round-trip: vouched admissibility selection — the Byzantine
    /// W2R1. Feasibility frontier mapped empirically against
    /// [`ByzConfig::fast_read_conjecture`].
    Fast,
}

impl ByzReadMode {
    /// Round-trips per read.
    pub fn round_trips(self) -> usize {
        match self {
            ByzReadMode::Fast => 1,
            ByzReadMode::Slow => 2,
        }
    }
}

#[derive(Debug)]
enum Role {
    Writer { id: WriterId },
    Reader {
        id: ReaderId,
        mode: ByzReadMode,
        /// Vouched values this reader has observed; re-sent on every read.
        val_queue: BTreeSet<TaggedValue>,
    },
}

#[derive(Debug)]
enum Phase {
    /// Write round 1: collecting tags for the inflation-immune maximum.
    WriteQuery { value: Value, tags: Vec<Tag>, acks: BTreeSet<ServerId> },
    /// Write round 2 / read write-back: storing a tagged value.
    Update { value: TaggedValue, is_read_back: bool, acks: BTreeSet<ServerId> },
    /// Read round 1 (both modes): collecting snapshots.
    ReadCollect { replies: BTreeMap<ServerId, Snapshot> },
}

#[derive(Debug)]
struct InFlight {
    op: OpId,
    kind: OpKind,
    phase_no: u8,
    phase: Phase,
}

/// A Byzantine-hardened client (reader or writer) for the simulator.
///
/// # Examples
///
/// ```
/// use mwr_byz::{ByzClient, ByzConfig, ByzReadMode};
/// use mwr_types::{ReaderId, WriterId};
///
/// let config = ByzConfig::new(5, 1, 2, 2)?;
/// let _writer = ByzClient::writer(WriterId::new(0), config);
/// let _reader = ByzClient::reader(ReaderId::new(0), config, ByzReadMode::Slow);
/// # Ok::<(), mwr_byz::ByzConfigError>(())
/// ```
#[derive(Debug)]
pub struct ByzClient {
    config: ByzConfig,
    role: Role,
    pending: VecDeque<OpKind>,
    current: Option<InFlight>,
    next_seq: u64,
}

impl ByzClient {
    /// Creates a writer client. Writes are always two round-trips (the
    /// paper's Theorem 1 rules out fast multi-writer writes even without
    /// Byzantine servers).
    pub fn writer(id: WriterId, config: ByzConfig) -> Self {
        ByzClient {
            config,
            role: Role::Writer { id },
            pending: VecDeque::new(),
            current: None,
            next_seq: 0,
        }
    }

    /// Creates a reader client with the given read mode.
    pub fn reader(id: ReaderId, config: ByzConfig, mode: ByzReadMode) -> Self {
        let mut val_queue = BTreeSet::new();
        val_queue.insert(TaggedValue::initial());
        ByzClient {
            config,
            role: Role::Reader { id, mode, val_queue },
            pending: VecDeque::new(),
            current: None,
            next_seq: 0,
        }
    }

    fn client_id(&self) -> ClientId {
        match &self.role {
            Role::Writer { id } => ClientId::Writer(*id),
            Role::Reader { id, .. } => ClientId::Reader(*id),
        }
    }

    /// Whether an operation is currently executing.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    fn start_next(&mut self, ctx: &mut Context<'_, Msg, ClientEvent>) {
        debug_assert!(self.current.is_none());
        let Some(kind) = self.pending.pop_front() else {
            return;
        };
        let op = OpId { client: self.client_id(), seq: self.next_seq };
        self.next_seq += 1;
        ctx.notify(ClientEvent::Invoked { op, kind });

        let servers = self.config.servers();
        let phase = match (&mut self.role, kind) {
            (Role::Writer { .. }, OpKind::Write(v)) => {
                let handle = OpHandle { op, phase: 1 };
                ctx.broadcast_to_servers(servers, Msg::Query { handle });
                Phase::WriteQuery { value: v, tags: Vec::new(), acks: BTreeSet::new() }
            }
            (Role::Reader { val_queue, .. }, OpKind::Read) => {
                let handle = OpHandle { op, phase: 1 };
                let val_queue: Vec<TaggedValue> = val_queue.iter().copied().collect();
                ctx.broadcast_to_servers(servers, Msg::ReadFast { handle, val_queue });
                Phase::ReadCollect { replies: BTreeMap::new() }
            }
            (Role::Writer { .. }, OpKind::Read) => {
                panic!("writers cannot invoke read() (paper §2.1)")
            }
            (Role::Reader { .. }, OpKind::Write(_)) => {
                panic!("readers cannot invoke write() (paper §2.1)")
            }
        };
        self.current = Some(InFlight { op, kind, phase_no: 1, phase });
    }

    fn complete(&mut self, result: OpResult, ctx: &mut Context<'_, Msg, ClientEvent>) {
        let inflight = self.current.take().expect("completing without an op");
        ctx.notify(ClientEvent::Completed { op: inflight.op, kind: inflight.kind, result });
        self.start_next(ctx);
    }

    fn on_ack(&mut self, server: ServerId, msg: &Msg) -> Option<AckAction> {
        let config = self.config;
        let quorum = config.quorum_size();
        let inflight = self.current.as_mut()?;
        let expected = OpHandle { op: inflight.op, phase: inflight.phase_no };

        match (msg, &mut inflight.phase) {
            (Msg::QueryAck { handle, latest }, Phase::WriteQuery { value, tags, acks })
                if *handle == expected =>
            {
                if acks.insert(server) {
                    tags.push(latest.tag());
                }
                if acks.len() >= quorum {
                    let Role::Writer { id } = &self.role else { unreachable!() };
                    let safe = safe_max_tag(tags, config.byz());
                    let tagged = TaggedValue::new(safe.next(*id), *value);
                    let handle = OpHandle { op: inflight.op, phase: 2 };
                    inflight.phase_no = 2;
                    inflight.phase =
                        Phase::Update { value: tagged, is_read_back: false, acks: BTreeSet::new() };
                    return Some(AckAction::Broadcast(Msg::Update {
                        handle,
                        value: tagged,
                        floor: TaggedValue::initial(),
                    }));
                }
                None
            }
            (Msg::UpdateAck { handle }, Phase::Update { value, is_read_back, acks })
                if *handle == expected =>
            {
                acks.insert(server);
                if acks.len() >= quorum {
                    let result = if *is_read_back {
                        OpResult::Read(*value)
                    } else {
                        OpResult::Written(*value)
                    };
                    return Some(AckAction::Complete(result));
                }
                None
            }
            (Msg::ReadFastAck { handle, snapshot }, Phase::ReadCollect { replies })
                if *handle == expected =>
            {
                replies.insert(server, snapshot.clone());
                if replies.len() >= quorum {
                    let snaps: Vec<Snapshot> = replies.values().cloned().collect();
                    let threshold = config.vouch_threshold();
                    let vouched = vouched_values(&snaps, threshold);
                    let Role::Reader { mode, val_queue, .. } = &mut self.role else {
                        unreachable!()
                    };
                    // Quarantined gossip: only vouched values enter the
                    // queue this reader re-broadcasts.
                    val_queue.extend(vouched.iter().copied());
                    match mode {
                        ByzReadMode::Fast => {
                            // Deliberately the naive `Admissibility`
                            // evaluator (via the `SnapshotSource` seam, like
                            // every reply shape): the vouch filter
                            // synthesizes these snapshots fresh each read,
                            // so there is no standing per-server cache for
                            // the incremental `WitnessIndex` to ride on, and
                            // the reference implementation keeps the
                            // Byzantine path trivially aligned with the
                            // specification the proptests pin.
                            let filtered = vouched_snapshots(&snaps, threshold);
                            let chosen = Admissibility::new(
                                &filtered,
                                config.quorum_size(),
                                2 * config.byz(),
                                config.readers() + 1,
                            )
                            .select_return_value();
                            Some(AckAction::Complete(OpResult::Read(chosen)))
                        }
                        ByzReadMode::Slow => {
                            let chosen = *vouched
                                .last()
                                .expect("the initial value is always vouched");
                            let handle = OpHandle { op: inflight.op, phase: 2 };
                            inflight.phase_no = 2;
                            inflight.phase = Phase::Update {
                                value: chosen,
                                is_read_back: true,
                                acks: BTreeSet::new(),
                            };
                            Some(AckAction::Broadcast(Msg::Update {
                                handle,
                                value: chosen,
                                floor: TaggedValue::initial(),
                            }))
                        }
                    }
                } else {
                    None
                }
            }
            _ => None, // stale ack from an earlier phase or operation
        }
    }
}

/// What a quorum of acks triggers.
#[derive(Debug)]
enum AckAction {
    Broadcast(Msg),
    Complete(OpResult),
}

impl Automaton<Msg, ClientEvent> for ByzClient {
    fn on_external(&mut self, input: Msg, ctx: &mut Context<'_, Msg, ClientEvent>) {
        match input {
            Msg::InvokeRead => self.pending.push_back(OpKind::Read),
            Msg::InvokeWrite(v) => self.pending.push_back(OpKind::Write(v)),
            other => panic!("unexpected external input {other:?}"),
        }
        if self.current.is_none() {
            self.start_next(ctx);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, ClientEvent>) {
        let Some(server) = from.as_server() else {
            return;
        };
        match self.on_ack(server, &msg) {
            None => {}
            Some(AckAction::Broadcast(next_round)) => {
                let op = self.current.as_ref().expect("broadcasting mid-operation").op;
                ctx.notify(ClientEvent::SecondRound { op });
                ctx.broadcast_to_servers(self.config.servers(), next_round);
            }
            Some(AckAction::Complete(result)) => self.complete(result, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::ByzBehavior;
    use crate::server::ByzRegisterServer;
    use mwr_sim::{SimTime, Simulation};

    fn build_sim(
        config: ByzConfig,
        mode: ByzReadMode,
        behavior: ByzBehavior,
        seed: u64,
    ) -> Simulation<Msg, ClientEvent> {
        let mut sim = Simulation::new(seed);
        for s in 0..config.servers() {
            let b = if s < config.byz() { behavior } else { ByzBehavior::Honest };
            sim.add_process(ProcessId::server(s as u32), ByzRegisterServer::new(b));
        }
        for w in 0..config.writers() {
            sim.add_process(
                ProcessId::writer(w as u32),
                ByzClient::writer(WriterId::new(w as u32), config),
            );
        }
        for r in 0..config.readers() {
            sim.add_process(
                ProcessId::reader(r as u32),
                ByzClient::reader(ReaderId::new(r as u32), config, mode),
            );
        }
        sim
    }

    fn completions(events: &[(SimTime, ClientEvent)]) -> Vec<OpResult> {
        events
            .iter()
            .filter_map(|(_, e)| match e {
                ClientEvent::Completed { result, .. } => Some(*result),
                _ => None,
            })
            .collect()
    }

    fn write_then_read(
        config: ByzConfig,
        mode: ByzReadMode,
        behavior: ByzBehavior,
        seed: u64,
    ) -> (TaggedValue, TaggedValue) {
        let mut sim = build_sim(config, mode, behavior, seed);
        sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeWrite(Value::new(42)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(200), ProcessId::reader(0), Msg::InvokeRead)
            .unwrap();
        sim.run_until_quiescent().unwrap();
        let done = completions(&sim.drain_notifications());
        assert_eq!(done.len(), 2, "{behavior}: both operations complete");
        let OpResult::Written(wv) = done[0] else { panic!("write first") };
        let OpResult::Read(rv) = done[1] else { panic!("read second") };
        (wv, rv)
    }

    #[test]
    fn sequential_read_after_write_survives_every_behavior() {
        let config = ByzConfig::new(5, 1, 2, 2).unwrap();
        for behavior in ByzBehavior::ADVERSARIAL {
            for mode in [ByzReadMode::Slow, ByzReadMode::Fast] {
                let (wv, rv) = write_then_read(config, mode, behavior, 7);
                assert_eq!(rv, wv, "{behavior}/{mode:?}: read returns the genuine write");
                assert_eq!(rv.value(), Value::new(42));
            }
        }
    }

    #[test]
    fn forged_tags_do_not_inflate_write_timestamps() {
        let config = ByzConfig::new(5, 1, 2, 2).unwrap();
        let (wv, _) = write_then_read(
            config,
            ByzReadMode::Slow,
            ByzBehavior::TagInflater { boost: 1_000_000 },
            3,
        );
        assert_eq!(wv.tag().ts(), 1, "the first write is (1, w0), not boosted");
    }

    #[test]
    fn forged_values_are_never_returned() {
        let config = ByzConfig::new(5, 1, 2, 2).unwrap();
        for mode in [ByzReadMode::Slow, ByzReadMode::Fast] {
            let mut sim = build_sim(config, mode, ByzBehavior::TagInflater { boost: 50 }, 11);
            // Read a register nobody ever wrote: the only non-initial
            // reports are forged.
            sim.schedule_external(SimTime::ZERO, ProcessId::reader(0), Msg::InvokeRead).unwrap();
            sim.run_until_quiescent().unwrap();
            let done = completions(&sim.drain_notifications());
            let OpResult::Read(rv) = done[0] else { panic!() };
            assert!(rv.tag().is_initial(), "{mode:?}: the forgery must be rejected");
        }
    }

    #[test]
    fn operations_complete_with_b_mute_servers() {
        let config = ByzConfig::new(9, 2, 2, 2).unwrap();
        for mode in [ByzReadMode::Slow, ByzReadMode::Fast] {
            let (wv, rv) = write_then_read(config, mode, ByzBehavior::Mute, 13);
            assert_eq!(rv, wv, "{mode:?}: wait-free despite 2 silent servers");
        }
    }

    #[test]
    fn equivocator_cannot_split_sequential_readers() {
        // Reader 0 (even: sees truth) and reader 1 (odd: sees stale) read
        // sequentially after a write; both must return the genuine value.
        let config = ByzConfig::new(5, 1, 2, 2).unwrap();
        for mode in [ByzReadMode::Slow, ByzReadMode::Fast] {
            let mut sim = build_sim(config, mode, ByzBehavior::Equivocator, 17);
            sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeWrite(Value::new(5)))
                .unwrap();
            sim.schedule_external(SimTime::from_ticks(200), ProcessId::reader(0), Msg::InvokeRead)
                .unwrap();
            sim.schedule_external(SimTime::from_ticks(400), ProcessId::reader(1), Msg::InvokeRead)
                .unwrap();
            sim.run_until_quiescent().unwrap();
            let done = completions(&sim.drain_notifications());
            let OpResult::Read(r0) = done[1] else { panic!() };
            let OpResult::Read(r1) = done[2] else { panic!() };
            assert_eq!(r0.value(), Value::new(5), "{mode:?}");
            assert_eq!(r1.value(), Value::new(5), "{mode:?}: the odd reader is not fooled");
        }
    }

    #[test]
    fn sequential_writes_get_increasing_tags_despite_inflation() {
        let config = ByzConfig::new(5, 1, 2, 2).unwrap();
        let mut sim = build_sim(
            config,
            ByzReadMode::Slow,
            ByzBehavior::TagInflater { boost: 777 },
            19,
        );
        for (i, v) in [10u64, 20, 30].iter().enumerate() {
            sim.schedule_external(
                SimTime::from_ticks(i as u64 * 200),
                ProcessId::writer((i % 2) as u32),
                Msg::InvokeWrite(Value::new(*v)),
            )
            .unwrap();
        }
        sim.run_until_quiescent().unwrap();
        let done = completions(&sim.drain_notifications());
        let tags: Vec<Tag> = done
            .iter()
            .map(|r| match r {
                OpResult::Written(tv) => tv.tag(),
                _ => panic!(),
            })
            .collect();
        assert!(tags[0] < tags[1] && tags[1] < tags[2], "tags grow: {tags:?}");
        assert!(tags[2].ts() <= 3, "no forged acceleration: {tags:?}");
    }

    #[test]
    #[should_panic(expected = "writers cannot invoke read()")]
    fn writer_rejects_read_invocation() {
        let config = ByzConfig::new(5, 1, 1, 1).unwrap();
        let mut sim = build_sim(config, ByzReadMode::Slow, ByzBehavior::Honest, 1);
        sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeRead).unwrap();
        let _ = sim.run_until_quiescent();
    }
}
