//! Byzantine extension of the multi-writer register protocols.
//!
//! The paper closes §5 with: *"for our W2R1 implementation, we can further
//! study whether it can be extended to further tolerate Byzantine failures.
//! The extension is principally the same with that in the single-writer
//! case"* (Dutta et al. \[12\]). This crate builds that extension and the
//! adversary to test it against:
//!
//! - [`ByzBehavior`] — reply-corrupting server adversaries: hiding writes
//!   ([`ByzBehavior::StaleReplier`]), forging arbitrarily large tags
//!   ([`ByzBehavior::TagInflater`]), answering different clients
//!   differently ([`ByzBehavior::Equivocator`]), or going silent
//!   ([`ByzBehavior::Mute`]). Impossibility results in the crash model
//!   carry over to this strictly stronger model for free (§5.2 of the
//!   paper); the interesting direction is making the *implementations*
//!   survive.
//! - [`ByzConfig`] — masking-quorum arithmetic: quorums of size `S − b`
//!   (the maximal wait-free quorum, mirroring the paper's `S − t`)
//!   intersect in `S − 2b ≥ 2b + 1` servers, so every two quorums share
//!   `b + 1` *correct* servers; requires `S ≥ 4b + 1` (Malkhi–Reiter
//!   masking quorums, here with unauthenticated data).
//! - [`ByzClient`] — register clients hardened by **vouching**: a reported
//!   value counts only when `b + 1` servers report it identically, and
//!   writers take the `(b+1)`-st largest reported tag (immune to
//!   inflation). Two read modes: [`ByzReadMode::Slow`] (vouched maximum +
//!   write-back — the Byzantine W2R2) and [`ByzReadMode::Fast`] (vouched
//!   admissibility, one round-trip — the Byzantine W2R1).
//!
//! For the fast read the exact feasibility frontier is precisely the open
//! question the paper leaves; [`ByzConfig::fast_read_conjecture`] states
//! the natural generalization `2b·(R + 2) < q` of the paper's
//! `t·(R + 2) < S`, and the `byz_resilience` experiment in `mwr-bench`
//! maps the empirical boundary against it.
//!
//! # Examples
//!
//! The Byzantine W2R2 surviving a tag-forging server that breaks the
//! crash-tolerant protocol:
//!
//! ```
//! use mwr_byz::{ByzBehavior, ByzCluster, ByzConfig, ByzReadMode};
//! use mwr_core::{ScheduledOp, SimCluster};
//! use mwr_sim::SimTime;
//! use mwr_types::Value;
//!
//! let config = ByzConfig::new(5, 1, 2, 2)?;
//! assert!(config.masking_feasible());
//! let cluster = ByzCluster::new(config, ByzReadMode::Slow, ByzBehavior::TagInflater { boost: 1_000 });
//! let events = cluster.run_schedule(
//!     1,
//!     &[
//!         (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(7) }),
//!         (SimTime::from_ticks(100), ScheduledOp::Read { reader: 0 }),
//!     ],
//! )?;
//! // The read returns the genuine write, not the forged tag.
//! assert_eq!(events.len(), 6); // both ops take two round-trips
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod behavior;
mod client;
mod cluster;
mod config;
mod server;
mod vouch;

pub use behavior::ByzBehavior;
pub use client::{ByzClient, ByzReadMode};
pub use cluster::ByzCluster;
pub use config::{ByzConfig, ByzConfigError};
pub use server::ByzRegisterServer;
pub use vouch::{safe_max_tag, vouched_snapshots, vouched_values};
