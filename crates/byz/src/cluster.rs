//! One-call assembly of a Byzantine register cluster, plugging into
//! [`mwr_core::SimCluster`].

use mwr_core::{ClientEvent, Msg, SimCluster};
use mwr_sim::Simulation;
use mwr_types::{ClusterConfig, ProcessId, ReaderId, WriterId};

use crate::behavior::ByzBehavior;
use crate::client::{ByzClient, ByzReadMode};
use crate::config::ByzConfig;
use crate::server::ByzRegisterServer;

/// A Byzantine cluster blueprint: configuration, read mode, and the
/// behavior assigned to the `b` Byzantine servers (servers `0 .. b`; the
/// rest are honest).
///
/// Placing the adversaries at fixed indices loses no generality in the
/// simulator: delivery order is seed-driven and clients treat servers
/// symmetrically.
///
/// # Examples
///
/// ```
/// use mwr_byz::{ByzBehavior, ByzCluster, ByzConfig, ByzReadMode};
/// use mwr_core::{ScheduledOp, SimCluster};
/// use mwr_sim::SimTime;
/// use mwr_types::Value;
///
/// let config = ByzConfig::new(9, 2, 2, 2)?;
/// let cluster = ByzCluster::new(config, ByzReadMode::Fast, ByzBehavior::StaleReplier);
/// let events = cluster.run_schedule(
///     3,
///     &[
///         (SimTime::ZERO, ScheduledOp::Write { writer: 1, value: Value::new(9) }),
///         (SimTime::from_ticks(150), ScheduledOp::Read { reader: 1 }),
///     ],
/// )?;
/// assert_eq!(events.len(), 5); // the write's second round is marked
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ByzCluster {
    config: ByzConfig,
    read_mode: ByzReadMode,
    behavior: ByzBehavior,
}

impl ByzCluster {
    /// Creates a blueprint.
    pub fn new(config: ByzConfig, read_mode: ByzReadMode, behavior: ByzBehavior) -> Self {
        ByzCluster { config, read_mode, behavior }
    }

    /// The cluster configuration.
    pub fn config(&self) -> ByzConfig {
        self.config
    }

    /// The read mode in use.
    pub fn read_mode(&self) -> ByzReadMode {
        self.read_mode
    }

    /// The Byzantine behavior in use.
    pub fn behavior(&self) -> ByzBehavior {
        self.behavior
    }
}

impl SimCluster for ByzCluster {
    /// Adds all servers (the first `b` Byzantine) and clients to a
    /// simulation.
    fn install(&self, sim: &mut Simulation<Msg, ClientEvent>) {
        for s in 0..self.config.servers() {
            let behavior = if s < self.config.byz() { self.behavior } else { ByzBehavior::Honest };
            sim.add_process(ProcessId::server(s as u32), ByzRegisterServer::new(behavior));
        }
        for w in 0..self.config.writers() {
            sim.add_process(
                ProcessId::writer(w as u32),
                ByzClient::writer(WriterId::new(w as u32), self.config),
            );
        }
        for r in 0..self.config.readers() {
            sim.add_process(
                ProcessId::reader(r as u32),
                ByzClient::reader(ReaderId::new(r as u32), self.config, self.read_mode),
            );
        }
    }

    /// The crash-view of the Byzantine configuration: `t = b`, so the
    /// scheduling harnesses address the same population the masking
    /// quorums are sized for.
    fn client_config(&self) -> ClusterConfig {
        ClusterConfig::new(
            self.config.servers(),
            self.config.byz(),
            self.config.readers(),
            self.config.writers(),
        )
        .expect("every valid ByzConfig has a valid crash view (S ≥ 4b + 1 > b)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_core::{OpResult, ScheduledOp};
    use mwr_sim::SimTime;
    use mwr_types::Value;

    #[test]
    fn identical_seeds_reproduce_event_streams() {
        let config = ByzConfig::new(5, 1, 2, 2).unwrap();
        let cluster = ByzCluster::new(config, ByzReadMode::Fast, ByzBehavior::Equivocator);
        let schedule = [
            (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(1) }),
            (SimTime::from_ticks(1), ScheduledOp::Write { writer: 1, value: Value::new(2) }),
            (SimTime::from_ticks(2), ScheduledOp::Read { reader: 0 }),
            (SimTime::from_ticks(3), ScheduledOp::Read { reader: 1 }),
        ];
        let a = cluster.run_schedule(5, &schedule).unwrap();
        let b = cluster.run_schedule(5, &schedule).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn client_config_is_the_crash_view() {
        let config = ByzConfig::new(9, 2, 3, 2).unwrap();
        let cluster = ByzCluster::new(config, ByzReadMode::Fast, ByzBehavior::Honest);
        let cc = cluster.client_config();
        assert_eq!(cc.servers(), 9);
        assert_eq!(cc.max_faults(), 2);
        assert_eq!(cc.readers(), 3);
        assert_eq!(cc.writers(), 2);
    }

    #[test]
    fn concurrent_schedule_completes_under_every_behavior() {
        let config = ByzConfig::new(9, 2, 2, 2).unwrap();
        let schedule: Vec<(SimTime, ScheduledOp)> = (0..4u64)
            .flat_map(|i| {
                [
                    (
                        SimTime::from_ticks(i * 5),
                        ScheduledOp::Write { writer: (i % 2) as u32, value: Value::new(i + 1) },
                    ),
                    (SimTime::from_ticks(i * 5 + 2), ScheduledOp::Read { reader: (i % 2) as u32 }),
                ]
            })
            .collect();
        for behavior in ByzBehavior::ADVERSARIAL {
            for mode in [ByzReadMode::Slow, ByzReadMode::Fast] {
                let cluster = ByzCluster::new(config, mode, behavior);
                let events = cluster.run_schedule(23, &schedule).unwrap();
                let completed = events
                    .iter()
                    .filter(|(_, e)| matches!(e, ClientEvent::Completed { .. }))
                    .count();
                assert_eq!(completed, 8, "{behavior}/{mode:?}: wait-freedom holds");
            }
        }
    }

    #[test]
    fn reads_never_return_forged_values() {
        let config = ByzConfig::new(5, 1, 2, 2).unwrap();
        let schedule: Vec<(SimTime, ScheduledOp)> = (0..4u64)
            .flat_map(|i| {
                [
                    (
                        SimTime::from_ticks(i * 3),
                        ScheduledOp::Write { writer: (i % 2) as u32, value: Value::new(i + 1) },
                    ),
                    (SimTime::from_ticks(i * 3 + 1), ScheduledOp::Read { reader: (i % 2) as u32 }),
                ]
            })
            .collect();
        for mode in [ByzReadMode::Slow, ByzReadMode::Fast] {
            let cluster =
                ByzCluster::new(config, mode, ByzBehavior::TagInflater { boost: 10_000 });
            for seed in 1..=10 {
                let events = cluster.run_schedule(seed, &schedule).unwrap();
                for (_, e) in &events {
                    if let ClientEvent::Completed { result: OpResult::Read(tv), .. } = e {
                        assert!(
                            tv.value().get() <= 4,
                            "{mode:?} seed {seed}: read returned forged {tv}"
                        );
                    }
                }
            }
        }
    }
}
