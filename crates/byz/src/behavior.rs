//! Reply-corrupting server adversaries.
//!
//! The adversary model: a Byzantine server receives every message a correct
//! server would and may reply with *anything, to anyone, or not at all* —
//! but cannot forge messages from other processes or tamper with channels
//! (the paper's channels are reliable and authenticated by construction of
//! the model). Corrupting replies is therefore the full extent of its
//! power, and the behaviors here cover the attack surface of quorum
//! register protocols: hiding, forging, equivocating, and silence.

use mwr_core::{Msg, Snapshot, ValueRecord};
use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};

/// The forged writer identity used by [`ByzBehavior::TagInflater`] — a
/// writer index no real cluster uses.
pub(crate) const FORGED_WRITER: u32 = u32::MAX;

/// The forged payload used by [`ByzBehavior::TagInflater`].
pub(crate) const FORGED_VALUE: u64 = 0xDEAD_BEEF;

/// How a Byzantine server treats its replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzBehavior {
    /// Behaves correctly (the `b = 0` baseline).
    Honest,
    /// Acknowledges everything but presents the initial state forever:
    /// every write it stores is hidden from every reader.
    StaleReplier,
    /// Reports a forged value with a timestamp `boost` above the true
    /// maximum, attributed to a writer that does not exist. Defeats any
    /// client that trusts a single maximum.
    TagInflater {
        /// How far above the true maximum timestamp the forgery lies.
        boost: u64,
    },
    /// Answers even-indexed clients honestly and odd-indexed clients with
    /// the stale view — two halves of the system observe different
    /// registers.
    Equivocator,
    /// Never replies. Observationally a crash; budgeted under `b`.
    Mute,
}

impl ByzBehavior {
    /// Short name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ByzBehavior::Honest => "honest",
            ByzBehavior::StaleReplier => "stale-replier",
            ByzBehavior::TagInflater { .. } => "tag-inflater",
            ByzBehavior::Equivocator => "equivocator",
            ByzBehavior::Mute => "mute",
        }
    }

    /// All adversarial behaviors (everything but [`ByzBehavior::Honest`]).
    pub const ADVERSARIAL: [ByzBehavior; 4] = [
        ByzBehavior::StaleReplier,
        ByzBehavior::TagInflater { boost: 1_000_000 },
        ByzBehavior::Equivocator,
        ByzBehavior::Mute,
    ];

    /// Applies this behavior to the reply a correct server would send to
    /// `client`. `None` means no reply is sent.
    pub(crate) fn corrupt(self, client: ClientId, reply: Msg) -> Option<Msg> {
        match self {
            ByzBehavior::Honest => Some(reply),
            ByzBehavior::Mute => None,
            ByzBehavior::StaleReplier => Some(stale_version(reply)),
            ByzBehavior::TagInflater { boost } => Some(inflated_version(reply, boost)),
            ByzBehavior::Equivocator => {
                if client_index(client).is_multiple_of(2) {
                    Some(reply)
                } else {
                    Some(stale_version(reply))
                }
            }
        }
    }
}

impl std::fmt::Display for ByzBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn client_index(client: ClientId) -> u32 {
    match client {
        ClientId::Reader(r) => r.index(),
        ClientId::Writer(w) => w.index(),
    }
}

/// The initial-state-only variant of a reply.
fn stale_version(reply: Msg) -> Msg {
    match reply {
        Msg::QueryAck { handle, .. } => {
            Msg::QueryAck { handle, latest: TaggedValue::initial() }
        }
        Msg::ReadFastAck { handle, .. } => Msg::ReadFastAck {
            handle,
            snapshot: Snapshot {
                entries: vec![ValueRecord { value: TaggedValue::initial(), updated: vec![] }],
            },
        },
        other => other, // acks carry no state to hide
    }
}

/// The forged-maximum variant of a reply.
fn inflated_version(reply: Msg, boost: u64) -> Msg {
    let forge = |above: TaggedValue, updated: Vec<ClientId>| ValueRecord {
        value: TaggedValue::new(
            Tag::new(above.tag().ts() + boost, WriterId::new(FORGED_WRITER)),
            Value::new(FORGED_VALUE),
        ),
        updated,
    };
    match reply {
        Msg::QueryAck { handle, latest } => Msg::QueryAck {
            handle,
            latest: forge(latest, vec![]).value,
        },
        Msg::ReadFastAck { handle, snapshot } => {
            let top = snapshot.max_value().unwrap_or_else(TaggedValue::initial);
            // Claim every client the true store knows as a witness of the
            // forgery — maximally persuasive to a degree-counting reader.
            let witnesses: Vec<ClientId> = {
                let mut all: Vec<ClientId> = snapshot
                    .entries
                    .iter()
                    .flat_map(|e| e.updated.iter().copied())
                    .collect();
                all.sort_unstable();
                all.dedup();
                all
            };
            let mut entries = snapshot.entries;
            entries.push(forge(top, witnesses));
            Msg::ReadFastAck { handle, snapshot: Snapshot { entries } }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_core::{OpHandle, OpId};

    fn handle() -> OpHandle {
        OpHandle { op: OpId { client: ClientId::reader(0), seq: 0 }, phase: 1 }
    }

    fn tv(ts: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts, WriterId::new(w)), Value::new(v))
    }

    #[test]
    fn honest_passes_replies_through() {
        let reply = Msg::QueryAck { handle: handle(), latest: tv(3, 0, 30) };
        assert_eq!(ByzBehavior::Honest.corrupt(ClientId::reader(0), reply.clone()), Some(reply));
    }

    #[test]
    fn mute_drops_everything() {
        let reply = Msg::UpdateAck { handle: handle() };
        assert_eq!(ByzBehavior::Mute.corrupt(ClientId::writer(1), reply), None);
    }

    #[test]
    fn stale_replier_reports_initial_state() {
        let reply = Msg::QueryAck { handle: handle(), latest: tv(5, 1, 50) };
        let Some(Msg::QueryAck { latest, .. }) =
            ByzBehavior::StaleReplier.corrupt(ClientId::reader(0), reply)
        else {
            panic!()
        };
        assert!(latest.tag().is_initial());
    }

    #[test]
    fn inflater_forges_above_the_true_maximum() {
        let reply = Msg::QueryAck { handle: handle(), latest: tv(5, 1, 50) };
        let Some(Msg::QueryAck { latest, .. }) =
            (ByzBehavior::TagInflater { boost: 100 }).corrupt(ClientId::reader(0), reply)
        else {
            panic!()
        };
        assert_eq!(latest.tag().ts(), 105);
        assert_eq!(latest.value(), Value::new(FORGED_VALUE));
    }

    #[test]
    fn inflater_plants_a_witnessed_forgery_in_snapshots() {
        let snapshot = Snapshot {
            entries: vec![ValueRecord {
                value: tv(2, 0, 20),
                updated: vec![ClientId::writer(0), ClientId::reader(1)],
            }],
        };
        let reply = Msg::ReadFastAck { handle: handle(), snapshot };
        let Some(Msg::ReadFastAck { snapshot, .. }) =
            (ByzBehavior::TagInflater { boost: 10 }).corrupt(ClientId::reader(0), reply)
        else {
            panic!()
        };
        let forged = snapshot.max_value().unwrap();
        assert_eq!(forged.tag().ts(), 12);
        assert_eq!(snapshot.updated_for(forged).unwrap().len(), 2, "claims the true witnesses");
        assert!(snapshot.contains(tv(2, 0, 20)), "true entries retained for plausibility");
    }

    #[test]
    fn equivocator_splits_clients_by_parity() {
        let reply = Msg::QueryAck { handle: handle(), latest: tv(5, 1, 50) };
        let Some(Msg::QueryAck { latest: even, .. }) =
            ByzBehavior::Equivocator.corrupt(ClientId::reader(0), reply.clone())
        else {
            panic!()
        };
        let Some(Msg::QueryAck { latest: odd, .. }) =
            ByzBehavior::Equivocator.corrupt(ClientId::reader(1), reply)
        else {
            panic!()
        };
        assert_eq!(even, tv(5, 1, 50));
        assert!(odd.tag().is_initial());
    }

    #[test]
    fn acks_pass_through_corruption_unchanged() {
        let reply = Msg::UpdateAck { handle: handle() };
        for behavior in [
            ByzBehavior::StaleReplier,
            ByzBehavior::TagInflater { boost: 9 },
        ] {
            assert_eq!(behavior.corrupt(ClientId::writer(0), reply.clone()), Some(reply.clone()));
        }
    }
}
