//! Vouching: believing a reported value only when enough servers report it
//! identically that at least one of them must be correct.

use std::collections::BTreeMap;

use mwr_core::Snapshot;
use mwr_types::{Tag, TaggedValue};

/// The values present in at least `threshold` of the given snapshots,
/// ascending by tag.
///
/// With `threshold = b + 1`, at least one voucher is correct, so a vouched
/// value was genuinely stored by a correct server — forgeries (reported by
/// at most `b` servers) never qualify.
///
/// # Examples
///
/// ```
/// use mwr_byz::vouched_values;
/// use mwr_core::{Snapshot, ValueRecord};
/// use mwr_types::{Tag, TaggedValue, Value, WriterId};
///
/// let v = TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(7));
/// let forged = TaggedValue::new(Tag::new(99, WriterId::new(9)), Value::new(666));
/// let with = |vals: &[TaggedValue]| Snapshot {
///     entries: vals.iter().map(|v| ValueRecord { value: *v, updated: vec![] }).collect(),
/// };
/// let snaps = [with(&[v]), with(&[v]), with(&[forged])];
/// assert_eq!(vouched_values(&snaps, 2), vec![v]); // the forgery had one voucher
/// ```
pub fn vouched_values(snapshots: &[Snapshot], threshold: usize) -> Vec<TaggedValue> {
    let mut counts: BTreeMap<TaggedValue, usize> = BTreeMap::new();
    for snap in snapshots {
        for entry in &snap.entries {
            *counts.entry(entry.value).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .filter(|&(_, n)| n >= threshold)
        .map(|(v, _)| v)
        .collect()
}

/// The snapshots filtered down to vouched values only.
///
/// Feeding these to the `admissible(·)` evaluator makes degree counting
/// blind to forgeries while preserving the genuine entries and their
/// `updated` witness sets.
pub fn vouched_snapshots(snapshots: &[Snapshot], threshold: usize) -> Vec<Snapshot> {
    let vouched = vouched_values(snapshots, threshold);
    snapshots
        .iter()
        .map(|snap| Snapshot {
            entries: snap
                .entries
                .iter()
                .filter(|e| vouched.binary_search(&e.value).is_ok())
                .cloned()
                .collect(),
        })
        .collect()
}

/// The `(byz + 1)`-st largest of the reported tags — the inflation-immune
/// maximum.
///
/// At most `byz` of the reports are forged, so after discarding the `byz`
/// largest, the next one is at most the true maximum; and every tag that
/// `byz + 1` servers reported at least this high is retained. Writers use
/// this to pick the next timestamp: it dominates every *completed* write
/// (which is vouched by `b + 1` quorum-intersection servers) yet cannot be
/// dragged upward by forgeries.
///
/// Returns [`Tag::initial`] when there are `byz` or fewer reports.
///
/// # Examples
///
/// ```
/// use mwr_byz::safe_max_tag;
/// use mwr_types::{Tag, WriterId};
///
/// let honest = Tag::new(4, WriterId::new(0));
/// let forged = Tag::new(1_000_000, WriterId::new(9));
/// let tags = [honest, honest, honest, forged];
/// assert_eq!(safe_max_tag(&tags, 1), honest);
/// ```
pub fn safe_max_tag(tags: &[Tag], byz: usize) -> Tag {
    if tags.len() <= byz {
        return Tag::initial();
    }
    let mut sorted: Vec<Tag> = tags.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    sorted[byz]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_core::ValueRecord;
    use mwr_types::{ClientId, Value, WriterId};

    fn tv(ts: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts, WriterId::new(w)), Value::new(v))
    }

    fn snap(vals: &[(TaggedValue, Vec<ClientId>)]) -> Snapshot {
        Snapshot {
            entries: vals
                .iter()
                .map(|(v, u)| ValueRecord { value: *v, updated: u.clone() })
                .collect(),
        }
    }

    #[test]
    fn vouching_requires_threshold_distinct_snapshots() {
        let a = tv(1, 0, 10);
        let b = tv(2, 1, 20);
        let snaps = [
            snap(&[(a, vec![]), (b, vec![])]),
            snap(&[(a, vec![])]),
            snap(&[(a, vec![])]),
        ];
        assert_eq!(vouched_values(&snaps, 1), vec![a, b]);
        assert_eq!(vouched_values(&snaps, 2), vec![a]);
        assert_eq!(vouched_values(&snaps, 3), vec![a]);
        assert_eq!(vouched_values(&snaps, 4), vec![]);
    }

    #[test]
    fn vouched_snapshots_preserve_witness_sets() {
        let real = tv(1, 0, 10);
        let forged = tv(50, 9, 99);
        let snaps = [
            snap(&[(real, vec![ClientId::writer(0)])]),
            snap(&[(real, vec![ClientId::writer(0), ClientId::reader(0)])]),
            snap(&[(forged, vec![ClientId::writer(0)])]),
        ];
        let filtered = vouched_snapshots(&snaps, 2);
        assert_eq!(filtered.len(), 3, "one filtered snapshot per reply");
        assert!(filtered[0].contains(real));
        assert_eq!(filtered[1].updated_for(real).unwrap().len(), 2);
        assert!(!filtered[2].contains(forged), "forgery removed");
        assert!(filtered[2].entries.is_empty());
    }

    #[test]
    fn safe_max_discards_exactly_byz_top_reports() {
        let t = |ts| Tag::new(ts, WriterId::new(0));
        assert_eq!(safe_max_tag(&[t(1), t(2), t(3), t(900)], 1), t(3));
        assert_eq!(safe_max_tag(&[t(1), t(2), t(900), t(901)], 2), t(2));
        assert_eq!(safe_max_tag(&[t(5)], 0), t(5));
    }

    #[test]
    fn safe_max_with_too_few_reports_is_initial() {
        let t = Tag::new(7, WriterId::new(0));
        assert_eq!(safe_max_tag(&[t], 1), Tag::initial());
        assert_eq!(safe_max_tag(&[], 0), Tag::initial());
    }

    #[test]
    fn safe_max_is_monotone_in_honest_reports() {
        // Adding an honest high report can only raise the safe max.
        let t = |ts| Tag::new(ts, WriterId::new(0));
        let base = safe_max_tag(&[t(1), t(2), t(3)], 1);
        let more = safe_max_tag(&[t(1), t(2), t(3), t(4)], 1);
        assert!(more >= base);
    }
}
