//! The Byzantine server automaton: a correct Algorithm 2 server whose
//! replies pass through a [`ByzBehavior`] filter.

use mwr_core::{ClientEvent, Msg, RegisterServer};
use mwr_sim::{Automaton, Context};
use mwr_types::ProcessId;

use crate::behavior::ByzBehavior;

/// A register server that may corrupt its replies.
///
/// Internally the server runs the unmodified Algorithm 2 state machine —
/// the corruption is applied at the reply boundary, which is the full
/// extent of a Byzantine server's power in this model (it cannot forge
/// other processes' messages or break channels).
///
/// # Examples
///
/// ```
/// use mwr_byz::{ByzBehavior, ByzRegisterServer};
///
/// let _honest = ByzRegisterServer::new(ByzBehavior::Honest);
/// let _liar = ByzRegisterServer::new(ByzBehavior::TagInflater { boost: 100 });
/// ```
#[derive(Debug)]
pub struct ByzRegisterServer {
    inner: RegisterServer,
    behavior: ByzBehavior,
}

impl ByzRegisterServer {
    /// Creates a fresh server with the given behavior.
    pub fn new(behavior: ByzBehavior) -> Self {
        ByzRegisterServer { inner: RegisterServer::new(), behavior }
    }

    /// The configured behavior.
    pub fn behavior(&self) -> ByzBehavior {
        self.behavior
    }

    /// Computes the (possibly corrupted) reply for one request.
    pub fn handle(&mut self, from: ProcessId, msg: &Msg) -> Option<Msg> {
        let honest_reply = self.inner.handle(from, msg)?;
        let client = from.as_client()?;
        self.behavior.corrupt(client, honest_reply)
    }
}

impl Automaton<Msg, ClientEvent> for ByzRegisterServer {
    fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, ClientEvent>) {
        if let Some(reply) = self.handle(from, &msg) {
            ctx.send(from, reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_core::{OpHandle, OpId};
    use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};

    fn update(ts: u64, v: u64) -> Msg {
        Msg::Update {
            handle: OpHandle {
                op: OpId { client: ClientId::writer(0), seq: 0 },
                phase: 1,
            },
            value: TaggedValue::new(Tag::new(ts, WriterId::new(0)), Value::new(v)),
            floor: TaggedValue::initial(),
        }
    }

    fn query() -> Msg {
        Msg::Query {
            handle: OpHandle { op: OpId { client: ClientId::reader(0), seq: 0 }, phase: 1 },
        }
    }

    #[test]
    fn honest_behavior_is_transparent() {
        let mut byz = ByzRegisterServer::new(ByzBehavior::Honest);
        let mut plain = RegisterServer::new();
        let w = ProcessId::writer(0);
        let r = ProcessId::reader(0);
        for msg in [update(1, 10), query()] {
            assert_eq!(byz.handle(w, &msg), plain.handle(w, &msg));
        }
        assert_eq!(byz.handle(r, &query()), plain.handle(r, &query()));
    }

    #[test]
    fn stale_replier_stores_but_hides() {
        let mut srv = ByzRegisterServer::new(ByzBehavior::StaleReplier);
        srv.handle(ProcessId::writer(0), &update(3, 30));
        let Some(Msg::QueryAck { latest, .. }) = srv.handle(ProcessId::reader(0), &query())
        else {
            panic!()
        };
        assert!(latest.tag().is_initial(), "the stored write is hidden");
    }

    #[test]
    fn mute_server_acknowledges_nothing() {
        let mut srv = ByzRegisterServer::new(ByzBehavior::Mute);
        assert_eq!(srv.handle(ProcessId::writer(0), &update(1, 1)), None);
        assert_eq!(srv.handle(ProcessId::reader(0), &query()), None);
    }
}
