//! Masking-quorum arithmetic for clusters with Byzantine servers.

use std::fmt;

/// Parameters of a Byzantine register cluster: `S` servers of which at most
/// `b` are Byzantine (arbitrarily corrupting or withholding their replies),
/// `R` readers and `W` writers. Clients are correct; channels are reliable.
///
/// The failure budget `b` subsumes crashes: a crashed server is a Byzantine
/// server that chose silence ([`ByzBehavior::Mute`]).
///
/// [`ByzBehavior::Mute`]: crate::ByzBehavior::Mute
///
/// # Examples
///
/// ```
/// use mwr_byz::ByzConfig;
///
/// let config = ByzConfig::new(5, 1, 2, 2)?;
/// assert_eq!(config.quorum_size(), 4);    // S − b, intersecting in ≥ 2b + 1
/// assert_eq!(config.vouch_threshold(), 2); // b + 1
/// assert!(config.masking_feasible());      // S ≥ 4b + 1
/// # Ok::<(), mwr_byz::ByzConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByzConfig {
    servers: usize,
    byz: usize,
    readers: usize,
    writers: usize,
}

/// Error constructing a [`ByzConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByzConfigError {
    /// Fewer than two servers cannot form a distributed emulation.
    TooFewServers {
        /// Requested server count.
        servers: usize,
    },
    /// The masking-quorum construction requires `S ≥ 4b + 1`.
    TooManyByzantine {
        /// Requested server count.
        servers: usize,
        /// Requested Byzantine budget.
        byz: usize,
    },
    /// At least one reader and one writer are required.
    NoClients,
}

impl fmt::Display for ByzConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ByzConfigError::TooFewServers { servers } => {
                write!(f, "need at least 2 servers, got {servers}")
            }
            ByzConfigError::TooManyByzantine { servers, byz } => {
                write!(f, "masking quorums need S ≥ 4b + 1, got S = {servers}, b = {byz}")
            }
            ByzConfigError::NoClients => write!(f, "need at least one reader and one writer"),
        }
    }
}

impl std::error::Error for ByzConfigError {}

impl ByzConfig {
    /// Creates a configuration, validating the masking-quorum requirement.
    ///
    /// # Errors
    ///
    /// Returns [`ByzConfigError`] when `S < 2`, when `S < 4b + 1`, or when
    /// there are no readers or writers.
    pub fn new(
        servers: usize,
        byz: usize,
        readers: usize,
        writers: usize,
    ) -> Result<Self, ByzConfigError> {
        if servers < 2 {
            return Err(ByzConfigError::TooFewServers { servers });
        }
        if servers < 4 * byz + 1 {
            return Err(ByzConfigError::TooManyByzantine { servers, byz });
        }
        if readers == 0 || writers == 0 {
            return Err(ByzConfigError::NoClients);
        }
        Ok(ByzConfig { servers, byz, readers, writers })
    }

    /// Number of servers `S`.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Byzantine budget `b`.
    pub fn byz(&self) -> usize {
        self.byz
    }

    /// Number of readers `R`.
    pub fn readers(&self) -> usize {
        self.readers
    }

    /// Number of writers `W`.
    pub fn writers(&self) -> usize {
        self.writers
    }

    /// The quorum size `q = S − b`: the maximal wait-free quorum,
    /// mirroring the paper's `S − t` discipline. Any two quorums intersect
    /// in `2q − S = S − 2b ≥ 2b + 1` servers (using `S ≥ 4b + 1`), hence in
    /// `≥ b + 1` *correct* servers — the masking-quorum property of
    /// Malkhi–Reiter, instantiated at threshold quorums.
    pub fn quorum_size(&self) -> usize {
        self.servers - self.byz
    }

    /// The vouching threshold `b + 1`: a reported value is believed only
    /// when this many servers report it identically (at least one of them
    /// is then correct).
    pub fn vouch_threshold(&self) -> usize {
        self.byz + 1
    }

    /// Whether the construction is live *and* safe: two quorums share at
    /// least `2b + 1` servers (`S ≥ 4b + 1`, guaranteed by construction).
    pub fn masking_feasible(&self) -> bool {
        2 * self.quorum_size() > self.servers + 2 * self.byz
    }

    /// The natural generalization of the paper's fast-read condition
    /// `t·(R + 2) < S` to the Byzantine setting: `2b·(R + 3) < S`.
    ///
    /// Derivation sketch, mirroring the crash case. A degree-`a`
    /// admissibility witness set must keep `|µ| ≥ q − a·2b` (each Byzantine
    /// server can both hide a value it holds *and* flaunt one it doesn't —
    /// a `2b` margin per degree instead of `t`), and even at the maximal
    /// degree `a = R + 1` the witness set must still intersect every other
    /// quorum in `2b + 1` servers (`b + 1` correct): `|µ| + q − S ≥ 2b + 1`.
    /// With `q = S − b` this reduces to `2b(R + 3) < S`; at `b = 0` it
    /// degenerates to the paper's `t = 0` case (always feasible).
    ///
    /// This is stated as a **conjecture** — deriving the exact Byzantine
    /// frontier is precisely the future work the paper's §5 points at; the
    /// `byz_resilience` experiment maps the empirical boundary against it.
    pub fn fast_read_conjecture(&self) -> bool {
        2 * self.byz * (self.readers + 3) < self.servers
    }
}

impl fmt::Display for ByzConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "S={} b={} R={} W={}",
            self.servers, self.byz, self.readers, self.writers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_sizes_satisfy_masking_intersection() {
        // (S, b) → q = S − b with 2q − S ≥ 2b + 1.
        for (s, b, expected) in [(5, 1, 4), (9, 2, 7), (13, 3, 10), (4, 0, 4), (2, 0, 2)] {
            let c = ByzConfig::new(s, b, 1, 1).unwrap();
            assert_eq!(c.quorum_size(), expected, "S={s}, b={b}");
            assert!(2 * c.quorum_size() - s > 2 * b);
            assert!(c.masking_feasible());
        }
    }

    #[test]
    fn four_b_plus_one_is_the_boundary() {
        assert!(ByzConfig::new(5, 1, 1, 1).is_ok());
        assert!(matches!(
            ByzConfig::new(4, 1, 1, 1),
            Err(ByzConfigError::TooManyByzantine { .. })
        ));
        assert!(ByzConfig::new(9, 2, 1, 1).is_ok());
        assert!(ByzConfig::new(8, 2, 1, 1).is_err());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(matches!(ByzConfig::new(1, 0, 1, 1), Err(ByzConfigError::TooFewServers { .. })));
        assert!(matches!(ByzConfig::new(3, 0, 0, 1), Err(ByzConfigError::NoClients)));
        assert!(matches!(ByzConfig::new(3, 0, 1, 0), Err(ByzConfigError::NoClients)));
    }

    #[test]
    fn zero_byzantine_degenerates_to_the_papers_t_zero_case() {
        let c = ByzConfig::new(5, 0, 2, 2).unwrap();
        assert_eq!(c.quorum_size(), 5, "q = S − 0: wait for everyone, as the paper does at t = 0");
        assert_eq!(c.vouch_threshold(), 1);
        assert!(c.fast_read_conjecture(), "t = 0 fast reads are always feasible");
    }

    #[test]
    fn fast_read_conjecture_shrinks_with_readers() {
        // S = 17, b = 1: conjecture holds iff 2(R + 3) < 17 ⟺ R ≤ 5.
        assert!(ByzConfig::new(17, 1, 5, 2).unwrap().fast_read_conjecture());
        assert!(!ByzConfig::new(17, 1, 6, 2).unwrap().fast_read_conjecture());
    }

    #[test]
    fn errors_render() {
        assert!(ByzConfig::new(4, 1, 1, 1).unwrap_err().to_string().contains("4b + 1"));
        assert!(ByzConfig::new(1, 0, 1, 1).unwrap_err().to_string().contains("at least 2"));
    }
}
