//! Property pins for the incremental fast-read selection: the
//! [`WitnessIndex`]/[`WitnessSelector`] production path must agree with the
//! naive [`Admissibility`] reference on every degree probe and on the
//! selected return value, and the index maintained *incrementally* across
//! delta merges (with GC pruning) must equal the index rebuilt from scratch
//! over the resulting caches.
//!
//! The naive evaluator rebuilds its witness bitmasks per `(candidate,
//! degree)` pair — it is the executable form of Algorithm 1's definition —
//! so agreement here is what lets the clients run the indexed path while
//! `tests/facade_equivalence.rs` pins whole event streams.

use std::collections::{BTreeMap, BTreeSet};

use mwr_core::{
    Admissibility, DeltaSnapshot, FastReadState, Snapshot, SnapshotCache, SnapshotSource,
    ValueRecord, WitnessIndex,
};
use mwr_types::{ClientId, ServerId, Tag, TaggedValue, Value, WriterId};

use proptest::collection::vec;
use proptest::prelude::*;

/// Distinct non-initial candidate values; index `POOL` is the initial value.
const POOL: usize = 6;

fn pool_value(i: usize) -> TaggedValue {
    if i >= POOL {
        TaggedValue::initial()
    } else {
        TaggedValue::new(Tag::new(i as u64 + 1, WriterId::new((i % 2) as u32)), Value::new(i as u64))
    }
}

/// Bit `b` of `bits` registers client `b` (readers 0–3, writers 0–3).
fn clients_of(bits: u16) -> impl Iterator<Item = ClientId> {
    (0..8u32).filter(move |b| bits & (1 << b) != 0).map(|b| {
        if b < 4 {
            ClientId::reader(b)
        } else {
            ClientId::writer(b - 4)
        }
    })
}

/// One snapshot from raw `(value index, client bits)` pairs, deduplicated
/// by value exactly like a server store would hold it.
fn snapshot(raw: &[(usize, u16)]) -> Snapshot {
    let mut entries: BTreeMap<TaggedValue, BTreeSet<ClientId>> = BTreeMap::new();
    for &(v, bits) in raw {
        entries.entry(pool_value(v)).or_default().extend(clients_of(bits));
    }
    Snapshot {
        entries: entries
            .into_iter()
            .map(|(value, updated)| ValueRecord {
                value,
                updated: updated.into_iter().collect(),
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Per-read equivalence: the index built once over borrowed replies
    /// answers every degree probe, the max-candidate query, and the full
    /// selection walk exactly like the naive reference.
    #[test]
    fn index_matches_naive_reference(
        raw in vec(vec((0usize..7, 0u16..256), 0..6), 1..10),
        servers in 3usize..13,
        faults in 0usize..3,
        max_degree in 1usize..6,
    ) {
        let replies: Vec<Snapshot> = raw.iter().map(|r| snapshot(r)).collect();
        let naive = Admissibility::new(&replies, servers, faults, max_degree);
        let (index, mask) = WitnessIndex::from_views(replies.iter().map(SnapshotSource::view));
        let mut sel = index.selector(mask, servers, faults, max_degree);

        let mut any_admissible = false;
        for i in 0..=POOL {
            let v = pool_value(i);
            let naive_degree = naive.degree(v);
            prop_assert_eq!(sel.degree(v), naive_degree, "degree({}) diverged", v);
            any_admissible |= naive_degree.is_some();
        }
        prop_assert_eq!(sel.max_candidate(), naive.candidates_descending().first().copied());
        if any_admissible {
            prop_assert_eq!(sel.select_return_value(), naive.select_return_value());
        }
    }

    /// Maintenance equivalence: merging an arbitrary interleaving of deltas
    /// (additions, registrations, version bumps, GC pruning) through
    /// `FastReadState` leaves exactly the index a from-scratch rebuild over
    /// the resulting caches produces — and selection over it agrees with
    /// the naive reference run on any replied subset of those caches.
    #[test]
    fn incremental_index_equals_rebuild_across_merges(
        deltas in vec(
            (
                0usize..4,                                  // server
                vec((0usize..7, 0u16..256), 0..4),          // delta entries
                0u64..20,                                   // version
                0usize..8,                                  // pruned (7 = initial)
                0usize..7,                                  // latest
            ),
            0..14,
        ),
        replied_bits in 1u8..16,
        servers in 4usize..9,
        faults in 0usize..3,
        max_degree in 1usize..5,
    ) {
        let mut state = FastReadState::new();
        let mut mirror: BTreeMap<ServerId, SnapshotCache> = BTreeMap::new();
        for s in 0..4u32 {
            state.cache(ServerId::new(s));
            mirror.insert(ServerId::new(s), SnapshotCache::new());
        }
        for (server, entries, version, pruned, latest) in &deltas {
            let snap = snapshot(entries);
            let delta = DeltaSnapshot {
                from: 0,
                version: *version,
                latest: pool_value(*latest),
                pruned: pool_value((*pruned).min(POOL)),
                entries: snap.entries,
            };
            let sid = ServerId::new(*server as u32);
            state.merge(sid, &delta);
            mirror.get_mut(&sid).unwrap().merge(&delta);
        }

        // The incrementally-maintained index is byte-for-byte the rebuild.
        let (rebuilt, full_mask) =
            WitnessIndex::from_views(mirror.values().map(SnapshotSource::view));
        prop_assert_eq!(full_mask, 0b1111);
        prop_assert_eq!(state.index(), &rebuilt);

        // Selection over any replied subset matches the naive reference
        // evaluated directly on the replying caches (no reconstruction).
        let replied_caches: Vec<SnapshotCache> = mirror
            .iter()
            .filter(|(s, _)| replied_bits & (1 << s.index()) != 0)
            .map(|(_, c)| c.clone())
            .collect();
        let naive = Admissibility::new(&replied_caches, servers, faults, max_degree);
        let mut sel =
            state.index().selector(replied_bits as u128, servers, faults, max_degree);
        let mut any_admissible = false;
        for i in 0..=POOL {
            let v = pool_value(i);
            let naive_degree = naive.degree(v);
            prop_assert_eq!(sel.degree(v), naive_degree, "degree({}) diverged", v);
            any_admissible |= naive_degree.is_some();
        }
        prop_assert_eq!(sel.max_candidate(), naive.candidates_descending().first().copied());
        if any_admissible {
            prop_assert_eq!(sel.select_return_value(), naive.select_return_value());
        }

        // GC floors must evict index entries: nothing below every cache's
        // floor (unless resurrected as a `latest`) survives in the index.
        for v in state.index().values_in(u128::MAX) {
            prop_assert!(
                mirror.values().any(|c| c.knows(v)),
                "index holds {} but no cache does", v
            );
        }
    }
}
