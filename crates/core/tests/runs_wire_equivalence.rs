//! Property pins for the wire-v4 run-length registration gossip.
//!
//! Two identical servers are driven with the same randomized schedule of
//! writes, floor reports, and fast reads — one queried over the v3 delta
//! wire ([`Msg::ReadFastDelta`]), one over the v4 runs wire
//! ([`Msg::ReadFastRuns`]). The deltas they return must be *equal* at
//! every step (the runs encoding is a wire artifact, not a semantic
//! change), every runs ack must round-trip byte-exactly through the
//! codec, and the v3 frames must keep decoding unchanged next to the new
//! discriminants. GC pruning runs throughout (floors piggybacked on every
//! request), so the interaction between the registration log, the pruned
//! floor, and the run encoding is exercised rather than assumed.

use mwr_core::{DeltaSnapshot, Msg, OpHandle, OpId, RegisterServer};
use mwr_types::codec::Wire;
use mwr_types::{ClientId, ProcessId, Tag, TaggedValue, Value, WriterId};

use proptest::collection::vec;
use proptest::prelude::*;

fn tv(ts: u64, w: u32, v: u64) -> TaggedValue {
    TaggedValue::new(Tag::new(ts, WriterId::new(w)), Value::new(v))
}

fn handle(client: ClientId, seq: u64) -> OpHandle {
    OpHandle { op: OpId { client, seq }, phase: 1 }
}

/// Round-trips a message through the codec, checking the exact-length
/// contract, and returns the decoded copy.
fn round_trip(msg: &Msg) -> Msg {
    let mut bytes = msg.to_bytes();
    assert_eq!(msg.encoded_len(), bytes.len(), "encoded_len must match encode");
    let decoded = Msg::decode(&mut bytes).expect("runs frame must decode");
    assert!(bytes.is_empty(), "decode must consume the whole frame");
    decoded
}

/// Sends the same fast read to both servers — over the delta wire to one,
/// the runs wire to the other — and returns the (asserted-equal) delta.
fn paired_read(
    delta_server: &mut RegisterServer,
    runs_server: &mut RegisterServer,
    reader: u32,
    seq: u64,
    acked: u64,
    floor: TaggedValue,
) -> DeltaSnapshot {
    let from = ProcessId::reader(reader);
    let h = handle(ClientId::reader(reader), seq);
    let v3_req = Msg::ReadFastDelta { handle: h, acked, floor, new_values: vec![] };
    let v4_req = Msg::ReadFastRuns { handle: h, acked, floor, new_values: vec![] };

    let v3_ack = delta_server.handle(from, &v3_req).expect("delta read must be answered");
    let v4_ack = runs_server.handle(from, &v4_req).expect("runs read must be answered");

    // The runs ack survives the wire byte-exactly (this is where the
    // run-length expansion actually runs), and the v3 ack still decodes
    // unchanged next to the new discriminants.
    assert_eq!(round_trip(&v4_ack), v4_ack);
    assert_eq!(round_trip(&v3_ack), v3_ack);

    let Msg::ReadFastDeltaAck { delta: v3_delta, .. } = v3_ack else {
        panic!("delta request must get a delta ack, got {v3_ack:?}");
    };
    let Msg::ReadFastRunsAck { delta: v4_delta, .. } = v4_ack else {
        panic!("runs request must get a runs ack, got {v4_ack:?}");
    };
    assert_eq!(v3_delta, v4_delta, "the two wires must carry the same information");
    v3_delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The v4 wire is information-equivalent to v3 under randomized
    /// write/read/GC schedules: equal deltas at every step, byte-exact
    /// round-trips, and the reader mirrors built from the two wires agree.
    #[test]
    fn runs_wire_matches_delta_wire_under_gc(
        script in vec((0u8..4, 0u32..3, 0u32..4), 1..40),
    ) {
        let readers = 4u32;
        let writers = 3u32;
        let population = (readers + writers) as usize;
        let mut delta_server = RegisterServer::with_gc(population);
        let mut runs_server = RegisterServer::with_gc(population);

        let mut ts = 0u64;
        let mut seq = 0u64;
        // Per-reader mirror of the delta protocol's client state: the
        // acknowledged version and completed-operation floor.
        let mut acked = vec![0u64; readers as usize];
        let mut floors = vec![TaggedValue::initial(); readers as usize];

        for (op, w, r) in script {
            seq += 1;
            match op {
                // A write: both servers get the identical update, with the
                // writer's floor piggybacked (this is what engages GC).
                0 | 1 => {
                    ts += 1;
                    let value = tv(ts, w, ts);
                    let h = handle(ClientId::writer(w), seq);
                    let update = Msg::Update { handle: h, value, floor: value };
                    let from = ProcessId::writer(w);
                    let a = delta_server.handle(from, &update);
                    let b = runs_server.handle(from, &update);
                    prop_assert_eq!(a, b);
                }
                // A fast read from reader `r`, continuing from its mirror.
                2 => {
                    let i = (r % readers) as usize;
                    let delta = paired_read(
                        &mut delta_server,
                        &mut runs_server,
                        r % readers,
                        seq,
                        acked[i],
                        floors[i],
                    );
                    prop_assert!(delta.from <= acked[i], "window must start at or below acked");
                    acked[i] = delta.version;
                    floors[i] = floors[i].max(delta.latest);
                }
                // A resynchronizing read (acked 0): the full-store reply
                // exercises runs over the whole surviving registration log,
                // *after* any pruning the floors above triggered.
                _ => {
                    let i = (r % readers) as usize;
                    let delta = paired_read(
                        &mut delta_server,
                        &mut runs_server,
                        r % readers,
                        seq,
                        0,
                        floors[i],
                    );
                    acked[i] = delta.version;
                    floors[i] = floors[i].max(delta.latest);
                }
            }
        }

        // Final check: a fresh reader's first read (the densest catch-up
        // reply the server can produce) agrees across the wires too.
        paired_read(&mut delta_server, &mut runs_server, readers - 1, seq + 1, 0, TaggedValue::initial());
    }
}

/// The registration-gossip compression at the 128-id boundary: 130 readers
/// all register on the same values, so every catch-up delta carries
/// `updated` lists that are one dense run spanning indices 0..130. The
/// runs ack must round-trip exactly across the boundary and be a fraction
/// of the v3 ack's size — this is the O(W×R) stream the wire change
/// collapses.
#[test]
fn dense_130_reader_catch_up_compresses_and_round_trips() {
    let readers = 130u32;
    let population = readers as usize + 1;
    let mut delta_server = RegisterServer::with_gc(population);
    let mut runs_server = RegisterServer::with_gc(population);

    let mut seq = 0u64;
    let mut acked = vec![0u64; readers as usize];

    // Round 1: every reader reads, registering itself on the initial value.
    for r in 0..readers {
        seq += 1;
        let delta = paired_read(
            &mut delta_server,
            &mut runs_server,
            r,
            seq,
            0,
            TaggedValue::initial(),
        );
        acked[r as usize] = delta.version;
    }

    // One write lands.
    seq += 1;
    let value = tv(1, 0, 42);
    let update = Msg::Update { handle: handle(ClientId::writer(0), seq), value, floor: value };
    delta_server.handle(ProcessId::writer(0), &update);
    runs_server.handle(ProcessId::writer(0), &update);

    // Round 2: every reader reads again. Each late reader's ack carries
    // the re-registrations of every earlier reader in this round — the
    // gossip fan-out — as one dense run per value.
    let mut last_sizes = (0usize, 0usize);
    for r in 0..readers {
        seq += 1;
        let i = r as usize;
        let from = ProcessId::reader(r);
        let h = handle(ClientId::reader(r), seq);
        let floor = TaggedValue::initial();
        let v3_ack = delta_server
            .handle(from, &Msg::ReadFastDelta { handle: h, acked: acked[i], floor, new_values: vec![] })
            .unwrap();
        let v4_ack = runs_server
            .handle(from, &Msg::ReadFastRuns { handle: h, acked: acked[i], floor, new_values: vec![] })
            .unwrap();
        let (Msg::ReadFastDeltaAck { delta: d3, .. }, Msg::ReadFastRunsAck { delta: d4, .. }) =
            (&v3_ack, &v4_ack)
        else {
            panic!("wrong ack kinds");
        };
        assert_eq!(d3, d4);
        acked[i] = d3.version;
        let mut bytes = v4_ack.to_bytes();
        assert_eq!(v4_ack.encoded_len(), bytes.len());
        assert_eq!(Msg::decode(&mut bytes).unwrap(), v4_ack);
        last_sizes = (v3_ack.encoded_len(), v4_ack.encoded_len());
    }

    // The last reader of the round sees 129 earlier re-registrations: the
    // run encoding must collapse them (well under a third of the v3 size).
    let (v3_size, v4_size) = last_sizes;
    assert!(
        v4_size * 3 < v3_size,
        "runs ack ({v4_size} B) must be well under a third of the delta ack ({v3_size} B)"
    );
}
