//! Sampled operation records for streaming linearizability auditing.
//!
//! The live runtime (`mwr-runtime`) taps its blocking clients and emits one
//! [`AuditRecord`] per sampled operation boundary; `mwr-check`'s streaming
//! auditor consumes them to maintain an online order-graph over a bounded
//! window of recent operations. The type lives here — not in either of
//! those crates — because it is pure protocol data: what happened, to whom,
//! when, with no transport or checker machinery attached.
//!
//! The live runtime has no virtual clock, so records carry wall-clock
//! microseconds measured from an arbitrary per-deployment epoch. Only the
//! *order* of the stamps matters (real-time precedence between operations);
//! the epoch itself is never interpreted.

use mwr_types::{ClientId, TaggedValue};

use crate::events::{OpKind, OpResult};

/// One sampled event from a live client, as fed to the streaming auditor.
///
/// Records from a single client arrive in program order (each client is one
/// thread issuing one operation at a time), so per-client histories are
/// well-formed by construction. Records from different clients may be
/// interleaved arbitrarily by the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditRecord {
    /// An operation started executing.
    Invoked {
        /// The invoking client.
        client: ClientId,
        /// The client's operation sequence number (unique per client).
        seq: u64,
        /// What the operation does.
        kind: OpKind,
        /// Microseconds since the deployment's audit epoch.
        at_micros: u64,
    },
    /// An operation completed.
    Completed {
        /// The invoking client.
        client: ClientId,
        /// The sequence number of the matching [`AuditRecord::Invoked`].
        seq: u64,
        /// Its outcome.
        result: OpResult,
        /// Microseconds since the deployment's audit epoch.
        at_micros: u64,
    },
    /// A client observed the cluster's acknowledged GC floor advancing (the
    /// `pruned` field of a delta fast-read reply). Every client has
    /// completed an operation at or above `floor`, which is what licenses
    /// the auditor to truncate settled history below it.
    FloorAdvance {
        /// The announced acknowledged floor.
        floor: TaggedValue,
    },
}

impl AuditRecord {
    /// The client the record belongs to, if it is an operation record.
    pub fn client(&self) -> Option<ClientId> {
        match self {
            AuditRecord::Invoked { client, .. } | AuditRecord::Completed { client, .. } => {
                Some(*client)
            }
            AuditRecord::FloorAdvance { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::{Tag, Value, WriterId};

    #[test]
    fn accessors() {
        let tv = TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(3));
        let inv = AuditRecord::Invoked {
            client: ClientId::reader(0),
            seq: 0,
            kind: OpKind::Read,
            at_micros: 10,
        };
        assert_eq!(inv.client(), Some(ClientId::reader(0)));
        assert_eq!(AuditRecord::FloorAdvance { floor: tv }.client(), None);
    }
}
