//! Deterministic register → shard → server-group routing for the keyspace.
//!
//! A keyspace serves many named registers; each register hashes onto one of
//! `G` shards, and each shard is served by a *group* of `g` servers chosen
//! by rendezvous (highest-random-weight) hashing over the full cluster.
//! Groups of different shards may overlap — a server typically serves many
//! shards — but each register's emulation runs entirely inside its own
//! group, so the paper's per-register guarantees carry over with `g` in
//! place of `S`.
//!
//! Everything here is a pure function of `(servers, group_size, shards)` and
//! the hashed id. There is no per-process seed (in particular no
//! `std::collections::hash_map::RandomState`, which randomizes per process):
//! two processes — or one process before and after a restart — always route
//! a register to the same shard and the same group. The property tests pin
//! this with golden values.

use mwr_types::{KeyspaceConfig, RegisterId, ServerId};

/// Widest member set a router can represent: server ids live in a `u128`
/// bitset, matching the fast-read machinery's 128-slot reply masks
/// ([`crate::MAX_SLOTS`]).
pub const MAX_MEMBERS: usize = 128;

/// The 64-bit finalizer of `splitmix64` (Steele, Lea & Flood's SplittableRandom;
/// same constants as the vendored `SmallRng`): a cheap, well-avalanched hash
/// from consecutive small integers to uniformly scattered words.
fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Domain-separation salts so the shard hash and the rendezvous weights are
/// independent hash functions of their ids.
const SHARD_SALT: u64 = 0x6b65_7973_7061_6365; // "keyspace"
const GROUP_SALT: u64 = 0x7265_6e64_657a_766f; // "rendezvo"

/// Deterministic rendezvous/hash router: `RegisterId → shard → Vec<ServerId>`.
///
/// # Examples
///
/// ```
/// use mwr_core::Router;
/// use mwr_types::RegisterId;
///
/// let router = Router::new(11, 5, 16);
/// let k = RegisterId::new(42);
/// let group = router.group_of(k);
/// assert_eq!(group.len(), 5);
/// // Pure function: a fresh router (another process, a restart) agrees.
/// assert_eq!(Router::new(11, 5, 16).group_of(k), group);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Router {
    /// Bitset of member server ids (bit `i` ⇔ server `i` is in the set).
    /// Rendezvous weights depend only on `(shard, server-id)`, so the router
    /// over the contiguous prefix `{0..S}` ranks exactly as the pre-bitset
    /// router did — the golden pins below hold unchanged — while
    /// reconfiguration can route over any subset of ids.
    members: u128,
    group_size: u32,
    shards: u32,
}

impl Router {
    /// Creates a router for the contiguous server set `{0 .. servers}`,
    /// groups of `group_size`, and `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero or exceeds `servers`, or if `shards`
    /// is zero — [`KeyspaceConfig`] validation rejects all three earlier.
    pub fn new(servers: u32, group_size: u32, shards: u32) -> Self {
        assert!(servers as usize <= MAX_MEMBERS, "server ids limited to the bitmask width");
        let members = if servers as usize == MAX_MEMBERS {
            u128::MAX
        } else {
            (1u128 << servers) - 1
        };
        Router::with_members(members, group_size, shards)
    }

    /// Creates a router over an arbitrary member set — the reconfiguration
    /// path, where removals leave holes in the id space (retired ids are
    /// never reused).
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero or exceeds the member count, or if
    /// `shards` is zero.
    pub fn with_members(members: u128, group_size: u32, shards: u32) -> Self {
        let count = members.count_ones();
        assert!(group_size > 0 && group_size <= count, "group must fit the member set");
        assert!(shards > 0, "need at least one shard");
        Router { members, group_size, shards }
    }

    /// Creates the router a [`KeyspaceConfig`] describes.
    pub fn for_keyspace(config: &KeyspaceConfig) -> Self {
        Router::new(
            config.servers() as u32,
            config.group_size() as u32,
            config.shards() as u32,
        )
    }

    /// Number of shards.
    pub const fn shards(&self) -> u32 {
        self.shards
    }

    /// Servers per shard group.
    pub const fn group_size(&self) -> u32 {
        self.group_size
    }

    /// Number of member servers.
    pub const fn servers(&self) -> u32 {
        self.members.count_ones()
    }

    /// The member set as a bitset (bit `i` ⇔ server `i` is a member).
    pub const fn members(&self) -> u128 {
        self.members
    }

    /// Iterates over the member server ids, ascending.
    pub fn member_ids(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..MAX_MEMBERS as u32).filter(|s| self.members & (1u128 << s) != 0).map(ServerId::new)
    }

    /// The shard `register` lives on.
    ///
    /// A multiply-shift range reduction (`(h · G) >> 64`) instead of
    /// `h % G`: for a 64-bit uniform hash the bias of either is negligible,
    /// but the multiply avoids the division and keeps the discipline of the
    /// vendored RNG's bias-free `gen_range`.
    pub fn shard_of(&self, register: RegisterId) -> u32 {
        let h = mix64(SHARD_SALT ^ u64::from(register.index()));
        ((u128::from(h) * u128::from(self.shards)) >> 64) as u32
    }

    /// The rendezvous weight of `server` for `shard`: each (shard, server)
    /// pair gets an independent uniform word, and the group is the
    /// `group_size` servers with the largest weights.
    fn weight(&self, shard: u32, server: u32) -> u64 {
        mix64(GROUP_SALT ^ (u64::from(shard) << 32) ^ u64::from(server))
    }

    /// The server group serving `shard`, sorted by server id.
    ///
    /// Highest-random-weight selection: ties are impossible in practice
    /// (64-bit weights) but broken by server id for bit-level determinism.
    pub fn group(&self, shard: u32) -> Vec<ServerId> {
        let mut ranked: Vec<(u64, u32)> = self
            .member_ids()
            .map(|s| (self.weight(shard, s.index()), s.index()))
            .collect();
        ranked.sort_unstable_by(|a, b| b.cmp(a));
        let mut group: Vec<ServerId> = ranked
            .into_iter()
            .take(self.group_size as usize)
            .map(|(_, s)| ServerId::new(s))
            .collect();
        group.sort_unstable();
        group
    }

    /// The server group serving `register` — [`Router::group`] of
    /// [`Router::shard_of`].
    pub fn group_of(&self, register: RegisterId) -> Vec<ServerId> {
        self.group(self.shard_of(register))
    }

    /// Every shard whose group contains `server` — the shards a rejoining
    /// server must fetch before serving traffic again.
    pub fn shards_on(&self, server: ServerId) -> Vec<u32> {
        (0..self.shards)
            .filter(|&shard| self.group(shard).contains(&server))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_have_the_requested_size_and_are_sorted() {
        let router = Router::new(11, 5, 16);
        for shard in 0..16 {
            let group = router.group(shard);
            assert_eq!(group.len(), 5);
            assert!(group.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            assert!(group.iter().all(|s| s.index() < 11));
        }
    }

    #[test]
    fn full_size_group_is_the_whole_cluster() {
        let router = Router::new(7, 7, 4);
        let all: Vec<ServerId> = (0..7).map(ServerId::new).collect();
        for shard in 0..4 {
            assert_eq!(router.group(shard), all);
        }
    }

    #[test]
    fn shards_on_inverts_group_membership() {
        let router = Router::new(11, 5, 16);
        for s in 0..11 {
            let server = ServerId::new(s);
            let shards = router.shards_on(server);
            for shard in 0..16 {
                assert_eq!(shards.contains(&shard), router.group(shard).contains(&server));
            }
        }
    }

    #[test]
    fn every_shard_is_reachable_at_scale() {
        // With many registers every shard should see traffic; an unused
        // shard would silently halve effective parallelism.
        let router = Router::new(11, 5, 16);
        let mut hit = [false; 16];
        for k in 0..4096 {
            hit[router.shard_of(RegisterId::new(k)) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "all 16 shards hit by 4096 keys");
    }

    /// Golden values: the routing function is part of the wire contract —
    /// clients and servers in different processes (or across restarts) must
    /// agree on it byte for byte, so any change here is a breaking change.
    #[test]
    fn routing_is_pinned_cross_process() {
        let router = Router::new(11, 5, 16);
        let shards: Vec<u32> = (0..8).map(|k| router.shard_of(RegisterId::new(k))).collect();
        assert_eq!(shards, golden::SHARDS_11_5_16);
        let group: Vec<u32> = router.group(0).iter().map(|s| s.index()).collect();
        assert_eq!(group, golden::GROUP0_11_5_16);
    }

    #[test]
    fn member_subsets_preserve_prefix_routing_and_survive_holes() {
        // The contiguous-prefix bitset is the legacy router, bit for bit.
        let legacy = Router::new(11, 5, 16);
        let prefix = Router::with_members((1u128 << 11) - 1, 5, 16);
        assert_eq!(legacy, prefix);
        assert_eq!(prefix.servers(), 11);
        assert_eq!(prefix.member_ids().count(), 11);

        // Removing ids 0 and 3 and adding 11, 12 (a reconfiguration's shape):
        // weights depend only on (shard, id), so surviving members keep
        // their relative rank and groups change minimally.
        let mask = ((1u128 << 13) - 1) & !(1u128 << 0) & !(1u128 << 3);
        let router = Router::with_members(mask, 5, 16);
        assert_eq!(router.servers(), 11);
        for shard in 0..16 {
            let group = router.group(shard);
            assert_eq!(group.len(), 5);
            assert!(group.iter().all(|s| mask & (1u128 << s.index()) != 0));
            // Survivors ranked into the legacy group stay in the new group.
            for s in legacy.group(shard) {
                if mask & (1u128 << s.index()) != 0 && legacy.shards_on(s).contains(&shard) {
                    // A survivor can only be displaced by a higher-weight
                    // *new* member, never by another survivor.
                    if !group.contains(&s) {
                        let displacers: Vec<_> = group
                            .iter()
                            .filter(|g| g.index() >= 11)
                            .collect();
                        assert!(!displacers.is_empty(), "survivor displaced by a survivor");
                    }
                }
            }
        }
    }

    mod golden {
        pub const SHARDS_11_5_16: [u32; 8] = [12, 12, 13, 10, 0, 11, 11, 6];
        pub const GROUP0_11_5_16: [u32; 5] = [0, 5, 7, 8, 10];
    }
}
