//! The register server automaton — Algorithm 2 of the paper, extended to
//! serve every protocol variant in the design space, plus the bounded-state
//! machinery (delta snapshots and acknowledged-floor GC) that makes the
//! fast read O(new information) instead of O(history).
//!
//! The server keeps a *value store* (`valuevector` in the paper): every
//! tagged value it has ever received, each with an `updated` set recording
//! the clients registered on it. Request types:
//!
//! - **Query** (pure): reply with the current maximum value `vali`. Used by
//!   the first round of slow writes and slow reads.
//! - **Update** (mutating): `update(val, c)` per Algorithm 2 — insert or
//!   merge the value, track the maximum, register the sender. Used by the
//!   second round of writes and by slow-read write-backs. Carries the
//!   sender's completed-operation floor for GC.
//! - **ReadFast** (mutating + query): apply `update(val, rj)` for every
//!   value in the reader's `valQueue`, register the reader on the current
//!   maximum value, then reply with the full store. This is the fast-read
//!   round of Algorithm 1/2; registering the reader before replying is what
//!   the admissibility degrees count (Lemma 8: *"every server which replies
//!   to r2 … adds r2 to its updated set before replying"*).
//! - **ReadFastDelta** (mutating + query): the bounded-state fast read.
//!   Semantically identical to **ReadFast** — the reader ends up registered
//!   on exactly its `valQueue` and receives (logically) the full store —
//!   but only *new information* crosses the wire in either direction.
//!
//! # The delta protocol
//!
//! Every registration the server records — each `(value, client)` pair —
//! bumps a monotone per-server *version* counter. A reader remembers, per
//! server, the last version it merged (`acked`); the server's reply covers
//! exactly the registrations in `(acked, now]`. Because links are FIFO and
//! clients run one operation at a time, the deltas a reader merges are
//! contiguous, so its cached copy of the server's store is always exact:
//! the reconstruction equals the full-info [`Snapshot`] byte-for-byte, and
//! `admissible(·)` selection is unchanged.
//!
//! Two details keep the *registration* behavior identical to full-info:
//!
//! 1. The reader sends only `valQueue` entries the server does not already
//!    know it has (`val_queue ∖ cache`), so the server applies
//!    `update(val, rj)` just for those; and
//! 2. for the rest of the `valQueue` — values the reader learned from
//!    deltas up to `acked` — the server *re-registers* the reader itself
//!    ([`ServerState::catch_up_registrations`]): any value first added at
//!    version ≤ `acked` is provably in the reader's `valQueue` (the reader
//!    merged the delta that introduced it), exactly the set full-info
//!    re-sends would have registered.
//!
//! # Acknowledged-floor GC — correctness argument
//!
//! Clients piggyback their *completed-operation floor* — the largest tag
//! they have returned or written — on every `Update` and `ReadFastDelta`.
//! Pruning is **membership-aware**: once every client *this server has
//! heard any message from* has reported a floor, the server prunes every
//! stored value strictly below the minimum reported floor (keeping `vali`
//! unconditionally), and refuses to re-insert values below that line (late
//! duplicates, stale write-backs). Membership is what keeps a client that
//! crashes before its first message — or a handle that is configured but
//! never used — from wedging GC forever: clients the server has never
//! heard from simply do not participate in the minimum. A *contacted*
//! client that never reports (e.g. a full-info reader, whose `ReadFast`
//! carries no floor) still holds pruning off — the conservative direction
//! — unless the [`ServerState::with_gc_quorum`] escape hatch is configured
//! for such permanently-silent members.
//!
//! Why this is safe: let `f = min` reported floor. Every reader has
//! completed an operation returning (or writing back) a value `≥ f`, and a
//! completed read's return value enters the reader's `valQueue`. A fast
//! read sends its whole `valQueue` (logically) to every server, and every
//! replying server registers the reader on each entry before replying — so
//! each `valQueue` entry is contained in all `S − t` replies with the
//! reader as a common witness, i.e. admissible with degree 1. The selection
//! loop returns the *largest* admissible value, hence always a value
//! `≥ max(valQueue) ≥` the reader's own floor `≥ f`. The fast read's
//! fallback therefore never needs a pruned entry, and no future read of
//! any client can return a value below `f`: entries below `f` are dead.
//! (Readers prune their own `valQueue` and per-server caches below the
//! server-announced floor for the same reason — see
//! [`DeltaSnapshot::pruned`](crate::msg::DeltaSnapshot).)
//!
//! The one case the argument above does not cover is a client whose
//! *first* contact with a server arrives after pruning has engaged: its
//! whole `valQueue` (just the initial value) is below `f`, so the plain
//! `update` path would drop it dead on arrival and the degree-1 guarantee
//! would evaporate. Two mechanisms close the gap. Full-info `ReadFast`
//! re-registration is exempt from the dead-on-arrival rule (the reader
//! cannot learn the floor from a `ReadFastAck`, and its `valQueue` is
//! re-sent wholesale every read anyway, so the exemption does not unbound
//! memory). Delta readers *do* learn the floor (`DeltaSnapshot::pruned`),
//! detect `pruned > own floor` after their first round, and secure the
//! snapshot maximum with an ABD-style write-back round instead of trusting
//! `admissible(·)` over registrations the floor may have eaten; from then
//! on they report floors like everyone else and the standard argument
//! applies. The paper's full-info model is deliberately append-only ("the
//! server just appends everything … never deleting any information",
//! §4.1); this module is the practical counterpoint the analysis
//! abstracts away.

use std::collections::{BTreeMap, BTreeSet};

use mwr_sim::{Automaton, Context};
use mwr_types::{ClientId, ProcessId, TaggedValue};

use crate::events::ClientEvent;
use crate::msg::{DeltaSnapshot, Msg, Snapshot, ValueRecord};

/// One stored value's bookkeeping: which clients are registered on it and
/// when (in registration-version terms) each one arrived.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Entry {
    /// Registered clients, sorted, each with the version its registration
    /// got (a flat Vec: populations are tens of clients, and this is the
    /// hottest per-registration probe on the server).
    updated: Vec<(ClientId, u64)>,
    /// The version at which this value first entered the store.
    first_added: u64,
}

/// Acknowledged-floor GC bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GcState {
    /// The cluster's full client population (R + W), kept for diagnostics
    /// and as the upper bound a floor quorum is validated against.
    population: usize,
    /// Optional floor-report quorum: pruning additionally engages once this
    /// many clients have reported, even if other *contacted* clients never
    /// report — the documented escape hatch for permanently-silent members
    /// (see the module docs).
    quorum: Option<usize>,
    /// Every client this server has heard any message from. Pruning is
    /// membership-aware: it engages once `floors` covers `seen`.
    seen: BTreeSet<ClientId>,
    /// Latest floor reported per client.
    floors: BTreeMap<ClientId, TaggedValue>,
    /// Everything strictly below this has been pruned.
    pruned_floor: TaggedValue,
}

/// The state of a register server, independent of any transport.
///
/// [`RegisterServer`] wraps this for the simulator; `mwr-runtime` drives the
/// same logic over threads and sockets.
///
/// # Examples
///
/// ```
/// use mwr_core::ServerState;
/// use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};
///
/// let mut s = ServerState::new();
/// let v1 = TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(10));
/// s.update(v1, ClientId::writer(0));
/// assert_eq!(s.latest(), v1);
/// let snap = s.snapshot();
/// assert!(snap.contains(v1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerState {
    latest: TaggedValue,
    store: BTreeMap<TaggedValue, Entry>,
    /// Monotone registration counter; every new `(value, client)` pair gets
    /// the next version.
    version: u64,
    /// Registration log ordered by version, for O(new) delta assembly.
    reg_log: Vec<(u64, TaggedValue, ClientId)>,
    /// Value-addition log ordered by version, for reader catch-up.
    additions: Vec<(u64, TaggedValue)>,
    /// Per-reader catch-up high-water mark: the largest acknowledged
    /// version whose values this reader has already been re-registered on.
    registered_up_to: BTreeMap<ClientId, u64>,
    /// `Some` iff acknowledged-floor GC is enabled.
    gc: Option<GcState>,
}

impl ServerState {
    /// A fresh server holding only the initial value `((0, ⊥), 0)` with an
    /// empty `updated` set (Algorithm 2, initialization). GC is off.
    pub fn new() -> Self {
        let mut store = BTreeMap::new();
        store.insert(TaggedValue::initial(), Entry::default());
        ServerState {
            latest: TaggedValue::initial(),
            store,
            version: 0,
            reg_log: Vec::new(),
            additions: Vec::new(),
            registered_up_to: BTreeMap::new(),
            gc: None,
        }
    }

    /// A fresh server with acknowledged-floor GC enabled for a cluster of
    /// `population` clients (`R + W`). Pruning is membership-aware: it
    /// starts once every client *this server has heard from* has reported a
    /// completed-operation floor, so a client that crashes before sending
    /// its first message cannot wedge GC (see the module docs).
    pub fn with_gc(population: usize) -> Self {
        let mut state = ServerState::new();
        state.gc = Some(GcState {
            population,
            quorum: None,
            seen: BTreeSet::new(),
            floors: BTreeMap::new(),
            pruned_floor: TaggedValue::initial(),
        });
        state
    }

    /// Like [`with_gc`](Self::with_gc), with a floor-report quorum: pruning
    /// additionally engages once `quorum` clients have reported, even if
    /// other *contacted* clients never report a floor.
    ///
    /// This is the escape hatch for permanently-silent members — clients
    /// that keep sending messages but never complete operations, or
    /// full-info readers (whose `ReadFast` carries no floor). The tradeoff:
    /// a client excluded from the quorum's minimum may find its entire
    /// `valQueue` below the pruned floor; delta readers detect this
    /// (`pruned > floor`) and pay a write-back round, but full-info readers
    /// never learn the floor, so the quorum should only be used with
    /// delta-wire clients. `quorum` is clamped to at least 1.
    pub fn with_gc_quorum(population: usize, quorum: usize) -> Self {
        let mut state = ServerState::with_gc(population);
        if let Some(gc) = &mut state.gc {
            gc.quorum = Some(quorum.clamp(1, population.max(1)));
        }
        state
    }

    /// The current maximum value `vali`.
    pub fn latest(&self) -> TaggedValue {
        self.latest
    }

    /// The server's GC floor: everything strictly below it has been pruned.
    /// Stays at the initial value while GC is off or not yet engaged.
    pub fn pruned_floor(&self) -> TaggedValue {
        self.gc.as_ref().map_or_else(TaggedValue::initial, |g| g.pruned_floor)
    }

    /// The current registration version (grows with every new
    /// `(value, client)` registration).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Algorithm 2's `update(val, c)`: insert `val` if new, advance the
    /// maximum if it is larger, and register `c` on it.
    ///
    /// The paper's pseudocode resets `updated` to `{c}` when a strictly
    /// larger value arrives and merges `c` otherwise; values below the
    /// current maximum that were never seen before are still stored (the
    /// store is append-only in the full-info spirit). With GC engaged,
    /// values strictly below the pruned floor that would not advance the
    /// maximum are ignored — they are below every client's completed floor,
    /// so no future read can return them (see the module docs).
    pub fn update(&mut self, val: TaggedValue, c: ClientId) {
        self.update_impl(val, c, false);
    }

    /// `update` with the dead-on-arrival rule suspended, for full-info
    /// `ReadFast` re-registration: the full-info wire carries no floor
    /// announcement, so a reader whose whole `valQueue` fell below the
    /// pruned floor (its first contact arrived after membership-aware
    /// pruning engaged) cannot detect it and fall back; re-inserting its
    /// `valQueue` restores the degree-1 admissibility guarantee the module
    /// docs rely on. Bounded because a full-info `valQueue` is what the
    /// reader re-sends every read anyway.
    fn update_resurrecting(&mut self, val: TaggedValue, c: ClientId) {
        self.update_impl(val, c, true);
    }

    fn update_impl(&mut self, val: TaggedValue, c: ClientId, force: bool) {
        if !force
            && val < self.pruned_floor()
            && val <= self.latest
            && !self.store.contains_key(&val)
        {
            return; // dead on arrival: a late duplicate below the GC floor
        }
        let version = &mut self.version;
        let entry = match self.store.entry(val) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => {
                *version += 1;
                self.additions.push((*version, val));
                e.insert(Entry { updated: Vec::new(), first_added: *version })
            }
        };
        if let Err(i) = entry.updated.binary_search_by_key(&c, |r| r.0) {
            *version += 1;
            entry.updated.insert(i, (c, *version));
            self.reg_log.push((*version, val, c));
        }
        if val > self.latest {
            self.latest = val;
        }
    }

    /// Registers `c` on the current maximum value without changing it —
    /// the fast-read bookkeeping applied before a `ReadFastAck`.
    pub fn register_on_latest(&mut self, c: ClientId) {
        let latest = self.latest;
        self.update(latest, c);
    }

    /// Re-registers `reader` on every stored value it provably knows —
    /// those first added at a version `≤ acked` (the reader merged the
    /// delta that introduced them, so they are in its `valQueue`). This is
    /// the delta protocol's stand-in for full-info's `valQueue` re-send;
    /// amortized O(new values) via the per-reader high-water mark.
    pub fn catch_up_registrations(&mut self, reader: ClientId, acked: u64) {
        // The initial value is in every reader's `valQueue` from birth and
        // never enters the addition log; full-info re-sends it every read.
        if self.store.contains_key(&TaggedValue::initial()) {
            self.update(TaggedValue::initial(), reader);
        }
        let from = self.registered_up_to.get(&reader).copied().unwrap_or(0);
        if acked <= from {
            return; // late duplicate request: nothing new to catch up on
        }
        let start = self.additions.partition_point(|&(v, _)| v <= from);
        // `update` on an already-stored value never touches `additions`
        // (and pruned values are skipped), so the log can be lent out for
        // the walk instead of collected into a fresh Vec per request.
        let additions = std::mem::take(&mut self.additions);
        for &(_, val) in
            additions[start..].iter().take_while(|&&(v, _)| v <= acked)
        {
            if self.store.contains_key(&val) {
                self.update(val, reader);
            }
        }
        debug_assert!(self.additions.is_empty());
        self.additions = additions;
        self.registered_up_to.insert(reader, acked);
    }

    /// Records that `client` has contacted this server (any message).
    /// Membership-aware pruning engages once every *contacted* client has
    /// reported a floor, so contact without a floor report holds GC off —
    /// the conservative direction. No-op when GC is off.
    pub fn note_contact(&mut self, client: ClientId) {
        if let Some(gc) = &mut self.gc {
            gc.seen.insert(client);
        }
    }

    /// Records `client`'s completed-operation floor and prunes once the
    /// floors cover the contacted membership (or the configured floor
    /// quorum, if any, is reached). No-op when GC is off.
    pub fn record_floor(&mut self, client: ClientId, floor: TaggedValue) {
        let Some(gc) = &mut self.gc else { return };
        gc.seen.insert(client);
        let known = gc.floors.entry(client).or_insert(floor);
        *known = (*known).max(floor);
        // Floors is a subset of seen (the insert above), so equal sizes
        // means every contacted client has reported.
        let engaged = gc.floors.len() == gc.seen.len()
            || gc.quorum.is_some_and(|q| gc.floors.len() >= q);
        if !engaged {
            return;
        }
        let min = gc.floors.values().copied().min().unwrap_or_default();
        if min > gc.pruned_floor {
            gc.pruned_floor = min;
            self.prune_below(min);
        }
    }

    /// The full store as reported to full-info fast reads.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            entries: self
                .store
                .iter()
                .map(|(value, entry)| ValueRecord {
                    value: *value,
                    updated: entry.updated.iter().map(|r| r.0).collect(),
                })
                .collect(),
        }
    }

    /// The store changes above registration version `from`, as reported to
    /// delta fast reads. O(changes), not O(store): one flat collect and
    /// sort over the registration window, grouped into records without any
    /// per-value tree or allocation churn.
    pub fn delta_since(&self, from: u64) -> DeltaSnapshot {
        let start = self.reg_log.partition_point(|&(v, _, _)| v <= from);
        let mut regs: Vec<(TaggedValue, ClientId)> = self.reg_log[start..]
            .iter()
            .map(|&(_, val, client)| (val, client))
            .collect();
        regs.sort_unstable();
        let mut entries: Vec<ValueRecord> = Vec::new();
        let mut skip: Option<TaggedValue> = None;
        for (val, client) in regs {
            if skip == Some(val) {
                continue; // GC already dropped this value from the store
            }
            match entries.last_mut() {
                Some(rec) if rec.value == val => rec.updated.push(client),
                _ if self.store.contains_key(&val) => {
                    entries.push(ValueRecord { value: val, updated: vec![client] })
                }
                _ => skip = Some(val),
            }
        }
        DeltaSnapshot {
            from,
            version: self.version,
            latest: self.latest,
            pruned: self.pruned_floor(),
            entries,
        }
    }

    /// Number of distinct values stored.
    pub fn stored_values(&self) -> usize {
        self.store.len()
    }

    /// The `updated` set registered for `val`, if stored.
    pub fn updated_set(&self, val: TaggedValue) -> Option<Vec<ClientId>> {
        self.store.get(&val).map(|e| e.updated.iter().map(|r| r.0).collect())
    }

    /// Garbage-collects values strictly below `floor`, keeping the current
    /// maximum unconditionally. Returns how many entries were dropped.
    ///
    /// Called by [`record_floor`](Self::record_floor) once every client has
    /// acknowledged a completed operation `≥ floor`; see the module docs
    /// for why the fast read's fallback never needs the pruned entries.
    pub fn prune_below(&mut self, floor: TaggedValue) -> usize {
        let latest = self.latest;
        let before = self.store.len();
        self.store.retain(|val, _| *val >= floor || *val == latest);
        let store = &self.store;
        self.reg_log.retain(|(_, val, _)| store.contains_key(val));
        self.additions.retain(|(_, val)| store.contains_key(val));
        before - self.store.len()
    }
}

impl Default for ServerState {
    fn default() -> Self {
        ServerState::new()
    }
}

/// The server automaton for the simulator: [`ServerState`] plus the message
/// handling of Algorithm 2.
#[derive(Debug, Clone, Default)]
pub struct RegisterServer {
    state: ServerState,
}

impl RegisterServer {
    /// Creates a fresh server (GC off — faithful to the paper's full-info
    /// model).
    pub fn new() -> Self {
        RegisterServer { state: ServerState::new() }
    }

    /// Creates a server with acknowledged-floor GC enabled for a cluster of
    /// `population` clients (`R + W`). Pruning is membership-aware — see
    /// [`ServerState::with_gc`].
    pub fn with_gc(population: usize) -> Self {
        RegisterServer { state: ServerState::with_gc(population) }
    }

    /// Creates a GC-enabled server with a floor-report quorum escape hatch
    /// — see [`ServerState::with_gc_quorum`].
    pub fn with_gc_quorum(population: usize, quorum: usize) -> Self {
        RegisterServer { state: ServerState::with_gc_quorum(population, quorum) }
    }

    /// Read access to the server's state (useful in tests).
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Computes the reply for one request, mutating state as required.
    ///
    /// Returns `None` for messages a server never receives (acks, invokes);
    /// those indicate a routing bug and are ignored defensively here — the
    /// simulator's topology enforcement catches genuine mistakes loudly.
    pub fn handle(&mut self, from: ProcessId, msg: &Msg) -> Option<Msg> {
        let client = from.as_client()?;
        self.state.note_contact(client);
        match msg {
            Msg::Query { handle } => Some(Msg::QueryAck {
                handle: *handle,
                latest: self.state.latest(),
            }),
            Msg::Update { handle, value, floor } => {
                self.state.record_floor(client, *floor);
                self.state.update(*value, client);
                Some(Msg::UpdateAck { handle: *handle })
            }
            Msg::ReadFast { handle, val_queue } => {
                for val in val_queue {
                    self.state.update_resurrecting(*val, client);
                }
                self.state.register_on_latest(client);
                Some(Msg::ReadFastAck {
                    handle: *handle,
                    snapshot: self.state.snapshot(),
                })
            }
            Msg::ReadFastDelta { handle, acked, floor, new_values } => {
                self.state.record_floor(client, *floor);
                for val in new_values {
                    self.state.update(*val, client);
                }
                self.state.catch_up_registrations(client, *acked);
                self.state.register_on_latest(client);
                Some(Msg::ReadFastDeltaAck {
                    handle: *handle,
                    delta: self.state.delta_since(*acked),
                })
            }
            _ => None,
        }
    }
}

impl Automaton<Msg, ClientEvent> for RegisterServer {
    fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, ClientEvent>) {
        if let Some(reply) = self.handle(from, &msg) {
            ctx.send(from, reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{OpHandle, OpId};
    use mwr_types::{Tag, Value, WriterId};
    use std::collections::BTreeSet;

    fn tv(ts: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts, WriterId::new(w)), Value::new(v))
    }

    fn rhandle(seq: u64) -> OpHandle {
        OpHandle { op: OpId { client: ClientId::reader(0), seq }, phase: 1 }
    }

    #[test]
    fn initial_state_stores_bottom() {
        let s = ServerState::new();
        assert!(s.latest().tag().is_initial());
        assert_eq!(s.stored_values(), 1);
        assert_eq!(s.updated_set(TaggedValue::initial()), Some(vec![]));
        assert_eq!(s.version(), 0);
    }

    #[test]
    fn update_advances_latest_monotonically() {
        let mut s = ServerState::new();
        s.update(tv(2, 0, 20), ClientId::writer(0));
        assert_eq!(s.latest(), tv(2, 0, 20));
        // A smaller value arrives late: stored, but latest unchanged.
        s.update(tv(1, 1, 10), ClientId::writer(1));
        assert_eq!(s.latest(), tv(2, 0, 20));
        assert_eq!(s.stored_values(), 3);
    }

    #[test]
    fn update_merges_updated_sets() {
        let mut s = ServerState::new();
        let v = tv(1, 0, 10);
        s.update(v, ClientId::writer(0));
        s.update(v, ClientId::reader(1));
        assert_eq!(
            s.updated_set(v),
            Some(vec![ClientId::reader(1), ClientId::writer(0)])
        );
    }

    #[test]
    fn register_on_latest_targets_current_maximum() {
        let mut s = ServerState::new();
        s.update(tv(3, 0, 30), ClientId::writer(0));
        s.register_on_latest(ClientId::reader(0));
        assert!(s
            .updated_set(tv(3, 0, 30))
            .unwrap()
            .contains(&ClientId::reader(0)));
        // The initial value's set is untouched.
        assert_eq!(s.updated_set(TaggedValue::initial()), Some(vec![]));
    }

    #[test]
    fn query_does_not_mutate() {
        let mut srv = RegisterServer::new();
        let before = srv.state().clone();
        let handle = rhandle(0);
        let reply = srv.handle(ProcessId::reader(0), &Msg::Query { handle });
        assert_eq!(
            reply,
            Some(Msg::QueryAck { handle, latest: TaggedValue::initial() })
        );
        assert_eq!(srv.state(), &before);
    }

    #[test]
    fn read_fast_applies_val_queue_then_registers_then_snapshots() {
        let mut srv = RegisterServer::new();
        let w = ProcessId::writer(0);
        let r = ProcessId::reader(0);
        let handle = OpHandle { op: OpId { client: ClientId::writer(0), seq: 0 }, phase: 2 };
        srv.handle(
            w,
            &Msg::Update { handle, value: tv(1, 0, 11), floor: TaggedValue::initial() },
        );

        let reply = srv
            .handle(
                r,
                &Msg::ReadFast { handle: rhandle(0), val_queue: vec![TaggedValue::initial()] },
            )
            .unwrap();
        let Msg::ReadFastAck { snapshot, .. } = reply else {
            panic!("expected ReadFastAck");
        };
        // The reader is registered on the current maximum before the reply
        // (the property Lemma 8 relies on).
        assert!(snapshot
            .updated_for(tv(1, 0, 11))
            .unwrap()
            .contains(&ClientId::reader(0)));
        // The val_queue registration landed on the initial value too.
        assert!(snapshot
            .updated_for(TaggedValue::initial())
            .unwrap()
            .contains(&ClientId::reader(0)));
    }

    /// The delta protocol and the full-info protocol leave the server in
    /// identical registration state, and the delta stream reconstructs the
    /// full snapshot exactly.
    #[test]
    fn delta_stream_reconstructs_the_full_snapshot() {
        let mut full = RegisterServer::new();
        let mut delta = RegisterServer::new();
        let w = ProcessId::writer(0);
        let r = ProcessId::reader(0);
        let wfloor = TaggedValue::initial();

        // Reconstructed view: seeded like the store's initial state.
        let mut cache: BTreeMap<TaggedValue, BTreeSet<ClientId>> = BTreeMap::new();
        cache.insert(TaggedValue::initial(), BTreeSet::new());
        let mut acked = 0u64;

        for round in 0..5u64 {
            let value = tv(round + 1, 0, round + 1);
            let wh = OpHandle { op: OpId { client: ClientId::writer(0), seq: round }, phase: 2 };
            full.handle(w, &Msg::Update { handle: wh, value, floor: wfloor });
            delta.handle(w, &Msg::Update { handle: wh, value, floor: wfloor });

            // Full-info read re-sends everything it knows (= the cache).
            let val_queue: Vec<TaggedValue> = cache.keys().copied().collect();
            let f = full
                .handle(r, &Msg::ReadFast { handle: rhandle(round), val_queue })
                .unwrap();
            // Delta read sends nothing new (the cache tracks the server).
            let d = delta
                .handle(
                    r,
                    &Msg::ReadFastDelta {
                        handle: rhandle(round),
                        acked,
                        floor: TaggedValue::initial(),
                        new_values: vec![],
                    },
                )
                .unwrap();
            let Msg::ReadFastAck { snapshot, .. } = f else { panic!() };
            let Msg::ReadFastDeltaAck { delta: ds, .. } = d else { panic!() };
            assert_eq!(ds.from, acked);
            assert!(ds.version > acked, "reply must cover the new registrations");
            for rec in &ds.entries {
                cache.entry(rec.value).or_default().extend(rec.updated.iter().copied());
            }
            acked = ds.version;
            let reconstructed = Snapshot {
                entries: cache
                    .iter()
                    .map(|(value, updated)| ValueRecord {
                        value: *value,
                        updated: updated.iter().copied().collect(),
                    })
                    .collect(),
            };
            assert_eq!(reconstructed, snapshot, "round {round}: byte-for-byte");
            assert_eq!(ds.latest, value);
        }
        assert_eq!(full.state().snapshot(), delta.state().snapshot());
    }

    /// A late duplicate `ReadFastDelta` (old acked version) is harmless:
    /// registrations are idempotent and the reply simply re-covers the
    /// already-delivered window.
    #[test]
    fn late_duplicate_read_fast_delta_is_idempotent() {
        let mut srv = RegisterServer::new();
        let r = ProcessId::reader(0);
        srv.handle(
            ProcessId::writer(0),
            &Msg::Update {
                handle: OpHandle { op: OpId { client: ClientId::writer(0), seq: 0 }, phase: 2 },
                value: tv(1, 0, 5),
                floor: TaggedValue::initial(),
            },
        );
        let fresh = srv
            .handle(
                r,
                &Msg::ReadFastDelta {
                    handle: rhandle(0),
                    acked: 0,
                    floor: TaggedValue::initial(),
                    new_values: vec![TaggedValue::initial()],
                },
            )
            .unwrap();
        let Msg::ReadFastDeltaAck { delta: first, .. } = fresh else { panic!() };
        let state_after = srv.state().clone();
        // The duplicate re-sends the same request with the old acked floor.
        let dup = srv
            .handle(
                r,
                &Msg::ReadFastDelta {
                    handle: rhandle(0),
                    acked: 0,
                    floor: TaggedValue::initial(),
                    new_values: vec![TaggedValue::initial()],
                },
            )
            .unwrap();
        let Msg::ReadFastDeltaAck { delta: second, .. } = dup else { panic!() };
        assert_eq!(srv.state(), &state_after, "no state change on duplicate");
        assert_eq!(first, second, "same window, same delta");
    }

    #[test]
    fn server_ignores_client_only_messages() {
        let mut srv = RegisterServer::new();
        assert_eq!(srv.handle(ProcessId::reader(0), &Msg::InvokeRead), None);
        let handle = rhandle(0);
        assert_eq!(srv.handle(ProcessId::reader(0), &Msg::UpdateAck { handle }), None);
    }

    #[test]
    fn prune_below_drops_stale_entries_but_keeps_latest() {
        let mut s = ServerState::new();
        for i in 1..=5 {
            s.update(tv(i, 0, i * 10), ClientId::writer(0));
        }
        assert_eq!(s.stored_values(), 6); // initial + 5
        let dropped = s.prune_below(tv(4, 0, 40));
        assert_eq!(dropped, 4); // initial, ts1..ts3
        assert_eq!(s.latest(), tv(5, 0, 50));
        assert!(s.updated_set(tv(4, 0, 40)).is_some());
        assert!(s.updated_set(tv(3, 0, 30)).is_none());
        // The latest survives even a floor above it.
        let dropped = s.prune_below(tv(9, 0, 0));
        assert_eq!(dropped, 1);
        assert!(s.updated_set(s.latest()).is_some());
    }

    /// A contacted client that has not yet reported a floor holds pruning
    /// off; once the floors cover the contacted membership, pruning runs at
    /// the minimum reported floor.
    #[test]
    fn gc_waits_for_every_contacted_client() {
        let mut s = ServerState::with_gc(3);
        for i in 1..=4 {
            s.update(tv(i, 0, i), ClientId::writer(0));
        }
        assert_eq!(s.stored_values(), 5);
        // Reader 1 has contacted (say, a Query) but never reported: nothing
        // may be pruned while a contacted client's floor is unknown.
        s.note_contact(ClientId::reader(1));
        s.record_floor(ClientId::writer(0), tv(4, 0, 4));
        s.record_floor(ClientId::reader(0), tv(3, 0, 3));
        assert_eq!(s.stored_values(), 5, "GC must wait for every contacted client");
        assert_eq!(s.pruned_floor(), TaggedValue::initial());
        s.record_floor(ClientId::reader(1), tv(2, 0, 2));
        // min floor = (2, w1): initial and ts1 go.
        assert_eq!(s.pruned_floor(), tv(2, 0, 2));
        assert_eq!(s.stored_values(), 3);
        assert!(s.updated_set(tv(2, 0, 2)).is_some());
        assert!(s.updated_set(tv(1, 0, 1)).is_none());
    }

    /// Regression (GC floor wedge): a client that crashes before sending
    /// its first message must not wedge pruning — the floor advances and
    /// memory stays bounded on the floors of the clients that actually
    /// exist on the wire.
    #[test]
    fn gc_floor_advances_despite_a_silent_client() {
        // Population 3, but reader 1 crashed before its first op and never
        // contacts the server at all.
        let mut s = ServerState::with_gc(3);
        for i in 1..=64 {
            s.update(tv(i, 0, i), ClientId::writer(0));
            s.record_floor(ClientId::writer(0), tv(i, 0, i));
            s.record_floor(ClientId::reader(0), tv(i, 0, i));
        }
        assert_eq!(s.pruned_floor(), tv(64, 0, 64), "floor advances without the silent client");
        assert_eq!(s.stored_values(), 1, "memory stays bounded: only the latest survives");
    }

    /// The `gc_floor_quorum` escape hatch: a *contacted* client that never
    /// reports a floor (a permanently-silent member) normally holds GC off;
    /// with a quorum configured, pruning engages on the reporters alone.
    #[test]
    fn gc_floor_quorum_overrides_a_contacted_silent_member() {
        let mut wedged = ServerState::with_gc(3);
        let mut quorate = ServerState::with_gc_quorum(3, 2);
        for s in [&mut wedged, &mut quorate] {
            for i in 1..=4 {
                s.update(tv(i, 0, i), ClientId::writer(0));
            }
            // Reader 1 keeps sending messages but never completes an op.
            s.note_contact(ClientId::reader(1));
            s.record_floor(ClientId::writer(0), tv(4, 0, 4));
            s.record_floor(ClientId::reader(0), tv(3, 0, 3));
        }
        assert_eq!(wedged.pruned_floor(), TaggedValue::initial(), "no quorum: conservative");
        assert_eq!(quorate.pruned_floor(), tv(3, 0, 3), "quorum of 2 reporters engages GC");
    }

    /// The full-info fast-read path re-registers a late-joining reader's
    /// `valQueue` even below the GC floor (it cannot learn the floor from a
    /// `ReadFastAck`), restoring the degree-1 admissibility witness.
    #[test]
    fn read_fast_reregisters_below_the_floor_for_late_joiners() {
        let mut srv = RegisterServer::with_gc(2);
        for i in 1..=3u64 {
            srv.handle(
                ProcessId::writer(0),
                &Msg::Update {
                    handle: OpHandle {
                        op: OpId { client: ClientId::writer(0), seq: i },
                        phase: 2,
                    },
                    value: tv(i, 0, i),
                    floor: tv(i, 0, i),
                },
            );
        }
        assert_eq!(srv.state().pruned_floor(), tv(3, 0, 3), "writer-only membership pruned");
        // A reader joins late: its whole valQueue is below the floor.
        let reply = srv
            .handle(
                ProcessId::reader(0),
                &Msg::ReadFast { handle: rhandle(0), val_queue: vec![TaggedValue::initial()] },
            )
            .unwrap();
        let Msg::ReadFastAck { snapshot, .. } = reply else { panic!("expected ReadFastAck") };
        assert!(
            snapshot
                .updated_for(TaggedValue::initial())
                .is_some_and(|u| u.contains(&ClientId::reader(0))),
            "the reader's valQueue entry is resurrected and witnessed"
        );
    }

    /// Floors only ever advance; a stale (smaller) floor report cannot
    /// regress the GC line.
    #[test]
    fn stale_floor_reports_do_not_regress() {
        let mut s = ServerState::with_gc(1);
        for i in 1..=3 {
            s.update(tv(i, 0, i), ClientId::writer(0));
        }
        s.record_floor(ClientId::reader(0), tv(3, 0, 3));
        assert_eq!(s.pruned_floor(), tv(3, 0, 3));
        s.record_floor(ClientId::reader(0), tv(1, 0, 1));
        assert_eq!(s.pruned_floor(), tv(3, 0, 3), "floor is monotone");
    }

    /// Once pruned, a value stays dead: late duplicates below the GC floor
    /// are not re-inserted (they are below every client's completed floor).
    #[test]
    fn pruned_values_cannot_be_resurrected() {
        let mut s = ServerState::with_gc(1);
        for i in 1..=3 {
            s.update(tv(i, 0, i), ClientId::writer(0));
        }
        s.record_floor(ClientId::reader(0), tv(3, 0, 3));
        assert_eq!(s.stored_values(), 1);
        s.update(tv(1, 0, 1), ClientId::writer(1)); // late duplicate
        assert_eq!(s.stored_values(), 1, "below-floor values stay dead");
        // …but a *new maximum* is always accepted.
        s.update(tv(9, 0, 9), ClientId::writer(1));
        assert_eq!(s.latest(), tv(9, 0, 9));
    }

    #[test]
    fn concurrent_tags_from_two_writers_order_by_writer_id() {
        let mut s = ServerState::new();
        s.update(tv(1, 1, 200), ClientId::writer(1));
        s.update(tv(1, 0, 100), ClientId::writer(0));
        // (1, w2) > (1, w1): latest stays with the higher writer id.
        assert_eq!(s.latest(), tv(1, 1, 200));
    }
}
