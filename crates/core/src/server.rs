//! The register server automaton — Algorithm 2 of the paper, extended to
//! serve every protocol variant in the design space, plus the bounded-state
//! machinery (delta snapshots and acknowledged-floor GC) that makes the
//! fast read O(new information) instead of O(history).
//!
//! The server keeps a *value store* (`valuevector` in the paper): every
//! tagged value it has ever received, each with an `updated` set recording
//! the clients registered on it. Request types:
//!
//! - **Query** (pure): reply with the current maximum value `vali`. Used by
//!   the first round of slow writes and slow reads.
//! - **Update** (mutating): `update(val, c)` per Algorithm 2 — insert or
//!   merge the value, track the maximum, register the sender. Used by the
//!   second round of writes and by slow-read write-backs. Carries the
//!   sender's completed-operation floor for GC.
//! - **ReadFast** (mutating + query): apply `update(val, rj)` for every
//!   value in the reader's `valQueue`, register the reader on the current
//!   maximum value, then reply with the full store. This is the fast-read
//!   round of Algorithm 1/2; registering the reader before replying is what
//!   the admissibility degrees count (Lemma 8: *"every server which replies
//!   to r2 … adds r2 to its updated set before replying"*).
//! - **ReadFastDelta** (mutating + query): the bounded-state fast read.
//!   Semantically identical to **ReadFast** — the reader ends up registered
//!   on exactly its `valQueue` and receives (logically) the full store —
//!   but only *new information* crosses the wire in either direction.
//!
//! # The delta protocol
//!
//! Every registration the server records — each `(value, client)` pair —
//! bumps a monotone per-server *version* counter. A reader remembers, per
//! server, the last version it merged (`acked`); the server's reply covers
//! exactly the registrations in `(acked, now]`. Because links are FIFO and
//! clients run one operation at a time, the deltas a reader merges are
//! contiguous, so its cached copy of the server's store is always exact:
//! the reconstruction equals the full-info [`Snapshot`] byte-for-byte, and
//! `admissible(·)` selection is unchanged.
//!
//! Two details keep the *registration* behavior identical to full-info:
//!
//! 1. The reader sends only `valQueue` entries the server does not already
//!    know it has (`val_queue ∖ cache`), so the server applies
//!    `update(val, rj)` just for those; and
//! 2. for the rest of the `valQueue` — values the reader learned from
//!    deltas up to `acked` — the server *re-registers* the reader itself
//!    ([`ServerState::catch_up_registrations`]): any value first added at
//!    version ≤ `acked` is provably in the reader's `valQueue` (the reader
//!    merged the delta that introduced it), exactly the set full-info
//!    re-sends would have registered.
//!
//! # Acknowledged-floor GC — correctness argument
//!
//! Clients piggyback their *completed-operation floor* — the largest tag
//! they have returned or written — on every `Update` and `ReadFastDelta`.
//! Pruning is **membership-aware**: once every client *this server has
//! heard any message from* has reported a floor, the server prunes every
//! stored value strictly below the minimum reported floor (keeping `vali`
//! unconditionally), and refuses to re-insert values below that line (late
//! duplicates, stale write-backs). Membership is what keeps a client that
//! crashes before its first message — or a handle that is configured but
//! never used — from wedging GC forever: clients the server has never
//! heard from simply do not participate in the minimum. A *contacted*
//! client that never reports (e.g. a full-info reader, whose `ReadFast`
//! carries no floor) still holds pruning off — the conservative direction
//! — unless the [`ServerState::with_gc_quorum`] escape hatch is configured
//! for such permanently-silent members.
//!
//! Why this is safe: let `f = min` reported floor. Every reader has
//! completed an operation returning (or writing back) a value `≥ f`, and a
//! completed read's return value enters the reader's `valQueue`. A fast
//! read sends its whole `valQueue` (logically) to every server, and every
//! replying server registers the reader on each entry before replying — so
//! each `valQueue` entry is contained in all `S − t` replies with the
//! reader as a common witness, i.e. admissible with degree 1. The selection
//! loop returns the *largest* admissible value, hence always a value
//! `≥ max(valQueue) ≥` the reader's own floor `≥ f`. The fast read's
//! fallback therefore never needs a pruned entry, and no future read of
//! any client can return a value below `f`: entries below `f` are dead.
//! (Readers prune their own `valQueue` and per-server caches below the
//! server-announced floor for the same reason — see
//! [`DeltaSnapshot::pruned`](crate::msg::DeltaSnapshot).)
//!
//! The one case the argument above does not cover is a client whose
//! *first* contact with a server arrives after pruning has engaged: its
//! whole `valQueue` (just the initial value) is below `f`, so the plain
//! `update` path would drop it dead on arrival and the degree-1 guarantee
//! would evaporate. Two mechanisms close the gap. Full-info `ReadFast`
//! re-registration is exempt from the dead-on-arrival rule (the reader
//! cannot learn the floor from a `ReadFastAck`, and its `valQueue` is
//! re-sent wholesale every read anyway, so the exemption does not unbound
//! memory). Delta readers *do* learn the floor (`DeltaSnapshot::pruned`),
//! detect `pruned > own floor` after their first round, and secure the
//! snapshot maximum with an ABD-style write-back round instead of trusting
//! `admissible(·)` over registrations the floor may have eaten; from then
//! on they report floors like everyone else and the standard argument
//! applies. The paper's full-info model is deliberately append-only ("the
//! server just appends everything … never deleting any information",
//! §4.1); this module is the practical counterpoint the analysis
//! abstracts away.
//!
//! # Crash–recover: state transfer soundness
//!
//! A crashed server may *rejoin*: it fetches a [`StateTransfer`] from a
//! quorum (`S − t`) of live peers, merges them via [`ServerState::install`],
//! and only then resumes answering clients. Three properties make the
//! rejoined server safe to count in quorums again:
//!
//! 1. **Every completed operation survives.** A completed write (or
//!    write-back) stored its value on `S − t` servers; a fetch quorum of
//!    `S − t` live peers intersects that set in at least `S − 2t ≥ 1`
//!    servers, so the union of the fetched stores contains every completed
//!    operation's value. Transferred *registrations* are sound to adopt
//!    wholesale because a registration `(v, c)` — on any server — only ever
//!    attests the global fact "`v` is in `c`'s `valQueue` (or `c` wrote
//!    `v`)", which is exactly what the admissibility degrees rely on.
//! 2. **No tag resurrection.** The merge prunes the unioned store below the
//!    *maximum* of the peers' GC floors before installing: a peer pruned at
//!    `f` only after every client completed an operation `≥ f`, so values
//!    below `f` are dead globally, no matter which lagging peer still held
//!    a copy. The installed GC state starts at that floor (and inherits the
//!    peers' membership and floor reports), so the rejoined server also
//!    refuses late duplicates below it, like any other server.
//! 3. **No duplicate-version delta corruption.** Versions are per-server
//!    counters, and a reader's cached mirror of the crashed store — with an
//!    acknowledged version minted by the *previous* incarnation — describes
//!    a store that no longer exists. The rejoined server resumes its
//!    counter strictly above both the peers' high-waters and its own
//!    pre-crash version (the cluster preserves a one-word monotone version
//!    beacon across the crash — the customary stable-storage bootstrap
//!    record of crash-recover models), then installs every transferred
//!    value and registration as *fresh* versioned events and records the
//!    resulting high-water as its *reset floor*. A `ReadFastDelta` whose
//!    `acked` falls below the reset floor is answered from version 0 — the
//!    whole rebuilt store — with `from = 0 < acked` signalling the reader
//!    to discard its stale mirror ([`FastReadState::reset`]), merge the
//!    full refresh, and secure that read's return value with a write-back
//!    round (its own witness registrations may not have survived the
//!    crash). Post-install acknowledgements are always `≥` the reset
//!    floor, so exactly the stale readers pay the refresh.
//!
//! # Client churn: floor-safe departure
//!
//! A departing client broadcasts [`Msg::Depart`]; [`ServerState::depart`]
//! removes it from the GC membership and floor map, drops its catch-up
//! high-water mark and its registrations, and re-evaluates pruning (the
//! departed client may have been the one unreported floor holding GC off,
//! or the minimum floor holding it down). Safety: removing a departed
//! client's registrations only *shrinks* witness sets, which makes
//! admissibility more conservative, and every reader keeps the degree-1
//! guarantee on its own `valQueue` through its own registrations — the
//! departed client is simply a client that (provably) never speaks again,
//! a special case of the client-crash fault model the protocol already
//! tolerates. Liveness: `seen` and `floors` shrink together, so the
//! engagement condition is re-checked on departure and a
//! registered-then-silent client can un-wedge GC by departing.
//!
//! [`StateTransfer`]: crate::msg::StateTransfer
//! [`Msg::Depart`]: crate::msg::Msg::Depart
//! [`FastReadState::reset`]: crate::msg::FastReadState::reset

use std::collections::{BTreeMap, BTreeSet};

use mwr_sim::{Automaton, Context};
use mwr_types::{ClientId, ConfigEpoch, ProcessId, TaggedValue};

use crate::events::ClientEvent;
use crate::msg::{DeltaSnapshot, FloorReport, Msg, Snapshot, StateTransfer, ValueRecord};

/// One stored value's bookkeeping: which clients are registered on it and
/// when (in registration-version terms) each one arrived.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Entry {
    /// Registered clients, sorted, each with the version its registration
    /// got (a flat Vec: populations are tens of clients, and this is the
    /// hottest per-registration probe on the server).
    updated: Vec<(ClientId, u64)>,
    /// The version at which this value first entered the store.
    first_added: u64,
    /// The highest registration version in `updated` — the version counter
    /// is globally monotone, so this is just the version of the most recent
    /// insert. Lets [`ServerState::delta_since`] skip untouched values with
    /// one comparison instead of scanning their registration lists. May
    /// overstate after a [`ServerState::depart`] removal (harmless: the
    /// scan then finds nothing and emits no record).
    max_reg: u64,
}

/// Acknowledged-floor GC bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GcState {
    /// The cluster's full client population (R + W), kept for diagnostics
    /// and as the upper bound a floor quorum is validated against.
    population: usize,
    /// Optional floor-report quorum: pruning additionally engages once this
    /// many clients have reported, even if other *contacted* clients never
    /// report — the documented escape hatch for permanently-silent members
    /// (see the module docs).
    quorum: Option<usize>,
    /// Every client this server has heard any message from. Pruning is
    /// membership-aware: it engages once `floors` covers `seen`.
    seen: BTreeSet<ClientId>,
    /// Latest floor reported per client.
    floors: BTreeMap<ClientId, TaggedValue>,
    /// The minimum of `floors` as of the last engagement scan — lets
    /// [`ServerState::record_floor`] skip the rescan when the reporting
    /// client provably did not hold the minimum (the common case on the
    /// hot Update/fast-read path).
    min_reported: TaggedValue,
    /// Everything strictly below this has been pruned.
    pruned_floor: TaggedValue,
}

/// The state of a register server, independent of any transport.
///
/// [`RegisterServer`] wraps this for the simulator; `mwr-runtime` drives the
/// same logic over threads and sockets.
///
/// # Examples
///
/// ```
/// use mwr_core::ServerState;
/// use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};
///
/// let mut s = ServerState::new();
/// let v1 = TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(10));
/// s.update(v1, ClientId::writer(0));
/// assert_eq!(s.latest(), v1);
/// let snap = s.snapshot();
/// assert!(snap.contains(v1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerState {
    latest: TaggedValue,
    store: BTreeMap<TaggedValue, Entry>,
    /// Monotone registration counter; every new `(value, client)` pair gets
    /// the next version.
    version: u64,
    /// Value-addition log ordered by version, for reader catch-up.
    additions: Vec<(u64, TaggedValue)>,
    /// Per-reader catch-up high-water mark: the largest acknowledged
    /// version whose values this reader has already been re-registered on.
    registered_up_to: BTreeMap<ClientId, u64>,
    /// `Some` iff acknowledged-floor GC is enabled.
    gc: Option<GcState>,
    /// The version high-water recorded by the last [`install`](Self::install):
    /// a reader acknowledgement below it was minted by a previous
    /// incarnation of this server and describes a store that no longer
    /// exists. Zero on a server that has never recovered.
    reset_floor: u64,
}

impl ServerState {
    /// A fresh server holding only the initial value `((0, ⊥), 0)` with an
    /// empty `updated` set (Algorithm 2, initialization). GC is off.
    pub fn new() -> Self {
        let mut store = BTreeMap::new();
        store.insert(TaggedValue::initial(), Entry::default());
        ServerState {
            latest: TaggedValue::initial(),
            store,
            version: 0,
            additions: Vec::new(),
            registered_up_to: BTreeMap::new(),
            gc: None,
            reset_floor: 0,
        }
    }

    /// A fresh server with acknowledged-floor GC enabled for a cluster of
    /// `population` clients (`R + W`). Pruning is membership-aware: it
    /// starts once every client *this server has heard from* has reported a
    /// completed-operation floor, so a client that crashes before sending
    /// its first message cannot wedge GC (see the module docs).
    pub fn with_gc(population: usize) -> Self {
        let mut state = ServerState::new();
        state.gc = Some(GcState {
            population,
            quorum: None,
            seen: BTreeSet::new(),
            floors: BTreeMap::new(),
            min_reported: TaggedValue::initial(),
            pruned_floor: TaggedValue::initial(),
        });
        state
    }

    /// Like [`with_gc`](Self::with_gc), with a floor-report quorum: pruning
    /// additionally engages once `quorum` clients have reported, even if
    /// other *contacted* clients never report a floor.
    ///
    /// This is the escape hatch for permanently-silent members — clients
    /// that keep sending messages but never complete operations, or
    /// full-info readers (whose `ReadFast` carries no floor). The tradeoff:
    /// a client excluded from the quorum's minimum may find its entire
    /// `valQueue` below the pruned floor; delta readers detect this
    /// (`pruned > floor`) and pay a write-back round, but full-info readers
    /// never learn the floor, so the quorum should only be used with
    /// delta-wire clients. `quorum` is clamped to at least 1.
    pub fn with_gc_quorum(population: usize, quorum: usize) -> Self {
        let mut state = ServerState::with_gc(population);
        if let Some(gc) = &mut state.gc {
            gc.quorum = Some(quorum.clamp(1, population.max(1)));
        }
        state
    }

    /// The current maximum value `vali`.
    pub fn latest(&self) -> TaggedValue {
        self.latest
    }

    /// The server's GC floor: everything strictly below it has been pruned.
    /// Stays at the initial value while GC is off or not yet engaged.
    pub fn pruned_floor(&self) -> TaggedValue {
        self.gc.as_ref().map_or_else(TaggedValue::initial, |g| g.pruned_floor)
    }

    /// The current registration version (grows with every new
    /// `(value, client)` registration).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The version high-water recorded by the last [`install`](Self::install):
    /// reader acknowledgements strictly below it predate this incarnation
    /// of the server and must be answered with a full refresh from version
    /// 0 (see the module docs on delta corruption). Zero on a server that
    /// has never recovered.
    pub fn reset_floor(&self) -> u64 {
        self.reset_floor
    }

    /// Algorithm 2's `update(val, c)`: insert `val` if new, advance the
    /// maximum if it is larger, and register `c` on it.
    ///
    /// The paper's pseudocode resets `updated` to `{c}` when a strictly
    /// larger value arrives and merges `c` otherwise; values below the
    /// current maximum that were never seen before are still stored (the
    /// store is append-only in the full-info spirit). With GC engaged,
    /// values strictly below the pruned floor that would not advance the
    /// maximum are ignored — they are below every client's completed floor,
    /// so no future read can return them (see the module docs).
    pub fn update(&mut self, val: TaggedValue, c: ClientId) {
        self.update_impl(val, c, false);
    }

    /// `update` with the dead-on-arrival rule suspended, for full-info
    /// `ReadFast` re-registration: the full-info wire carries no floor
    /// announcement, so a reader whose whole `valQueue` fell below the
    /// pruned floor (its first contact arrived after membership-aware
    /// pruning engaged) cannot detect it and fall back; re-inserting its
    /// `valQueue` restores the degree-1 admissibility guarantee the module
    /// docs rely on. Bounded because a full-info `valQueue` is what the
    /// reader re-sends every read anyway.
    fn update_resurrecting(&mut self, val: TaggedValue, c: ClientId) {
        self.update_impl(val, c, true);
    }

    fn update_impl(&mut self, val: TaggedValue, c: ClientId, force: bool) {
        if !force
            && val < self.pruned_floor()
            && val <= self.latest
            && !self.store.contains_key(&val)
        {
            return; // dead on arrival: a late duplicate below the GC floor
        }
        let version = &mut self.version;
        let entry = match self.store.entry(val) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => {
                *version += 1;
                self.additions.push((*version, val));
                e.insert(Entry { updated: Vec::new(), first_added: *version, max_reg: 0 })
            }
        };
        if let Err(i) = entry.updated.binary_search_by_key(&c, |r| r.0) {
            *version += 1;
            entry.updated.insert(i, (c, *version));
            entry.max_reg = *version;
        }
        if val > self.latest {
            self.latest = val;
        }
    }

    /// Registers `c` on the current maximum value without changing it —
    /// the fast-read bookkeeping applied before a `ReadFastAck`.
    pub fn register_on_latest(&mut self, c: ClientId) {
        let latest = self.latest;
        self.update(latest, c);
    }

    /// Re-registers `reader` on every stored value it provably knows —
    /// those first added at a version `≤ acked` (the reader merged the
    /// delta that introduced them, so they are in its `valQueue`). This is
    /// the delta protocol's stand-in for full-info's `valQueue` re-send;
    /// amortized O(new values) via the per-reader high-water mark.
    pub fn catch_up_registrations(&mut self, reader: ClientId, acked: u64) {
        // The initial value is in every reader's `valQueue` from birth and
        // never enters the addition log; full-info re-sends it every read.
        if self.store.contains_key(&TaggedValue::initial()) {
            self.update(TaggedValue::initial(), reader);
        }
        let from = self.registered_up_to.get(&reader).copied().unwrap_or(0);
        if acked <= from {
            return; // late duplicate request: nothing new to catch up on
        }
        let start = self.additions.partition_point(|&(v, _)| v <= from);
        // `update` on an already-stored value never touches `additions`
        // (and pruned values are skipped), so the log can be lent out for
        // the walk instead of collected into a fresh Vec per request.
        let additions = std::mem::take(&mut self.additions);
        for &(_, val) in
            additions[start..].iter().take_while(|&&(v, _)| v <= acked)
        {
            if self.store.contains_key(&val) {
                self.update(val, reader);
            }
        }
        debug_assert!(self.additions.is_empty());
        self.additions = additions;
        self.registered_up_to.insert(reader, acked);
    }

    /// Records that `client` has contacted this server (any message).
    /// Membership-aware pruning engages once every *contacted* client has
    /// reported a floor, so contact without a floor report holds GC off —
    /// the conservative direction. No-op when GC is off.
    pub fn note_contact(&mut self, client: ClientId) {
        if let Some(gc) = &mut self.gc {
            gc.seen.insert(client);
        }
    }

    /// Records `client`'s completed-operation floor and prunes once the
    /// floors cover the contacted membership (or the configured floor
    /// quorum, if any, is reached). No-op when GC is off.
    pub fn record_floor(&mut self, client: ClientId, floor: TaggedValue) {
        let Some(gc) = &mut self.gc else { return };
        gc.seen.insert(client);
        match gc.floors.entry(client) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let old = *e.get();
                if floor <= old {
                    return; // floor is monotone: nothing changed
                }
                e.insert(floor);
                // Raising a floor that was not the minimum cannot move the
                // minimum, and the membership did not change, so the
                // engagement condition is unchanged too: skip the rescan.
                if old > gc.min_reported {
                    return;
                }
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(floor);
            }
        }
        self.maybe_prune();
    }

    /// Re-evaluates the pruning engagement condition and prunes if the
    /// minimum reported floor advanced — called whenever the floor map or
    /// the membership changes (floor reports *and* departures).
    fn maybe_prune(&mut self) {
        let Some(gc) = &mut self.gc else { return };
        // Floors is a subset of seen, so equal sizes means every contacted
        // client has reported; an empty floor map never engages (the
        // minimum over nothing is meaningless).
        let engaged = !gc.floors.is_empty()
            && (gc.floors.len() == gc.seen.len()
                || gc.quorum.is_some_and(|q| gc.floors.len() >= q));
        if !engaged {
            return;
        }
        let min = gc.floors.values().copied().min().unwrap_or_default();
        gc.min_reported = min;
        if min > gc.pruned_floor {
            gc.pruned_floor = min;
            self.prune_below(min);
        }
    }

    /// Removes every trace of a departing (or provably-dead) client: its
    /// GC membership and floor report, its catch-up high-water mark, and
    /// its registrations — then re-evaluates pruning, since the departed
    /// client may have been the unreported floor wedging GC or the minimum
    /// floor holding it down. See the module docs for why shrinking
    /// witness sets is safe.
    pub fn depart(&mut self, client: ClientId) {
        self.registered_up_to.remove(&client);
        for entry in self.store.values_mut() {
            if let Ok(i) = entry.updated.binary_search_by_key(&client, |r| r.0) {
                entry.updated.remove(i);
            }
        }
        if let Some(gc) = &mut self.gc {
            gc.seen.remove(&client);
            gc.floors.remove(&client);
        }
        self.maybe_prune();
    }

    /// Exports the full state as a catch-up payload for a recovering peer
    /// (the reply to [`Msg::StateFetch`]).
    pub fn export(&self) -> StateTransfer {
        let (seen, floors) = match &self.gc {
            Some(gc) => (
                gc.seen.iter().copied().collect(),
                gc.floors
                    .iter()
                    .map(|(&client, &floor)| FloorReport { client, floor })
                    .collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        StateTransfer {
            version: self.version,
            latest: self.latest,
            pruned: self.pruned_floor(),
            entries: self.snapshot().entries,
            seen,
            floors,
        }
    }

    /// Merges a quorum of peers' [`StateTransfer`]s into this (freshly
    /// constructed) server, making it safe to serve quorums again.
    ///
    /// `version_floor` is the recovering server's own pre-crash version
    /// bound (the cluster's version beacon); the counter resumes strictly
    /// above both it and every peer's high-water, every transferred value
    /// and registration is installed as a fresh versioned event, the
    /// unioned store is pruned below the maximum peer GC floor (no tag
    /// resurrection), and the final version becomes the *reset floor* that
    /// flags pre-crash reader acknowledgements for a full refresh. See the
    /// module docs for the soundness argument.
    pub fn install(&mut self, version_floor: u64, transfers: &[StateTransfer]) {
        let mut base = self.version.max(version_floor);
        for t in transfers {
            base = base.max(t.version);
        }
        // Reserve one version as the incarnation mark so even an empty
        // install moves the counter: every pre-crash acknowledgement ends
        // up strictly below the reset floor.
        self.version = base + 1;

        let mut merged: BTreeMap<TaggedValue, Vec<ClientId>> = BTreeMap::new();
        let mut latest = self.latest;
        let mut pruned = self.pruned_floor();
        for t in transfers {
            latest = latest.max(t.latest);
            pruned = pruned.max(t.pruned);
            for rec in &t.entries {
                let set = merged.entry(rec.value).or_default();
                for &c in &rec.updated {
                    if let Err(i) = set.binary_search(&c) {
                        set.insert(i, c);
                    }
                }
            }
        }
        for (&val, clients) in &merged {
            if val < pruned && val != latest {
                continue; // dead on every peer's floor: never resurrect it
            }
            if clients.is_empty() {
                // A value with no surviving registrations still needs a
                // versioned addition so later reader catch-up covers it.
                if !self.store.contains_key(&val) {
                    self.version += 1;
                    self.additions.push((self.version, val));
                    self.store.insert(
                        val,
                        Entry { updated: Vec::new(), first_added: self.version, max_reg: 0 },
                    );
                }
            } else {
                for &c in clients {
                    self.update_impl(val, c, true);
                }
            }
        }
        if latest > self.latest {
            self.latest = latest;
        }
        if let Some(gc) = &mut self.gc {
            for t in transfers {
                gc.seen.extend(t.seen.iter().copied());
                for fr in &t.floors {
                    let known = gc.floors.entry(fr.client).or_insert(fr.floor);
                    *known = (*known).max(fr.floor);
                }
            }
            gc.pruned_floor = gc.pruned_floor.max(pruned);
            // The direct floor merge bypassed `record_floor`, so refresh the
            // cached minimum: a stale-low cache would let every later
            // `record_floor` skip the rescan (its floor compares above the
            // stale minimum) and wedge pruning on reconfigured servers.
            gc.min_reported = gc.floors.values().copied().min().unwrap_or_default();
        }
        if pruned > TaggedValue::initial() {
            // Drops the seeded initial value (and anything else dead) while
            // keeping the latest, like any other pruning pass.
            self.prune_below(pruned);
        }
        self.reset_floor = self.version;
    }

    /// The full store as reported to full-info fast reads.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            entries: self
                .store
                .iter()
                .map(|(value, entry)| ValueRecord {
                    value: *value,
                    updated: entry.updated.iter().map(|r| r.0).collect(),
                })
                .collect(),
        }
    }

    /// The store changes above registration version `from`, as reported to
    /// delta fast reads. Derived straight from the store: each entry keeps
    /// its registrations stamped with their versions (sorted by client, the
    /// order the wire wants), so the reply is one walk over the live values
    /// — a single comparison skips untouched ones via `max_reg` — with no
    /// registration log, no sort, and one allocation per emitted record.
    pub fn delta_since(&self, from: u64) -> DeltaSnapshot {
        let mut entries: Vec<ValueRecord> = Vec::with_capacity(self.store.len());
        for (&val, entry) in &self.store {
            if entry.max_reg <= from {
                continue; // nothing registered on this value since `from`
            }
            let updated: Vec<ClientId> = if entry.first_added > from {
                // The value itself is new since `from`, so every one of its
                // registrations is too: clone the whole list in one
                // exact-size allocation (the common case for fresh writes).
                entry.updated.iter().map(|&(c, _)| c).collect()
            } else {
                let new = entry.updated.iter().filter(|&&(_, v)| v > from);
                let mut updated = Vec::with_capacity(new.clone().count());
                updated.extend(new.map(|&(c, _)| c));
                updated
            };
            if !updated.is_empty() {
                entries.push(ValueRecord { value: val, updated });
            }
        }
        DeltaSnapshot {
            from,
            version: self.version,
            latest: self.latest,
            pruned: self.pruned_floor(),
            entries,
        }
    }

    /// Number of distinct values stored.
    pub fn stored_values(&self) -> usize {
        self.store.len()
    }


    /// The `updated` set registered for `val`, if stored.
    pub fn updated_set(&self, val: TaggedValue) -> Option<Vec<ClientId>> {
        self.store.get(&val).map(|e| e.updated.iter().map(|r| r.0).collect())
    }

    /// Garbage-collects values strictly below `floor`, keeping the current
    /// maximum unconditionally. Returns how many entries were dropped.
    ///
    /// Called by [`record_floor`](Self::record_floor) once every client has
    /// acknowledged a completed operation `≥ floor`; see the module docs
    /// for why the fast read's fallback never needs the pruned entries.
    pub fn prune_below(&mut self, floor: TaggedValue) -> usize {
        let latest = self.latest;
        let before = self.store.len();
        self.store.retain(|val, _| *val >= floor || *val == latest);
        let store = &self.store;
        self.additions.retain(|(_, val)| store.contains_key(val));
        before - self.store.len()
    }
}

impl Default for ServerState {
    fn default() -> Self {
        ServerState::new()
    }
}

/// The server automaton for the simulator: [`ServerState`] plus the message
/// handling of Algorithm 2.
#[derive(Debug, Clone, Default)]
pub struct RegisterServer {
    state: ServerState,
    /// The highest configuration epoch this server has observed — adopted
    /// from any [`Msg::InEpoch`] frame or set directly by the runtime's
    /// reconfiguration coordinator; never moves backwards. While past epoch
    /// 0 every reply is epoch-tagged so stale clients learn of the
    /// reconfiguration from their very next acknowledgement.
    epoch: ConfigEpoch,
}

impl RegisterServer {
    /// Creates a fresh server (GC off — faithful to the paper's full-info
    /// model).
    pub fn new() -> Self {
        RegisterServer { state: ServerState::new(), epoch: ConfigEpoch::ZERO }
    }

    /// Creates a server with acknowledged-floor GC enabled for a cluster of
    /// `population` clients (`R + W`). Pruning is membership-aware — see
    /// [`ServerState::with_gc`].
    pub fn with_gc(population: usize) -> Self {
        RegisterServer { state: ServerState::with_gc(population), epoch: ConfigEpoch::ZERO }
    }

    /// Creates a GC-enabled server with a floor-report quorum escape hatch
    /// — see [`ServerState::with_gc_quorum`].
    pub fn with_gc_quorum(population: usize, quorum: usize) -> Self {
        RegisterServer {
            state: ServerState::with_gc_quorum(population, quorum),
            epoch: ConfigEpoch::ZERO,
        }
    }

    /// Creates a recovering server: GC-enabled for `population` clients,
    /// with a quorum of peers' catch-up snapshots installed on top (see
    /// [`ServerState::install`]). `version_floor` is the server's own
    /// pre-crash version bound (the cluster's version beacon).
    pub fn recovered(
        population: usize,
        version_floor: u64,
        transfers: &[StateTransfer],
    ) -> Self {
        let mut state = ServerState::with_gc(population);
        state.install(version_floor, transfers);
        RegisterServer { state, epoch: ConfigEpoch::ZERO }
    }

    /// Read access to the server's state (useful in tests).
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Mutable access to the server's state, for harnesses that drive the
    /// state machine's public steps directly (CPU attribution, tests).
    pub fn state_mut(&mut self) -> &mut ServerState {
        &mut self.state
    }

    /// The highest configuration epoch this server has observed.
    pub fn epoch(&self) -> ConfigEpoch {
        self.epoch
    }

    /// Advances the server's epoch (the coordinator's announcement path).
    /// Adoption is monotone: a lower epoch is a no-op.
    pub fn set_epoch(&mut self, epoch: ConfigEpoch) {
        self.epoch = self.epoch.adopt(epoch);
    }

    /// Merges a quorum of peer state into this *running* server — the
    /// reconfiguration coordinator's push into a joining member
    /// ([`Msg::StateInstall`]). This is the rejoin merge verbatim
    /// ([`ServerState::install`]): unions only, the version counter resumes
    /// above every transferred high-water mark, nothing below the
    /// transferred floor is resurrected, and the reset-floor stamp sends any
    /// reader holding a pre-install delta mirror through a full refresh.
    pub fn install_from(&mut self, transfers: &[StateTransfer]) {
        self.state.install(0, transfers);
    }

    /// Computes the reply for one request, mutating state as required.
    ///
    /// Returns `None` for messages a server never receives (acks, invokes);
    /// those indicate a routing bug and are ignored defensively here — the
    /// simulator's topology enforcement catches genuine mistakes loudly.
    ///
    /// Epoch handling: an [`Msg::InEpoch`] header advances the server's
    /// epoch to `max(own, frame)` before the payload is processed, and once
    /// the server is past epoch 0 *every* reply — even to a bare legacy
    /// frame — carries the epoch header, so a client whose view is stale
    /// learns of the reconfiguration from its next acknowledgement. At
    /// epoch 0 replies stay legacy, byte for byte.
    pub fn handle(&mut self, from: ProcessId, msg: &Msg) -> Option<Msg> {
        if let Msg::InEpoch { epoch, inner } = msg {
            self.epoch = self.epoch.adopt(*epoch);
            return self.handle(from, inner);
        }
        self.handle_payload(from, msg).map(|reply| reply.in_epoch(self.epoch))
    }

    fn handle_payload(&mut self, from: ProcessId, msg: &Msg) -> Option<Msg> {
        // Server-to-server recovery and reconfiguration traffic is matched
        // before the client gate: only peers may fetch or install state, and
        // servers never enter the GC membership.
        if let Msg::StateFetch { nonce } = msg {
            from.as_server()?;
            return Some(Msg::StateSnapshot { nonce: *nonce, state: Box::new(self.state.export()) });
        }
        if let Msg::StateInstall { nonce, transfers } = msg {
            from.as_server()?;
            self.install_from(transfers);
            return Some(Msg::StateInstallAck { nonce: *nonce });
        }
        let client = from.as_client()?;
        self.state.note_contact(client);
        match msg {
            Msg::Query { handle } => Some(Msg::QueryAck {
                handle: *handle,
                latest: self.state.latest(),
            }),
            Msg::Update { handle, value, floor } => {
                self.state.record_floor(client, *floor);
                self.state.update(*value, client);
                Some(Msg::UpdateAck { handle: *handle })
            }
            Msg::ReadFast { handle, val_queue } => {
                for val in val_queue {
                    self.state.update_resurrecting(*val, client);
                }
                self.state.register_on_latest(client);
                Some(Msg::ReadFastAck {
                    handle: *handle,
                    snapshot: self.state.snapshot(),
                })
            }
            Msg::ReadFastDelta { handle, acked, floor, new_values } => {
                Some(Msg::ReadFastDeltaAck {
                    handle: *handle,
                    delta: self.fast_read_delta(client, *acked, *floor, new_values),
                })
            }
            Msg::ReadFastRuns { handle, acked, floor, new_values } => {
                // Wire v4: identical server-side processing; only the
                // ack's encoding differs (run-length `updated` lists).
                Some(Msg::ReadFastRunsAck {
                    handle: *handle,
                    delta: self.fast_read_delta(client, *acked, *floor, new_values),
                })
            }
            Msg::Depart { handle } => {
                self.state.depart(client);
                Some(Msg::DepartAck { handle: *handle })
            }
            _ => None,
        }
    }

    /// The shared body of both delta-wire fast reads
    /// ([`Msg::ReadFastDelta`] and the v4 [`Msg::ReadFastRuns`]): floor
    /// and `valQueue` bookkeeping, reader catch-up, and the incremental
    /// snapshot reply.
    fn fast_read_delta(
        &mut self,
        client: ClientId,
        acked: u64,
        floor: TaggedValue,
        new_values: &[TaggedValue],
    ) -> DeltaSnapshot {
        // An acknowledgement below the reset floor was minted by a
        // previous incarnation of this server: answer from version 0 (the
        // whole rebuilt store) so `from < acked` tells the reader to
        // discard its stale mirror and resynchronize.
        let acked = if acked < self.state.reset_floor() { 0 } else { acked };
        self.state.record_floor(client, floor);
        for val in new_values {
            self.state.update(*val, client);
        }
        self.state.catch_up_registrations(client, acked);
        self.state.register_on_latest(client);
        self.state.delta_since(acked)
    }
}

impl Automaton<Msg, ClientEvent> for RegisterServer {
    fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, ClientEvent>) {
        if let Some(reply) = self.handle(from, &msg) {
            ctx.send(from, reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{OpHandle, OpId};
    use mwr_types::{Tag, Value, WriterId};
    use std::collections::BTreeSet;

    fn tv(ts: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts, WriterId::new(w)), Value::new(v))
    }

    fn rhandle(seq: u64) -> OpHandle {
        OpHandle { op: OpId { client: ClientId::reader(0), seq }, phase: 1 }
    }

    #[test]
    fn initial_state_stores_bottom() {
        let s = ServerState::new();
        assert!(s.latest().tag().is_initial());
        assert_eq!(s.stored_values(), 1);
        assert_eq!(s.updated_set(TaggedValue::initial()), Some(vec![]));
        assert_eq!(s.version(), 0);
    }

    #[test]
    fn update_advances_latest_monotonically() {
        let mut s = ServerState::new();
        s.update(tv(2, 0, 20), ClientId::writer(0));
        assert_eq!(s.latest(), tv(2, 0, 20));
        // A smaller value arrives late: stored, but latest unchanged.
        s.update(tv(1, 1, 10), ClientId::writer(1));
        assert_eq!(s.latest(), tv(2, 0, 20));
        assert_eq!(s.stored_values(), 3);
    }

    #[test]
    fn update_merges_updated_sets() {
        let mut s = ServerState::new();
        let v = tv(1, 0, 10);
        s.update(v, ClientId::writer(0));
        s.update(v, ClientId::reader(1));
        assert_eq!(
            s.updated_set(v),
            Some(vec![ClientId::reader(1), ClientId::writer(0)])
        );
    }

    #[test]
    fn register_on_latest_targets_current_maximum() {
        let mut s = ServerState::new();
        s.update(tv(3, 0, 30), ClientId::writer(0));
        s.register_on_latest(ClientId::reader(0));
        assert!(s
            .updated_set(tv(3, 0, 30))
            .unwrap()
            .contains(&ClientId::reader(0)));
        // The initial value's set is untouched.
        assert_eq!(s.updated_set(TaggedValue::initial()), Some(vec![]));
    }

    #[test]
    fn query_does_not_mutate() {
        let mut srv = RegisterServer::new();
        let before = srv.state().clone();
        let handle = rhandle(0);
        let reply = srv.handle(ProcessId::reader(0), &Msg::Query { handle });
        assert_eq!(
            reply,
            Some(Msg::QueryAck { handle, latest: TaggedValue::initial() })
        );
        assert_eq!(srv.state(), &before);
    }

    #[test]
    fn read_fast_applies_val_queue_then_registers_then_snapshots() {
        let mut srv = RegisterServer::new();
        let w = ProcessId::writer(0);
        let r = ProcessId::reader(0);
        let handle = OpHandle { op: OpId { client: ClientId::writer(0), seq: 0 }, phase: 2 };
        srv.handle(
            w,
            &Msg::Update { handle, value: tv(1, 0, 11), floor: TaggedValue::initial() },
        );

        let reply = srv
            .handle(
                r,
                &Msg::ReadFast { handle: rhandle(0), val_queue: vec![TaggedValue::initial()] },
            )
            .unwrap();
        let Msg::ReadFastAck { snapshot, .. } = reply else {
            panic!("expected ReadFastAck");
        };
        // The reader is registered on the current maximum before the reply
        // (the property Lemma 8 relies on).
        assert!(snapshot
            .updated_for(tv(1, 0, 11))
            .unwrap()
            .contains(&ClientId::reader(0)));
        // The val_queue registration landed on the initial value too.
        assert!(snapshot
            .updated_for(TaggedValue::initial())
            .unwrap()
            .contains(&ClientId::reader(0)));
    }

    /// The delta protocol and the full-info protocol leave the server in
    /// identical registration state, and the delta stream reconstructs the
    /// full snapshot exactly.
    #[test]
    fn delta_stream_reconstructs_the_full_snapshot() {
        let mut full = RegisterServer::new();
        let mut delta = RegisterServer::new();
        let w = ProcessId::writer(0);
        let r = ProcessId::reader(0);
        let wfloor = TaggedValue::initial();

        // Reconstructed view: seeded like the store's initial state.
        let mut cache: BTreeMap<TaggedValue, BTreeSet<ClientId>> = BTreeMap::new();
        cache.insert(TaggedValue::initial(), BTreeSet::new());
        let mut acked = 0u64;

        for round in 0..5u64 {
            let value = tv(round + 1, 0, round + 1);
            let wh = OpHandle { op: OpId { client: ClientId::writer(0), seq: round }, phase: 2 };
            full.handle(w, &Msg::Update { handle: wh, value, floor: wfloor });
            delta.handle(w, &Msg::Update { handle: wh, value, floor: wfloor });

            // Full-info read re-sends everything it knows (= the cache).
            let val_queue: Vec<TaggedValue> = cache.keys().copied().collect();
            let f = full
                .handle(r, &Msg::ReadFast { handle: rhandle(round), val_queue })
                .unwrap();
            // Delta read sends nothing new (the cache tracks the server).
            let d = delta
                .handle(
                    r,
                    &Msg::ReadFastDelta {
                        handle: rhandle(round),
                        acked,
                        floor: TaggedValue::initial(),
                        new_values: vec![],
                    },
                )
                .unwrap();
            let Msg::ReadFastAck { snapshot, .. } = f else { panic!() };
            let Msg::ReadFastDeltaAck { delta: ds, .. } = d else { panic!() };
            assert_eq!(ds.from, acked);
            assert!(ds.version > acked, "reply must cover the new registrations");
            for rec in &ds.entries {
                cache.entry(rec.value).or_default().extend(rec.updated.iter().copied());
            }
            acked = ds.version;
            let reconstructed = Snapshot {
                entries: cache
                    .iter()
                    .map(|(value, updated)| ValueRecord {
                        value: *value,
                        updated: updated.iter().copied().collect(),
                    })
                    .collect(),
            };
            assert_eq!(reconstructed, snapshot, "round {round}: byte-for-byte");
            assert_eq!(ds.latest, value);
        }
        assert_eq!(full.state().snapshot(), delta.state().snapshot());
    }

    /// A late duplicate `ReadFastDelta` (old acked version) is harmless:
    /// registrations are idempotent and the reply simply re-covers the
    /// already-delivered window.
    #[test]
    fn late_duplicate_read_fast_delta_is_idempotent() {
        let mut srv = RegisterServer::new();
        let r = ProcessId::reader(0);
        srv.handle(
            ProcessId::writer(0),
            &Msg::Update {
                handle: OpHandle { op: OpId { client: ClientId::writer(0), seq: 0 }, phase: 2 },
                value: tv(1, 0, 5),
                floor: TaggedValue::initial(),
            },
        );
        let fresh = srv
            .handle(
                r,
                &Msg::ReadFastDelta {
                    handle: rhandle(0),
                    acked: 0,
                    floor: TaggedValue::initial(),
                    new_values: vec![TaggedValue::initial()],
                },
            )
            .unwrap();
        let Msg::ReadFastDeltaAck { delta: first, .. } = fresh else { panic!() };
        let state_after = srv.state().clone();
        // The duplicate re-sends the same request with the old acked floor.
        let dup = srv
            .handle(
                r,
                &Msg::ReadFastDelta {
                    handle: rhandle(0),
                    acked: 0,
                    floor: TaggedValue::initial(),
                    new_values: vec![TaggedValue::initial()],
                },
            )
            .unwrap();
        let Msg::ReadFastDeltaAck { delta: second, .. } = dup else { panic!() };
        assert_eq!(srv.state(), &state_after, "no state change on duplicate");
        assert_eq!(first, second, "same window, same delta");
    }

    #[test]
    fn server_ignores_client_only_messages() {
        let mut srv = RegisterServer::new();
        assert_eq!(srv.handle(ProcessId::reader(0), &Msg::InvokeRead), None);
        let handle = rhandle(0);
        assert_eq!(srv.handle(ProcessId::reader(0), &Msg::UpdateAck { handle }), None);
    }

    #[test]
    fn prune_below_drops_stale_entries_but_keeps_latest() {
        let mut s = ServerState::new();
        for i in 1..=5 {
            s.update(tv(i, 0, i * 10), ClientId::writer(0));
        }
        assert_eq!(s.stored_values(), 6); // initial + 5
        let dropped = s.prune_below(tv(4, 0, 40));
        assert_eq!(dropped, 4); // initial, ts1..ts3
        assert_eq!(s.latest(), tv(5, 0, 50));
        assert!(s.updated_set(tv(4, 0, 40)).is_some());
        assert!(s.updated_set(tv(3, 0, 30)).is_none());
        // The latest survives even a floor above it.
        let dropped = s.prune_below(tv(9, 0, 0));
        assert_eq!(dropped, 1);
        assert!(s.updated_set(s.latest()).is_some());
    }

    /// A contacted client that has not yet reported a floor holds pruning
    /// off; once the floors cover the contacted membership, pruning runs at
    /// the minimum reported floor.
    #[test]
    fn gc_waits_for_every_contacted_client() {
        let mut s = ServerState::with_gc(3);
        for i in 1..=4 {
            s.update(tv(i, 0, i), ClientId::writer(0));
        }
        assert_eq!(s.stored_values(), 5);
        // Reader 1 has contacted (say, a Query) but never reported: nothing
        // may be pruned while a contacted client's floor is unknown.
        s.note_contact(ClientId::reader(1));
        s.record_floor(ClientId::writer(0), tv(4, 0, 4));
        s.record_floor(ClientId::reader(0), tv(3, 0, 3));
        assert_eq!(s.stored_values(), 5, "GC must wait for every contacted client");
        assert_eq!(s.pruned_floor(), TaggedValue::initial());
        s.record_floor(ClientId::reader(1), tv(2, 0, 2));
        // min floor = (2, w1): initial and ts1 go.
        assert_eq!(s.pruned_floor(), tv(2, 0, 2));
        assert_eq!(s.stored_values(), 3);
        assert!(s.updated_set(tv(2, 0, 2)).is_some());
        assert!(s.updated_set(tv(1, 0, 1)).is_none());
    }

    /// Regression (GC floor wedge): a client that crashes before sending
    /// its first message must not wedge pruning — the floor advances and
    /// memory stays bounded on the floors of the clients that actually
    /// exist on the wire.
    #[test]
    fn gc_floor_advances_despite_a_silent_client() {
        // Population 3, but reader 1 crashed before its first op and never
        // contacts the server at all.
        let mut s = ServerState::with_gc(3);
        for i in 1..=64 {
            s.update(tv(i, 0, i), ClientId::writer(0));
            s.record_floor(ClientId::writer(0), tv(i, 0, i));
            s.record_floor(ClientId::reader(0), tv(i, 0, i));
        }
        assert_eq!(s.pruned_floor(), tv(64, 0, 64), "floor advances without the silent client");
        assert_eq!(s.stored_values(), 1, "memory stays bounded: only the latest survives");
    }

    /// The `gc_floor_quorum` escape hatch: a *contacted* client that never
    /// reports a floor (a permanently-silent member) normally holds GC off;
    /// with a quorum configured, pruning engages on the reporters alone.
    #[test]
    fn gc_floor_quorum_overrides_a_contacted_silent_member() {
        let mut wedged = ServerState::with_gc(3);
        let mut quorate = ServerState::with_gc_quorum(3, 2);
        for s in [&mut wedged, &mut quorate] {
            for i in 1..=4 {
                s.update(tv(i, 0, i), ClientId::writer(0));
            }
            // Reader 1 keeps sending messages but never completes an op.
            s.note_contact(ClientId::reader(1));
            s.record_floor(ClientId::writer(0), tv(4, 0, 4));
            s.record_floor(ClientId::reader(0), tv(3, 0, 3));
        }
        assert_eq!(wedged.pruned_floor(), TaggedValue::initial(), "no quorum: conservative");
        assert_eq!(quorate.pruned_floor(), tv(3, 0, 3), "quorum of 2 reporters engages GC");
    }

    /// The full-info fast-read path re-registers a late-joining reader's
    /// `valQueue` even below the GC floor (it cannot learn the floor from a
    /// `ReadFastAck`), restoring the degree-1 admissibility witness.
    #[test]
    fn read_fast_reregisters_below_the_floor_for_late_joiners() {
        let mut srv = RegisterServer::with_gc(2);
        for i in 1..=3u64 {
            srv.handle(
                ProcessId::writer(0),
                &Msg::Update {
                    handle: OpHandle {
                        op: OpId { client: ClientId::writer(0), seq: i },
                        phase: 2,
                    },
                    value: tv(i, 0, i),
                    floor: tv(i, 0, i),
                },
            );
        }
        assert_eq!(srv.state().pruned_floor(), tv(3, 0, 3), "writer-only membership pruned");
        // A reader joins late: its whole valQueue is below the floor.
        let reply = srv
            .handle(
                ProcessId::reader(0),
                &Msg::ReadFast { handle: rhandle(0), val_queue: vec![TaggedValue::initial()] },
            )
            .unwrap();
        let Msg::ReadFastAck { snapshot, .. } = reply else { panic!("expected ReadFastAck") };
        assert!(
            snapshot
                .updated_for(TaggedValue::initial())
                .is_some_and(|u| u.contains(&ClientId::reader(0))),
            "the reader's valQueue entry is resurrected and witnessed"
        );
    }

    /// Floors only ever advance; a stale (smaller) floor report cannot
    /// regress the GC line.
    #[test]
    fn stale_floor_reports_do_not_regress() {
        let mut s = ServerState::with_gc(1);
        for i in 1..=3 {
            s.update(tv(i, 0, i), ClientId::writer(0));
        }
        s.record_floor(ClientId::reader(0), tv(3, 0, 3));
        assert_eq!(s.pruned_floor(), tv(3, 0, 3));
        s.record_floor(ClientId::reader(0), tv(1, 0, 1));
        assert_eq!(s.pruned_floor(), tv(3, 0, 3), "floor is monotone");
    }

    /// Once pruned, a value stays dead: late duplicates below the GC floor
    /// are not re-inserted (they are below every client's completed floor).
    #[test]
    fn pruned_values_cannot_be_resurrected() {
        let mut s = ServerState::with_gc(1);
        for i in 1..=3 {
            s.update(tv(i, 0, i), ClientId::writer(0));
        }
        s.record_floor(ClientId::reader(0), tv(3, 0, 3));
        assert_eq!(s.stored_values(), 1);
        s.update(tv(1, 0, 1), ClientId::writer(1)); // late duplicate
        assert_eq!(s.stored_values(), 1, "below-floor values stay dead");
        // …but a *new maximum* is always accepted.
        s.update(tv(9, 0, 9), ClientId::writer(1));
        assert_eq!(s.latest(), tv(9, 0, 9));
    }

    /// A registered-then-silent client wedges GC; departing un-wedges it:
    /// the remaining reporters' minimum floor prunes immediately.
    #[test]
    fn depart_unwedges_gc_and_drops_registrations() {
        let mut s = ServerState::with_gc(3);
        for i in 1..=4 {
            s.update(tv(i, 0, i), ClientId::writer(0));
        }
        s.update(tv(4, 0, 4), ClientId::reader(1));
        s.note_contact(ClientId::reader(1));
        s.record_floor(ClientId::writer(0), tv(4, 0, 4));
        s.record_floor(ClientId::reader(0), tv(3, 0, 3));
        // Reader 1 contacted (its update above) but never reports: wedged.
        assert_eq!(s.pruned_floor(), TaggedValue::initial());

        s.depart(ClientId::reader(1));
        assert_eq!(s.pruned_floor(), tv(3, 0, 3), "departure re-engages pruning");
        assert!(
            !s.updated_set(tv(4, 0, 4)).unwrap().contains(&ClientId::reader(1)),
            "departed client's registrations are dropped"
        );
        // The departed client's registration no longer flows to readers.
        let d = s.delta_since(0);
        assert!(d.entries.iter().all(|rec| !rec.updated.contains(&ClientId::reader(1))));
    }

    /// Departing the client holding the *minimum* floor lets the floor
    /// rise to the survivors' minimum.
    #[test]
    fn departing_the_minimum_floor_advances_the_line() {
        let mut s = ServerState::with_gc(2);
        for i in 1..=5 {
            s.update(tv(i, 0, i), ClientId::writer(0));
        }
        s.note_contact(ClientId::reader(0));
        s.record_floor(ClientId::writer(0), tv(5, 0, 5));
        s.record_floor(ClientId::reader(0), tv(2, 0, 2));
        assert_eq!(s.pruned_floor(), tv(2, 0, 2));
        s.depart(ClientId::reader(0));
        assert_eq!(s.pruned_floor(), tv(5, 0, 5), "survivor minimum takes over");
        // Departing the last client must not prune on an empty floor map.
        s.depart(ClientId::writer(0));
        assert_eq!(s.pruned_floor(), tv(5, 0, 5));
    }

    /// `install` merges a quorum of transfers: union of stores and
    /// registrations, version resumed above every high-water (and the
    /// recovering server's own pre-crash bound), GC floor at the peers'
    /// maximum with no resurrection below it.
    #[test]
    fn install_merges_transfers_above_every_version_stamp() {
        let mut peer_a = ServerState::with_gc(2);
        let mut peer_b = ServerState::with_gc(2);
        for i in 1..=3 {
            peer_a.update(tv(i, 0, i), ClientId::writer(0));
        }
        peer_b.update(tv(3, 0, 3), ClientId::writer(0));
        peer_b.update(tv(4, 0, 4), ClientId::reader(0));
        // Peer A pruned below ts3: those tags are dead globally.
        peer_a.record_floor(ClientId::writer(0), tv(3, 0, 3));
        peer_a.record_floor(ClientId::reader(0), tv(3, 0, 3));
        assert_eq!(peer_a.pruned_floor(), tv(3, 0, 3));

        let transfers = [peer_a.export(), peer_b.export()];
        let own_pre_crash_version = 100;
        let srv = RegisterServer::recovered(2, own_pre_crash_version, &transfers);
        let s = srv.state();
        assert!(
            s.version() > own_pre_crash_version,
            "resumes above the pre-crash beacon: {}",
            s.version()
        );
        assert!(s.version() > peer_a.version() && s.version() > peer_b.version());
        assert_eq!(s.reset_floor(), s.version(), "install stamps the reset floor");
        assert_eq!(s.latest(), tv(4, 0, 4));
        assert_eq!(s.pruned_floor(), tv(3, 0, 3), "inherits the maximum peer floor");
        assert!(s.updated_set(tv(2, 0, 2)).is_none(), "no tag resurrection below the floor");
        assert!(s.updated_set(tv(3, 0, 3)).is_some());
        assert!(
            s.updated_set(tv(4, 0, 4)).unwrap().contains(&ClientId::reader(0)),
            "peer registrations are adopted"
        );
    }

    /// Floors adopted through `install` must keep pruning live: the merge
    /// bypasses `record_floor`, so a stale cached minimum would make every
    /// later report look like a non-minimum raise and skip the rescan —
    /// wedging GC on freshly reconfigured servers forever.
    #[test]
    fn floors_inherited_by_install_do_not_wedge_pruning() {
        let mut peer = ServerState::with_gc(2);
        for i in 1..=6 {
            peer.update(tv(i, 0, i), ClientId::writer(0));
        }
        peer.record_floor(ClientId::writer(0), tv(2, 0, 2));
        peer.record_floor(ClientId::reader(0), tv(2, 0, 2));
        assert_eq!(peer.pruned_floor(), tv(2, 0, 2));

        let mut srv = RegisterServer::recovered(2, 0, &[peer.export()]);
        let s = srv.state_mut();
        assert_eq!(s.pruned_floor(), tv(2, 0, 2), "inherits the peer floor");
        // Both clients raise their (inherited) floors. No departures and no
        // first-time reports ever happen on this server, so these calls are
        // pruning's only chance to advance.
        s.record_floor(ClientId::writer(0), tv(5, 0, 5));
        s.record_floor(ClientId::reader(0), tv(4, 0, 4));
        assert_eq!(
            s.pruned_floor(),
            tv(4, 0, 4),
            "floor reports after a state transfer still advance pruning"
        );
    }

    /// A reader holding a pre-crash acknowledgement gets the whole rebuilt
    /// store with `from = 0` (the resynchronization signal); post-install
    /// acknowledgements take the normal incremental path.
    #[test]
    fn stale_acked_after_install_gets_a_full_refresh() {
        let mut peer = ServerState::new();
        peer.update(tv(1, 0, 1), ClientId::writer(0));
        peer.update(tv(2, 0, 2), ClientId::writer(0));
        let mut srv = RegisterServer::recovered(2, 50, &[peer.export()]);
        let reset = srv.state().reset_floor();
        assert!(reset > 50);

        // acked = 7: minted by the previous incarnation (7 < reset floor).
        let reply = srv
            .handle(
                ProcessId::reader(0),
                &Msg::ReadFastDelta {
                    handle: rhandle(0),
                    acked: 7,
                    floor: TaggedValue::initial(),
                    new_values: vec![],
                },
            )
            .unwrap();
        let Msg::ReadFastDeltaAck { delta, .. } = reply else { panic!() };
        assert_eq!(delta.from, 0, "full refresh signals the reset");
        assert!(delta.version >= reset);
        let values: Vec<TaggedValue> = delta.entries.iter().map(|r| r.value).collect();
        assert!(values.contains(&tv(1, 0, 1)) && values.contains(&tv(2, 0, 2)));

        // A post-install acknowledgement is served incrementally.
        let acked = delta.version;
        let reply = srv
            .handle(
                ProcessId::reader(0),
                &Msg::ReadFastDelta {
                    handle: rhandle(1),
                    acked,
                    floor: TaggedValue::initial(),
                    new_values: vec![],
                },
            )
            .unwrap();
        let Msg::ReadFastDeltaAck { delta, .. } = reply else { panic!() };
        assert_eq!(delta.from, acked, "post-install acks take the delta path");
    }

    /// Only peers may fetch state; the reply carries the exporter's full
    /// store and GC bookkeeping.
    #[test]
    fn state_fetch_is_server_only_and_exports_everything() {
        let mut srv = RegisterServer::with_gc(2);
        srv.handle(
            ProcessId::writer(0),
            &Msg::Update {
                handle: OpHandle { op: OpId { client: ClientId::writer(0), seq: 0 }, phase: 2 },
                value: tv(1, 0, 1),
                floor: tv(1, 0, 1),
            },
        );
        assert_eq!(
            srv.handle(ProcessId::reader(0), &Msg::StateFetch { nonce: 7 }),
            None,
            "clients may not fetch state"
        );
        let reply = srv.handle(ProcessId::server(3), &Msg::StateFetch { nonce: 7 }).unwrap();
        let Msg::StateSnapshot { nonce, state } = reply else { panic!() };
        assert_eq!(nonce, 7);
        assert_eq!(state.version, srv.state().version());
        assert_eq!(state.latest, tv(1, 0, 1));
        assert!(state.seen.contains(&ClientId::writer(0)));
        assert_eq!(state.floors.len(), 1);
        assert!(state.entries.iter().any(|r| r.value == tv(1, 0, 1)));
        // The fetching peer itself never entered the GC membership.
        assert_eq!(state.seen, vec![ClientId::writer(0)]);
    }

    /// An epoch header advances the server; from then on every reply —
    /// even to a bare legacy frame — carries the epoch, so stale clients
    /// learn of the reconfiguration from their next acknowledgement.
    #[test]
    fn epoch_adoption_is_monotone_and_tags_replies() {
        let mut srv = RegisterServer::with_gc(2);
        assert_eq!(srv.epoch(), ConfigEpoch::ZERO);
        // Epoch 0: replies are legacy, byte for byte.
        let q = Msg::Query { handle: rhandle(0) };
        let reply = srv.handle(ProcessId::reader(0), &q).unwrap();
        assert!(matches!(reply, Msg::QueryAck { .. }), "epoch 0 replies stay bare");

        // A frame at epoch 2 advances the server and gets a tagged reply.
        let e2 = ConfigEpoch::new(2);
        let reply = srv.handle(ProcessId::reader(0), &q.clone().in_epoch(e2)).unwrap();
        assert_eq!(reply.epoch(), e2);
        assert_eq!(srv.epoch(), e2);

        // A *stale* bare frame now still draws a tagged reply…
        let reply = srv.handle(ProcessId::reader(0), &q).unwrap();
        assert_eq!(reply.epoch(), e2, "post-reconfig replies always carry the epoch");
        // …and a lower-epoch frame cannot move the server backwards.
        srv.handle(ProcessId::reader(0), &q.clone().in_epoch(ConfigEpoch::new(1)));
        assert_eq!(srv.epoch(), e2);
        srv.set_epoch(ConfigEpoch::new(1));
        assert_eq!(srv.epoch(), e2, "set_epoch is monotone too");
    }

    /// Only peers may push installs; the install merges like a rejoin
    /// (version above the transfer's high-water, reset floor stamped).
    #[test]
    fn state_install_is_server_only_and_merges_like_rejoin() {
        let mut donor = RegisterServer::with_gc(2);
        donor.handle(
            ProcessId::writer(0),
            &Msg::Update {
                handle: OpHandle { op: OpId { client: ClientId::writer(0), seq: 0 }, phase: 2 },
                value: tv(3, 0, 30),
                floor: TaggedValue::initial(),
            },
        );
        let transfer = donor.state().export();

        let mut joiner = RegisterServer::with_gc(2);
        let install = Msg::StateInstall { nonce: 5, transfers: vec![transfer.clone()] };
        assert_eq!(
            joiner.handle(ProcessId::writer(0), &install),
            None,
            "clients may not install state"
        );
        let reply = joiner.handle(ProcessId::server(9), &install);
        assert_eq!(reply, Some(Msg::StateInstallAck { nonce: 5 }));
        assert_eq!(joiner.state().latest(), tv(3, 0, 30));
        assert!(joiner.state().version() > transfer.version, "version resumes above donor");
        assert_eq!(joiner.state().reset_floor(), joiner.state().version());
        // The coordinator never entered the GC membership.
        assert!(!joiner.state().export().seen.contains(&ClientId::writer(9)));
    }

    /// Departure round-trips through `handle`: the ack echoes the handle
    /// and the client is gone from the GC bookkeeping.
    #[test]
    fn depart_message_acknowledges_and_cleans_up() {
        let mut srv = RegisterServer::with_gc(2);
        srv.handle(
            ProcessId::reader(0),
            &Msg::ReadFastDelta {
                handle: rhandle(0),
                acked: 0,
                floor: TaggedValue::initial(),
                new_values: vec![],
            },
        );
        let handle = rhandle(1);
        let reply = srv.handle(ProcessId::reader(0), &Msg::Depart { handle });
        assert_eq!(reply, Some(Msg::DepartAck { handle }));
        assert!(srv.state().export().seen.is_empty(), "membership is clean after departure");
    }

    #[test]
    fn concurrent_tags_from_two_writers_order_by_writer_id() {
        let mut s = ServerState::new();
        s.update(tv(1, 1, 200), ClientId::writer(1));
        s.update(tv(1, 0, 100), ClientId::writer(0));
        // (1, w2) > (1, w1): latest stays with the higher writer id.
        assert_eq!(s.latest(), tv(1, 1, 200));
    }
}
