//! The register server automaton — Algorithm 2 of the paper, extended to
//! serve every protocol variant in the design space.
//!
//! The server keeps a *value store* (`valuevector` in the paper): every
//! tagged value it has ever received, each with an `updated` set recording
//! the clients registered on it. Three request types exist:
//!
//! - **Query** (pure): reply with the current maximum value `vali`. Used by
//!   the first round of slow writes and slow reads.
//! - **Update** (mutating): `update(val, c)` per Algorithm 2 — insert or
//!   merge the value, track the maximum, register the sender. Used by the
//!   second round of writes and by slow-read write-backs.
//! - **ReadFast** (mutating + query): apply `update(val, rj)` for every
//!   value in the reader's `valQueue`, register the reader on the current
//!   maximum value, then reply with the full store. This is the fast-read
//!   round of Algorithm 1/2; registering the reader before replying is what
//!   the admissibility degrees count (Lemma 8: *"every server which replies
//!   to r2 … adds r2 to its updated set before replying"*).

use std::collections::{BTreeMap, BTreeSet};

use mwr_sim::{Automaton, Context};
use mwr_types::{ClientId, ProcessId, TaggedValue};

use crate::events::ClientEvent;
use crate::msg::{Msg, Snapshot, ValueRecord};

/// One stored value's bookkeeping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Entry {
    updated: BTreeSet<ClientId>,
}

/// The state of a register server, independent of any transport.
///
/// [`RegisterServer`] wraps this for the simulator; `mwr-runtime` drives the
/// same logic over threads and sockets.
///
/// # Examples
///
/// ```
/// use mwr_core::ServerState;
/// use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};
///
/// let mut s = ServerState::new();
/// let v1 = TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(10));
/// s.update(v1, ClientId::writer(0));
/// assert_eq!(s.latest(), v1);
/// let snap = s.snapshot();
/// assert!(snap.contains(v1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerState {
    latest: TaggedValue,
    store: BTreeMap<TaggedValue, Entry>,
}

impl ServerState {
    /// A fresh server holding only the initial value `((0, ⊥), 0)` with an
    /// empty `updated` set (Algorithm 2, initialization).
    pub fn new() -> Self {
        let mut store = BTreeMap::new();
        store.insert(TaggedValue::initial(), Entry::default());
        ServerState { latest: TaggedValue::initial(), store }
    }

    /// The current maximum value `vali`.
    pub fn latest(&self) -> TaggedValue {
        self.latest
    }

    /// Algorithm 2's `update(val, c)`: insert `val` if new, advance the
    /// maximum if it is larger, and register `c` on it.
    ///
    /// The paper's pseudocode resets `updated` to `{c}` when a strictly
    /// larger value arrives and merges `c` otherwise; values below the
    /// current maximum that were never seen before are still stored (the
    /// store is append-only in the full-info spirit).
    pub fn update(&mut self, val: TaggedValue, c: ClientId) {
        let entry = self.store.entry(val).or_default();
        entry.updated.insert(c);
        if val > self.latest {
            self.latest = val;
        }
    }

    /// Registers `c` on the current maximum value without changing it —
    /// the fast-read bookkeeping applied before a `ReadFastAck`.
    pub fn register_on_latest(&mut self, c: ClientId) {
        let latest = self.latest;
        self.update(latest, c);
    }

    /// The full store as reported to fast reads.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            entries: self
                .store
                .iter()
                .map(|(value, entry)| ValueRecord {
                    value: *value,
                    updated: entry.updated.iter().copied().collect(),
                })
                .collect(),
        }
    }

    /// Number of distinct values stored.
    pub fn stored_values(&self) -> usize {
        self.store.len()
    }

    /// The `updated` set registered for `val`, if stored.
    pub fn updated_set(&self, val: TaggedValue) -> Option<Vec<ClientId>> {
        self.store.get(&val).map(|e| e.updated.iter().copied().collect())
    }

    /// Garbage-collects values strictly below `floor`, keeping the current
    /// maximum unconditionally. Returns how many entries were dropped.
    ///
    /// The paper's full-info model is deliberately append-only ("the server
    /// just appends everything … never deleting any information", §4.1);
    /// real deployments bound the store instead. Pruning is safe once every
    /// reader has observed a value `≥ floor`: the fast read's fallback loop
    /// then never needs the pruned entries. The experiments leave pruning
    /// off to stay faithful to the analysis.
    pub fn prune_below(&mut self, floor: TaggedValue) -> usize {
        let latest = self.latest;
        let before = self.store.len();
        self.store.retain(|val, _| *val >= floor || *val == latest);
        before - self.store.len()
    }
}

impl Default for ServerState {
    fn default() -> Self {
        ServerState::new()
    }
}

/// The server automaton for the simulator: [`ServerState`] plus the message
/// handling of Algorithm 2.
#[derive(Debug, Clone, Default)]
pub struct RegisterServer {
    state: ServerState,
}

impl RegisterServer {
    /// Creates a fresh server.
    pub fn new() -> Self {
        RegisterServer { state: ServerState::new() }
    }

    /// Read access to the server's state (useful in tests).
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Computes the reply for one request, mutating state as required.
    ///
    /// Returns `None` for messages a server never receives (acks, invokes);
    /// those indicate a routing bug and are ignored defensively here — the
    /// simulator's topology enforcement catches genuine mistakes loudly.
    pub fn handle(&mut self, from: ProcessId, msg: &Msg) -> Option<Msg> {
        let client = from.as_client()?;
        match msg {
            Msg::Query { handle } => Some(Msg::QueryAck {
                handle: *handle,
                latest: self.state.latest(),
            }),
            Msg::Update { handle, value } => {
                self.state.update(*value, client);
                Some(Msg::UpdateAck { handle: *handle })
            }
            Msg::ReadFast { handle, val_queue } => {
                for val in val_queue {
                    self.state.update(*val, client);
                }
                self.state.register_on_latest(client);
                Some(Msg::ReadFastAck {
                    handle: *handle,
                    snapshot: self.state.snapshot(),
                })
            }
            _ => None,
        }
    }
}

impl Automaton<Msg, ClientEvent> for RegisterServer {
    fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, ClientEvent>) {
        if let Some(reply) = self.handle(from, &msg) {
            ctx.send(from, reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::{Tag, Value, WriterId};

    fn tv(ts: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts, WriterId::new(w)), Value::new(v))
    }

    #[test]
    fn initial_state_stores_bottom() {
        let s = ServerState::new();
        assert!(s.latest().tag().is_initial());
        assert_eq!(s.stored_values(), 1);
        assert_eq!(s.updated_set(TaggedValue::initial()), Some(vec![]));
    }

    #[test]
    fn update_advances_latest_monotonically() {
        let mut s = ServerState::new();
        s.update(tv(2, 0, 20), ClientId::writer(0));
        assert_eq!(s.latest(), tv(2, 0, 20));
        // A smaller value arrives late: stored, but latest unchanged.
        s.update(tv(1, 1, 10), ClientId::writer(1));
        assert_eq!(s.latest(), tv(2, 0, 20));
        assert_eq!(s.stored_values(), 3);
    }

    #[test]
    fn update_merges_updated_sets() {
        let mut s = ServerState::new();
        let v = tv(1, 0, 10);
        s.update(v, ClientId::writer(0));
        s.update(v, ClientId::reader(1));
        assert_eq!(
            s.updated_set(v),
            Some(vec![ClientId::reader(1), ClientId::writer(0)])
        );
    }

    #[test]
    fn register_on_latest_targets_current_maximum() {
        let mut s = ServerState::new();
        s.update(tv(3, 0, 30), ClientId::writer(0));
        s.register_on_latest(ClientId::reader(0));
        assert!(s
            .updated_set(tv(3, 0, 30))
            .unwrap()
            .contains(&ClientId::reader(0)));
        // The initial value's set is untouched.
        assert_eq!(s.updated_set(TaggedValue::initial()), Some(vec![]));
    }

    #[test]
    fn query_does_not_mutate() {
        let mut srv = RegisterServer::new();
        let before = srv.state().clone();
        let handle = crate::msg::OpHandle {
            op: crate::msg::OpId { client: ClientId::reader(0), seq: 0 },
            phase: 1,
        };
        let reply = srv.handle(ProcessId::reader(0), &Msg::Query { handle });
        assert_eq!(
            reply,
            Some(Msg::QueryAck { handle, latest: TaggedValue::initial() })
        );
        assert_eq!(srv.state(), &before);
    }

    #[test]
    fn read_fast_applies_val_queue_then_registers_then_snapshots() {
        let mut srv = RegisterServer::new();
        let w = ProcessId::writer(0);
        let r = ProcessId::reader(0);
        let handle = crate::msg::OpHandle {
            op: crate::msg::OpId { client: ClientId::writer(0), seq: 0 },
            phase: 2,
        };
        srv.handle(w, &Msg::Update { handle, value: tv(1, 0, 11) });

        let rhandle = crate::msg::OpHandle {
            op: crate::msg::OpId { client: ClientId::reader(0), seq: 0 },
            phase: 1,
        };
        let reply = srv
            .handle(r, &Msg::ReadFast { handle: rhandle, val_queue: vec![TaggedValue::initial()] })
            .unwrap();
        let Msg::ReadFastAck { snapshot, .. } = reply else {
            panic!("expected ReadFastAck");
        };
        // The reader is registered on the current maximum before the reply
        // (the property Lemma 8 relies on).
        assert!(snapshot
            .updated_for(tv(1, 0, 11))
            .unwrap()
            .contains(&ClientId::reader(0)));
        // The val_queue registration landed on the initial value too.
        assert!(snapshot
            .updated_for(TaggedValue::initial())
            .unwrap()
            .contains(&ClientId::reader(0)));
    }

    #[test]
    fn server_ignores_client_only_messages() {
        let mut srv = RegisterServer::new();
        assert_eq!(srv.handle(ProcessId::reader(0), &Msg::InvokeRead), None);
        let handle = crate::msg::OpHandle {
            op: crate::msg::OpId { client: ClientId::reader(0), seq: 0 },
            phase: 1,
        };
        assert_eq!(srv.handle(ProcessId::reader(0), &Msg::UpdateAck { handle }), None);
    }

    #[test]
    fn prune_below_drops_stale_entries_but_keeps_latest() {
        let mut s = ServerState::new();
        for i in 1..=5 {
            s.update(tv(i, 0, i * 10), ClientId::writer(0));
        }
        assert_eq!(s.stored_values(), 6); // initial + 5
        let dropped = s.prune_below(tv(4, 0, 40));
        assert_eq!(dropped, 4); // initial, ts1..ts3
        assert_eq!(s.latest(), tv(5, 0, 50));
        assert!(s.updated_set(tv(4, 0, 40)).is_some());
        assert!(s.updated_set(tv(3, 0, 30)).is_none());
        // The latest survives even a floor above it.
        let dropped = s.prune_below(tv(9, 0, 0));
        assert_eq!(dropped, 1);
        assert!(s.updated_set(s.latest()).is_some());
    }

    #[test]
    fn concurrent_tags_from_two_writers_order_by_writer_id() {
        let mut s = ServerState::new();
        s.update(tv(1, 1, 200), ClientId::writer(1));
        s.update(tv(1, 0, 100), ClientId::writer(0));
        // (1, w2) > (1, w1): latest stays with the higher writer id.
        assert_eq!(s.latest(), tv(1, 1, 200));
    }
}
