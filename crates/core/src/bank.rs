//! A bank of per-register server automata: one keyspace server process.
//!
//! The single-register [`RegisterServer`] is the paper's Algorithm 2; a
//! keyspace server is simply a *map* of them, keyed by [`RegisterId`] and
//! instantiated lazily on first contact. Every piece of per-register state —
//! the value store, registration versions, GC floors and membership — lives
//! inside that register's own [`RegisterServer`], so keys cannot interfere:
//! a heavy writer on one register never advances or wedges another
//! register's GC floor, and recovery transfers state register by register.
//!
//! Wire compatibility: frames wrapped in [`Msg::ForRegister`] are routed to
//! the named register; bare legacy frames (discriminants 0–13) are routed to
//! [`RegisterId::DEFAULT`], so a bank is a drop-in replacement for a
//! single-register server.

use std::collections::BTreeMap;

use mwr_types::{ConfigEpoch, ProcessId, RegisterId};

use crate::msg::{Msg, RegisterTransfer, StateTransfer};
use crate::routing::Router;
use crate::server::RegisterServer;

/// One keyspace server: a lazily populated map of per-register
/// [`RegisterServer`]s behind a shared [`Router`].
///
/// # Examples
///
/// ```
/// use mwr_core::{Msg, OpHandle, OpId, Router, ServerBank};
/// use mwr_types::{ClientId, ProcessId, RegisterId, Tag, TaggedValue, Value, WriterId};
///
/// let mut bank = ServerBank::new(4, Router::new(5, 5, 1));
/// let handle = OpHandle { op: OpId { client: ClientId::writer(0), seq: 0 }, phase: 1 };
/// let tagged = TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(7));
/// let update = Msg::Update { handle, value: tagged, floor: TaggedValue::initial() };
///
/// // A wrapped frame lands on its register; the reply is wrapped the same way.
/// let msg = Msg::ForRegister { register: RegisterId::new(3), inner: Box::new(update) };
/// let reply = bank.handle(ProcessId::writer(0), &msg).unwrap();
/// assert!(matches!(reply, Msg::ForRegister { register, .. } if register == RegisterId::new(3)));
/// assert_eq!(bank.register(RegisterId::new(3)).unwrap().state().latest(), tagged);
/// ```
#[derive(Debug, Clone)]
pub struct ServerBank {
    /// Client population (`R + W`) for per-register membership-aware GC.
    population: usize,
    router: Router,
    /// Version floor inherited from a pre-crash incarnation: every register
    /// created after recovery — even one absent from every peer transfer —
    /// resumes its version counter above it, so a reader's stale
    /// acknowledgements can never alias fresh registration versions.
    version_floor: u64,
    registers: BTreeMap<RegisterId, RegisterServer>,
    /// The highest configuration epoch this bank has observed. Epochs live
    /// at the bank (process) level — the per-register automata stay at
    /// epoch 0 and the bank tags every outgoing reply — because a
    /// reconfiguration changes the *server set*, which all registers share.
    epoch: ConfigEpoch,
}

impl ServerBank {
    /// Creates an empty bank with acknowledged-floor GC enabled per register
    /// for `population` clients.
    pub fn new(population: usize, router: Router) -> Self {
        ServerBank {
            population,
            router,
            version_floor: 0,
            registers: BTreeMap::new(),
            epoch: ConfigEpoch::ZERO,
        }
    }

    /// Creates a recovering bank: each register named in `transfers` is
    /// rebuilt from its own quorum of peer snapshots (exactly the
    /// single-register [`RegisterServer::recovered`] path), and
    /// `version_floor` — the crashed bank's version beacon — bounds every
    /// register's version counter, including registers instantiated lazily
    /// later.
    pub fn recovered(
        population: usize,
        router: Router,
        version_floor: u64,
        transfers: &BTreeMap<RegisterId, Vec<StateTransfer>>,
    ) -> Self {
        let registers = transfers
            .iter()
            .map(|(&register, states)| {
                (register, RegisterServer::recovered(population, version_floor, states))
            })
            .collect();
        ServerBank {
            population,
            router,
            version_floor,
            registers,
            epoch: ConfigEpoch::ZERO,
        }
    }

    /// The bank's routing table.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The highest configuration epoch this bank has observed.
    pub fn epoch(&self) -> ConfigEpoch {
        self.epoch
    }

    /// Advances the bank's epoch (monotone; a lower epoch is a no-op).
    pub fn set_epoch(&mut self, epoch: ConfigEpoch) {
        self.epoch = self.epoch.adopt(epoch);
    }

    /// Re-keys the bank onto a reconfigured member set. Shard *hashing* is
    /// untouched (`shard_of` depends only on the shard count), so existing
    /// per-register state stays valid; only group membership — who answers
    /// future `ShardFetch`es — moves.
    pub fn set_router(&mut self, router: Router) {
        self.router = router;
    }

    /// Read access to one register's server, if it has been instantiated.
    pub fn register(&self, register: RegisterId) -> Option<&RegisterServer> {
        self.registers.get(&register)
    }

    /// Iterates over the instantiated registers.
    pub fn registers(&self) -> impl Iterator<Item = (RegisterId, &RegisterServer)> {
        self.registers.iter().map(|(&r, s)| (r, s))
    }

    /// The bank's version beacon: the maximum registration version across
    /// all registers (and any inherited recovery floor). Publishing a single
    /// maximum is sound because [`RegisterServer::recovered`] treats the
    /// floor as a lower bound — an overestimate only makes a rebuilt
    /// register resume its counter higher.
    pub fn max_version(&self) -> u64 {
        self.registers
            .values()
            .map(|s| s.state().version())
            .max()
            .unwrap_or(0)
            .max(self.version_floor)
    }

    fn register_mut(&mut self, register: RegisterId) -> &mut RegisterServer {
        let population = self.population;
        let version_floor = self.version_floor;
        self.registers.entry(register).or_insert_with(|| {
            if version_floor == 0 {
                RegisterServer::with_gc(population)
            } else {
                RegisterServer::recovered(population, version_floor, &[])
            }
        })
    }

    /// Computes the reply for one request, routing by register id.
    ///
    /// [`Msg::ForRegister`] frames are unwrapped, handled by the named
    /// register, and the reply re-wrapped with the same id (so client
    /// matchers can discard cross-register strays). [`Msg::ShardFetch`] is
    /// answered with every instantiated register of that shard. Bare legacy
    /// frames go to [`RegisterId::DEFAULT`] and reply bare.
    ///
    /// Epoch handling mirrors [`RegisterServer::handle`]: an
    /// [`Msg::InEpoch`] header advances the bank's epoch before the payload
    /// is processed, and past epoch 0 every reply is epoch-tagged.
    pub fn handle(&mut self, from: ProcessId, msg: &Msg) -> Option<Msg> {
        if let Msg::InEpoch { epoch, inner } = msg {
            self.epoch = self.epoch.adopt(*epoch);
            return self.handle(from, inner);
        }
        self.handle_payload(from, msg).map(|reply| reply.in_epoch(self.epoch))
    }

    fn handle_payload(&mut self, from: ProcessId, msg: &Msg) -> Option<Msg> {
        match msg {
            Msg::ForRegister { register, inner } => {
                let reply = self.register_mut(*register).handle(from, inner)?;
                Some(Msg::ForRegister { register: *register, inner: Box::new(reply) })
            }
            Msg::ShardFetch { shard, nonce } => {
                // Server-to-server recovery traffic only, as for the legacy
                // `StateFetch`.
                from.as_server()?;
                let registers = self
                    .registers
                    .iter()
                    .filter(|(&r, _)| self.router.shard_of(r) == *shard)
                    .map(|(&r, s)| RegisterTransfer { register: r, state: s.state().export() })
                    .collect();
                Some(Msg::ShardSnapshot { nonce: *nonce, shard: *shard, registers })
            }
            Msg::ShardInstall { nonce, shard, registers } => {
                // The reconfiguration coordinator's push of one shard's
                // merged state into a server gaining that shard (a joining
                // member, or a survivor the rendezvous reshuffle assigns new
                // shards). Each register installs with the rejoin merge —
                // running registers only gain information.
                from.as_server()?;
                for t in registers {
                    self.register_mut(t.register).install_from(std::slice::from_ref(&t.state));
                }
                Some(Msg::ShardInstallAck { nonce: *nonce, shard: *shard })
            }
            // A reply that somehow reaches a server; never handled.
            Msg::ShardSnapshot { .. } => None,
            // Legacy single-register traffic (including `StateFetch`, whose
            // own server-only gate lives in `RegisterServer::handle`).
            legacy => self.register_mut(RegisterId::DEFAULT).handle(from, legacy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{OpHandle, OpId};
    use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};

    fn update(seq: u64, ts: u64, v: u64) -> Msg {
        Msg::Update {
            handle: OpHandle { op: OpId { client: ClientId::writer(0), seq }, phase: 1 },
            value: TaggedValue::new(Tag::new(ts, WriterId::new(0)), Value::new(v)),
            floor: TaggedValue::initial(),
        }
    }

    fn wrap(register: u32, inner: Msg) -> Msg {
        Msg::ForRegister { register: RegisterId::new(register), inner: Box::new(inner) }
    }

    #[test]
    fn legacy_frames_land_on_the_default_register() {
        let mut bank = ServerBank::new(2, Router::new(3, 3, 1));
        let reply = bank.handle(ProcessId::writer(0), &update(0, 1, 10)).unwrap();
        assert!(matches!(reply, Msg::UpdateAck { .. }), "bare frame replies bare");
        let latest = bank.register(RegisterId::DEFAULT).unwrap().state().latest();
        assert_eq!(latest.value(), Value::new(10));
        assert_eq!(bank.registers().count(), 1);
    }

    #[test]
    fn registers_are_isolated() {
        let mut bank = ServerBank::new(2, Router::new(3, 3, 4));
        bank.handle(ProcessId::writer(0), &wrap(1, update(0, 1, 10)));
        bank.handle(ProcessId::writer(0), &wrap(2, update(1, 5, 50)));
        let k1 = bank.register(RegisterId::new(1)).unwrap().state();
        let k2 = bank.register(RegisterId::new(2)).unwrap().state();
        assert_eq!(k1.latest().value(), Value::new(10));
        assert_eq!(k2.latest().value(), Value::new(50));
        assert!(bank.register(RegisterId::new(3)).is_none(), "lazy: untouched keys absent");
    }

    #[test]
    fn shard_fetch_is_server_only_and_filtered_by_shard() {
        let router = Router::new(5, 3, 8);
        let mut bank = ServerBank::new(2, router);
        // Touch a handful of registers across shards.
        for k in 0..16 {
            bank.handle(ProcessId::writer(0), &wrap(k, update(u64::from(k), 1, u64::from(k))));
        }
        let fetch = Msg::ShardFetch { shard: 2, nonce: 9 };
        assert!(bank.handle(ProcessId::writer(0), &fetch).is_none(), "clients may not fetch");
        let Some(Msg::ShardSnapshot { nonce, shard, registers }) =
            bank.handle(ProcessId::server(4), &fetch)
        else {
            panic!("peer fetch must be answered");
        };
        assert_eq!((nonce, shard), (9, 2));
        for t in &registers {
            assert_eq!(router.shard_of(t.register), 2, "only shard 2's registers ship");
        }
        let expected =
            (0..16).filter(|&k| router.shard_of(RegisterId::new(k)) == 2).count();
        assert_eq!(registers.len(), expected);
    }

    #[test]
    fn epoch_lives_at_the_bank_and_tags_wrapped_replies() {
        let mut bank = ServerBank::new(2, Router::new(3, 3, 4));
        let e1 = ConfigEpoch::new(1);
        let framed = wrap(1, update(0, 1, 10)).in_epoch(e1);
        let reply = bank.handle(ProcessId::writer(0), &framed).unwrap();
        assert_eq!(reply.epoch(), e1);
        assert_eq!(bank.epoch(), e1);
        let (_, inner) = reply.into_epoch_parts();
        assert!(matches!(inner, Msg::ForRegister { .. }), "epoch wraps the register frame");
        // The per-register automaton stays at epoch 0: the bank is the
        // process-level authority.
        assert_eq!(bank.register(RegisterId::new(1)).unwrap().epoch(), ConfigEpoch::ZERO);
        // Bare legacy traffic now draws tagged replies too.
        let reply = bank.handle(ProcessId::writer(0), &update(1, 2, 20)).unwrap();
        assert_eq!(reply.epoch(), e1);
    }

    #[test]
    fn shard_install_is_server_only_and_lands_per_register() {
        let router = Router::new(5, 3, 8);
        let mut donor = ServerBank::new(2, router);
        for k in 0..8 {
            donor.handle(ProcessId::writer(0), &wrap(k, update(u64::from(k), 2, u64::from(k))));
        }
        let hot = router.shard_of(RegisterId::new(0));
        let Some(Msg::ShardSnapshot { registers, shard, .. }) =
            donor.handle(ProcessId::server(4), &Msg::ShardFetch { shard: hot, nonce: 1 })
        else {
            panic!("peer fetch must be answered");
        };
        assert!(!registers.is_empty(), "key 0's shard saw traffic");

        let mut joiner = ServerBank::new(2, router);
        let install = Msg::ShardInstall { nonce: 7, shard, registers: registers.clone() };
        assert!(joiner.handle(ProcessId::writer(0), &install).is_none(), "clients may not install");
        let reply = joiner.handle(ProcessId::server(4), &install);
        assert_eq!(reply, Some(Msg::ShardInstallAck { nonce: 7, shard: hot }));
        for t in &registers {
            let state = joiner.register(t.register).expect("installed").state();
            assert_eq!(state.latest(), t.state.latest, "per-register state landed");
        }
    }

    #[test]
    fn recovered_bank_floors_lazy_registers() {
        let bank = ServerBank::recovered(2, Router::new(3, 3, 1), 41, &BTreeMap::new());
        assert_eq!(bank.max_version(), 41);
        let mut bank = bank;
        bank.handle(ProcessId::writer(0), &wrap(5, update(0, 1, 10)));
        // The lazily created register resumed above the beacon: its reset
        // floor marks every pre-crash acknowledgement stale.
        let state = bank.register(RegisterId::new(5)).unwrap().state();
        assert!(state.version() > 41);
        assert!(state.reset_floor() > 41);
    }
}
