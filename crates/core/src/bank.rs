//! A bank of per-register server automata: one keyspace server process.
//!
//! The single-register [`RegisterServer`] is the paper's Algorithm 2; a
//! keyspace server is simply a *map* of them, keyed by [`RegisterId`] and
//! instantiated lazily on first contact. Every piece of per-register state —
//! the value store, registration versions, GC floors and membership — lives
//! inside that register's own [`RegisterServer`], so keys cannot interfere:
//! a heavy writer on one register never advances or wedges another
//! register's GC floor, and recovery transfers state register by register.
//!
//! Wire compatibility: frames wrapped in [`Msg::ForRegister`] are routed to
//! the named register; bare legacy frames (discriminants 0–13) are routed to
//! [`RegisterId::DEFAULT`], so a bank is a drop-in replacement for a
//! single-register server.

use std::collections::BTreeMap;

use mwr_types::{ProcessId, RegisterId};

use crate::msg::{Msg, RegisterTransfer, StateTransfer};
use crate::routing::Router;
use crate::server::RegisterServer;

/// One keyspace server: a lazily populated map of per-register
/// [`RegisterServer`]s behind a shared [`Router`].
///
/// # Examples
///
/// ```
/// use mwr_core::{Msg, OpHandle, OpId, Router, ServerBank};
/// use mwr_types::{ClientId, ProcessId, RegisterId, Tag, TaggedValue, Value, WriterId};
///
/// let mut bank = ServerBank::new(4, Router::new(5, 5, 1));
/// let handle = OpHandle { op: OpId { client: ClientId::writer(0), seq: 0 }, phase: 1 };
/// let tagged = TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(7));
/// let update = Msg::Update { handle, value: tagged, floor: TaggedValue::initial() };
///
/// // A wrapped frame lands on its register; the reply is wrapped the same way.
/// let msg = Msg::ForRegister { register: RegisterId::new(3), inner: Box::new(update) };
/// let reply = bank.handle(ProcessId::writer(0), &msg).unwrap();
/// assert!(matches!(reply, Msg::ForRegister { register, .. } if register == RegisterId::new(3)));
/// assert_eq!(bank.register(RegisterId::new(3)).unwrap().state().latest(), tagged);
/// ```
#[derive(Debug, Clone)]
pub struct ServerBank {
    /// Client population (`R + W`) for per-register membership-aware GC.
    population: usize,
    router: Router,
    /// Version floor inherited from a pre-crash incarnation: every register
    /// created after recovery — even one absent from every peer transfer —
    /// resumes its version counter above it, so a reader's stale
    /// acknowledgements can never alias fresh registration versions.
    version_floor: u64,
    registers: BTreeMap<RegisterId, RegisterServer>,
}

impl ServerBank {
    /// Creates an empty bank with acknowledged-floor GC enabled per register
    /// for `population` clients.
    pub fn new(population: usize, router: Router) -> Self {
        ServerBank { population, router, version_floor: 0, registers: BTreeMap::new() }
    }

    /// Creates a recovering bank: each register named in `transfers` is
    /// rebuilt from its own quorum of peer snapshots (exactly the
    /// single-register [`RegisterServer::recovered`] path), and
    /// `version_floor` — the crashed bank's version beacon — bounds every
    /// register's version counter, including registers instantiated lazily
    /// later.
    pub fn recovered(
        population: usize,
        router: Router,
        version_floor: u64,
        transfers: &BTreeMap<RegisterId, Vec<StateTransfer>>,
    ) -> Self {
        let registers = transfers
            .iter()
            .map(|(&register, states)| {
                (register, RegisterServer::recovered(population, version_floor, states))
            })
            .collect();
        ServerBank { population, router, version_floor, registers }
    }

    /// The bank's routing table.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Read access to one register's server, if it has been instantiated.
    pub fn register(&self, register: RegisterId) -> Option<&RegisterServer> {
        self.registers.get(&register)
    }

    /// Iterates over the instantiated registers.
    pub fn registers(&self) -> impl Iterator<Item = (RegisterId, &RegisterServer)> {
        self.registers.iter().map(|(&r, s)| (r, s))
    }

    /// The bank's version beacon: the maximum registration version across
    /// all registers (and any inherited recovery floor). Publishing a single
    /// maximum is sound because [`RegisterServer::recovered`] treats the
    /// floor as a lower bound — an overestimate only makes a rebuilt
    /// register resume its counter higher.
    pub fn max_version(&self) -> u64 {
        self.registers
            .values()
            .map(|s| s.state().version())
            .max()
            .unwrap_or(0)
            .max(self.version_floor)
    }

    fn register_mut(&mut self, register: RegisterId) -> &mut RegisterServer {
        let population = self.population;
        let version_floor = self.version_floor;
        self.registers.entry(register).or_insert_with(|| {
            if version_floor == 0 {
                RegisterServer::with_gc(population)
            } else {
                RegisterServer::recovered(population, version_floor, &[])
            }
        })
    }

    /// Computes the reply for one request, routing by register id.
    ///
    /// [`Msg::ForRegister`] frames are unwrapped, handled by the named
    /// register, and the reply re-wrapped with the same id (so client
    /// matchers can discard cross-register strays). [`Msg::ShardFetch`] is
    /// answered with every instantiated register of that shard. Bare legacy
    /// frames go to [`RegisterId::DEFAULT`] and reply bare.
    pub fn handle(&mut self, from: ProcessId, msg: &Msg) -> Option<Msg> {
        match msg {
            Msg::ForRegister { register, inner } => {
                let reply = self.register_mut(*register).handle(from, inner)?;
                Some(Msg::ForRegister { register: *register, inner: Box::new(reply) })
            }
            Msg::ShardFetch { shard, nonce } => {
                // Server-to-server recovery traffic only, as for the legacy
                // `StateFetch`.
                from.as_server()?;
                let registers = self
                    .registers
                    .iter()
                    .filter(|(&r, _)| self.router.shard_of(r) == *shard)
                    .map(|(&r, s)| RegisterTransfer { register: r, state: s.state().export() })
                    .collect();
                Some(Msg::ShardSnapshot { nonce: *nonce, shard: *shard, registers })
            }
            // A reply that somehow reaches a server; never handled.
            Msg::ShardSnapshot { .. } => None,
            // Legacy single-register traffic (including `StateFetch`, whose
            // own server-only gate lives in `RegisterServer::handle`).
            legacy => self.register_mut(RegisterId::DEFAULT).handle(from, legacy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{OpHandle, OpId};
    use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};

    fn update(seq: u64, ts: u64, v: u64) -> Msg {
        Msg::Update {
            handle: OpHandle { op: OpId { client: ClientId::writer(0), seq }, phase: 1 },
            value: TaggedValue::new(Tag::new(ts, WriterId::new(0)), Value::new(v)),
            floor: TaggedValue::initial(),
        }
    }

    fn wrap(register: u32, inner: Msg) -> Msg {
        Msg::ForRegister { register: RegisterId::new(register), inner: Box::new(inner) }
    }

    #[test]
    fn legacy_frames_land_on_the_default_register() {
        let mut bank = ServerBank::new(2, Router::new(3, 3, 1));
        let reply = bank.handle(ProcessId::writer(0), &update(0, 1, 10)).unwrap();
        assert!(matches!(reply, Msg::UpdateAck { .. }), "bare frame replies bare");
        let latest = bank.register(RegisterId::DEFAULT).unwrap().state().latest();
        assert_eq!(latest.value(), Value::new(10));
        assert_eq!(bank.registers().count(), 1);
    }

    #[test]
    fn registers_are_isolated() {
        let mut bank = ServerBank::new(2, Router::new(3, 3, 4));
        bank.handle(ProcessId::writer(0), &wrap(1, update(0, 1, 10)));
        bank.handle(ProcessId::writer(0), &wrap(2, update(1, 5, 50)));
        let k1 = bank.register(RegisterId::new(1)).unwrap().state();
        let k2 = bank.register(RegisterId::new(2)).unwrap().state();
        assert_eq!(k1.latest().value(), Value::new(10));
        assert_eq!(k2.latest().value(), Value::new(50));
        assert!(bank.register(RegisterId::new(3)).is_none(), "lazy: untouched keys absent");
    }

    #[test]
    fn shard_fetch_is_server_only_and_filtered_by_shard() {
        let router = Router::new(5, 3, 8);
        let mut bank = ServerBank::new(2, router);
        // Touch a handful of registers across shards.
        for k in 0..16 {
            bank.handle(ProcessId::writer(0), &wrap(k, update(u64::from(k), 1, u64::from(k))));
        }
        let fetch = Msg::ShardFetch { shard: 2, nonce: 9 };
        assert!(bank.handle(ProcessId::writer(0), &fetch).is_none(), "clients may not fetch");
        let Some(Msg::ShardSnapshot { nonce, shard, registers }) =
            bank.handle(ProcessId::server(4), &fetch)
        else {
            panic!("peer fetch must be answered");
        };
        assert_eq!((nonce, shard), (9, 2));
        for t in &registers {
            assert_eq!(router.shard_of(t.register), 2, "only shard 2's registers ship");
        }
        let expected =
            (0..16).filter(|&k| router.shard_of(RegisterId::new(k)) == 2).count();
        assert_eq!(registers.len(), expected);
    }

    #[test]
    fn recovered_bank_floors_lazy_registers() {
        let bank = ServerBank::recovered(2, Router::new(3, 3, 1), 41, &BTreeMap::new());
        assert_eq!(bank.max_version(), 41);
        let mut bank = bank;
        bank.handle(ProcessId::writer(0), &wrap(5, update(0, 1, 10)));
        // The lazily created register resumed above the beacon: its reset
        // floor marks every pre-crash acknowledgement stale.
        let state = bank.register(RegisterId::new(5)).unwrap().state();
        assert!(state.version() > 41);
        assert!(state.reset_floor() > 41);
    }
}
