//! Named protocols: the four design points of Table 1 / Fig 2, as concrete
//! combinations of write and read modes.

use std::fmt;

use mwr_types::ClusterConfig;

use crate::client::{ReadMode, WriteMode};

/// A register emulation protocol from the paper's design space.
///
/// Naming follows the paper: `WxRy` means writes take `x` round-trips and
/// reads take `y`. Multi-writer variants that are *provably not atomic*
/// (fast multi-writer writes — the paper's main theorem) are still
/// implemented, as violation witnesses for the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Slow write, slow read — the Lynch–Shvartsman '97 multi-writer ABD.
    /// Atomic whenever `t < S/2` (Table 1, row 1).
    W2R2,
    /// Slow write, fast read — **the paper's Algorithm 1 & 2**. Atomic iff
    /// `R < S/t − 2` (Table 1, row 3).
    W2R1,
    /// Slow write, *adaptive* read: one round-trip when the maximum is
    /// safely admissible, an extra write-back round otherwise. Atomic for
    /// any `R` (validated empirically across the Table 1 grid); the
    /// semifast idea of Georgiou et al., with the unbounded slow fallback
    /// their MWMR impossibility makes unavoidable (paper §6).
    W2Ra,
    /// Fast write, slow read, **single writer** — Attiya–Bar-Noy–Dolev.
    /// Atomic whenever `t < S/2`; the single-writer counterpart that shows
    /// fast writes are only impossible with `W ≥ 2`.
    AbdSwmrW1R2,
    /// Fast write, fast read, **single writer** — Dutta et al. 2010. Atomic
    /// iff `R < S/t − 2`.
    DuttaSwmrW1R1,
    /// Fast write, slow read with **multiple writers** — the design point
    /// the paper proves impossible (Theorem 1). Implemented naively
    /// (writer-local timestamps) as a violation witness.
    NaiveW1R2,
    /// Fast write, fast read with **multiple writers** — impossible per
    /// Dutta et al.; violation witness.
    NaiveW1R1,
}

impl Protocol {
    /// All protocols, in Table 1 order (the adaptive extension follows the
    /// paper's rows).
    pub const ALL: [Protocol; 7] = [
        Protocol::W2R2,
        Protocol::W2R1,
        Protocol::W2Ra,
        Protocol::AbdSwmrW1R2,
        Protocol::DuttaSwmrW1R1,
        Protocol::NaiveW1R2,
        Protocol::NaiveW1R1,
    ];

    /// The write mode this protocol uses.
    pub fn write_mode(self) -> WriteMode {
        match self {
            Protocol::W2R2 | Protocol::W2R1 | Protocol::W2Ra => WriteMode::Slow,
            Protocol::AbdSwmrW1R2
            | Protocol::DuttaSwmrW1R1
            | Protocol::NaiveW1R2
            | Protocol::NaiveW1R1 => WriteMode::Fast,
        }
    }

    /// The read mode this protocol uses.
    pub fn read_mode(self) -> ReadMode {
        match self {
            Protocol::W2R2 | Protocol::AbdSwmrW1R2 | Protocol::NaiveW1R2 => ReadMode::Slow,
            Protocol::W2R1 | Protocol::DuttaSwmrW1R1 | Protocol::NaiveW1R1 => ReadMode::Fast,
            Protocol::W2Ra => ReadMode::Adaptive,
        }
    }

    /// Round-trips a write needs.
    pub fn write_round_trips(self) -> usize {
        match self.write_mode() {
            WriteMode::Fast => 1,
            WriteMode::Slow => 2,
        }
    }

    /// Round-trips a read needs (the worst case: adaptive reads usually
    /// finish in one).
    pub fn read_round_trips(self) -> usize {
        match self.read_mode() {
            ReadMode::Fast => 1,
            ReadMode::Slow | ReadMode::Adaptive => 2,
        }
    }

    /// Whether the protocol is only meaningful with a single writer.
    pub fn is_single_writer(self) -> bool {
        matches!(self, Protocol::AbdSwmrW1R2 | Protocol::DuttaSwmrW1R1)
    }

    /// The theory's verdict: is this protocol atomic under `config`?
    ///
    /// This is the *expected* column of the Table 1 experiment; the
    /// `table1_design_space` binary compares it against checker verdicts on
    /// simulated executions.
    pub fn expected_atomic(self, config: &ClusterConfig) -> bool {
        let majority = config.majority_quorums_intersect();
        match self {
            Protocol::W2R2 => majority,
            Protocol::W2R1 => majority && config.fast_read_feasible(),
            // The adaptive fallback removes the R < S/t − 2 constraint;
            // this expectation is validated empirically by the Table 1
            // experiment rather than claimed by the paper.
            Protocol::W2Ra => majority,
            Protocol::AbdSwmrW1R2 => majority && config.writers() == 1,
            Protocol::DuttaSwmrW1R1 => {
                majority && config.writers() == 1 && config.fast_read_feasible()
            }
            // Theorem 1 (and Dutta et al. for W1R1): impossible once W ≥ 2
            // and t ≥ 1. With W = 1 these degenerate to the SWMR variants.
            Protocol::NaiveW1R2 => {
                majority && (config.writers() == 1 || config.max_faults() == 0)
            }
            Protocol::NaiveW1R1 => {
                majority
                    && config.fast_read_feasible()
                    && (config.writers() == 1 || config.max_faults() == 0)
            }
        }
    }

    /// Short human-readable name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::W2R2 => "W2R2 (LS97)",
            Protocol::W2R1 => "W2R1 (this paper)",
            Protocol::W2Ra => "W2Ra (adaptive)",
            Protocol::AbdSwmrW1R2 => "W1R2-SW (ABD)",
            Protocol::DuttaSwmrW1R1 => "W1R1-SW (DGLV)",
            Protocol::NaiveW1R2 => "W1R2-MW (naive)",
            Protocol::NaiveW1R1 => "W1R1-MW (naive)",
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`Protocol`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProtocolError {
    /// The unrecognized input.
    pub input: String,
}

impl fmt::Display for ParseProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown protocol '{}'; expected one of w2r2, w2r1, w2ra, abd, dutta, naive-w1r2, naive-w1r1",
            self.input
        )
    }
}

impl std::error::Error for ParseProtocolError {}

impl std::str::FromStr for Protocol {
    type Err = ParseProtocolError;

    /// Parses the short names used by the experiment binaries' CLI flags.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "w2r2" | "ls97" => Ok(Protocol::W2R2),
            "w2r1" => Ok(Protocol::W2R1),
            "w2ra" | "adaptive" => Ok(Protocol::W2Ra),
            "abd" | "w1r2-sw" => Ok(Protocol::AbdSwmrW1R2),
            "dutta" | "dglv" | "w1r1-sw" => Ok(Protocol::DuttaSwmrW1R1),
            "naive-w1r2" | "w1r2-mw" => Ok(Protocol::NaiveW1R2),
            "naive-w1r1" | "w1r1-mw" => Ok(Protocol::NaiveW1R1),
            other => Err(ParseProtocolError { input: other.to_string() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_counts_match_names() {
        assert_eq!(Protocol::W2R2.write_round_trips(), 2);
        assert_eq!(Protocol::W2R2.read_round_trips(), 2);
        assert_eq!(Protocol::W2R1.write_round_trips(), 2);
        assert_eq!(Protocol::W2R1.read_round_trips(), 1);
        assert_eq!(Protocol::AbdSwmrW1R2.write_round_trips(), 1);
        assert_eq!(Protocol::AbdSwmrW1R2.read_round_trips(), 2);
        assert_eq!(Protocol::NaiveW1R1.write_round_trips(), 1);
        assert_eq!(Protocol::NaiveW1R1.read_round_trips(), 1);
    }

    #[test]
    fn table1_expectations_multi_writer() {
        // S = 5, t = 1, R = 2, W = 2: fast reads feasible.
        let c = ClusterConfig::new(5, 1, 2, 2).unwrap();
        assert!(Protocol::W2R2.expected_atomic(&c));
        assert!(Protocol::W2R1.expected_atomic(&c));
        assert!(!Protocol::NaiveW1R2.expected_atomic(&c), "Theorem 1");
        assert!(!Protocol::NaiveW1R1.expected_atomic(&c));
        assert!(!Protocol::AbdSwmrW1R2.expected_atomic(&c), "ABD needs W = 1");
    }

    #[test]
    fn table1_expectations_single_writer() {
        let c = ClusterConfig::new(5, 1, 2, 1).unwrap();
        assert!(Protocol::AbdSwmrW1R2.expected_atomic(&c));
        assert!(Protocol::DuttaSwmrW1R1.expected_atomic(&c));
        // With one writer the "naive" fast write IS the ABD write.
        assert!(Protocol::NaiveW1R2.expected_atomic(&c));
    }

    #[test]
    fn w2r1_expectation_flips_at_the_feasibility_boundary() {
        // S = 5, t = 1: feasible iff R < 3.
        let feasible = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let infeasible = ClusterConfig::new(5, 1, 3, 2).unwrap();
        assert!(Protocol::W2R1.expected_atomic(&feasible));
        assert!(!Protocol::W2R1.expected_atomic(&infeasible));
    }

    #[test]
    fn no_protocol_survives_non_intersecting_quorums() {
        let c = ClusterConfig::new(4, 2, 1, 1).unwrap(); // 2t = S
        for p in Protocol::ALL {
            assert!(!p.expected_atomic(&c), "{p} should need t < S/2");
        }
    }

    #[test]
    fn display_uses_short_names() {
        assert_eq!(Protocol::W2R1.to_string(), "W2R1 (this paper)");
    }

    #[test]
    fn parsing_round_trips_and_rejects_unknowns() {
        for (input, expected) in [
            ("w2r2", Protocol::W2R2),
            ("W2R1", Protocol::W2R1),
            ("abd", Protocol::AbdSwmrW1R2),
            ("dglv", Protocol::DuttaSwmrW1R1),
            ("naive-w1r2", Protocol::NaiveW1R2),
            ("w1r1-mw", Protocol::NaiveW1R1),
        ] {
            assert_eq!(input.parse::<Protocol>().unwrap(), expected);
        }
        let err = "paxos".parse::<Protocol>().unwrap_err();
        assert!(err.to_string().contains("paxos"));
    }
}
