//! Joint-quorum arithmetic for live server-set reconfiguration.
//!
//! While a reconfiguration is in flight the cluster sits in a *joint*
//! epoch: every round-trip must gather a quorum in **both** the old and the
//! new configuration before it counts as complete (RAMBO's transitional
//! quorum system, specialised to the paper's `S − t` majority quorums).
//! This module is the pure, transport-free core of that rule: given the two
//! member sets and the set of servers that acknowledged a round, decide
//! whether the round may complete.
//!
//! Why both quorums: a write acknowledged only by an old-configuration
//! quorum could be missed by a new-configuration quorum assembled after the
//! old servers are torn down, and vice versa. Requiring both makes every
//! joint-window operation visible to any quorum of *either* configuration,
//! so the handover commits without a stop-the-world barrier. The
//! "refusal to commit short of both quorums" soundness obligation in the
//! README reduces to [`JointQuorum::satisfied`] being the only way a
//! joint-window round terminates.

use std::fmt;

use serde::{Deserialize, Serialize};

use mwr_types::ServerId;

/// The acknowledgement rule of a joint (transitional) epoch: a round
/// completes only when a quorum of the **old** configuration *and* a quorum
/// of the **new** configuration have replied.
///
/// Servers in both configurations (the common case — reconfigurations
/// usually replace a minority) count toward both quorums with a single
/// reply.
///
/// # Examples
///
/// ```
/// use mwr_core::JointQuorum;
/// use mwr_types::ServerId;
///
/// // Old {0,1,2} with t=1 (quorum 2), new {1,2,3} with t=1 (quorum 2).
/// let joint = JointQuorum::new(
///     [0, 1, 2].map(ServerId::new).to_vec(), 2,
///     [1, 2, 3].map(ServerId::new).to_vec(), 2,
/// );
/// // {1,2} sits in both configurations: one reply pair satisfies both.
/// assert!(joint.satisfied([1, 2].map(ServerId::new).iter().copied()));
/// // {0,1} is an old quorum but only one new member replied.
/// assert!(!joint.satisfied([0, 1].map(ServerId::new).iter().copied()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JointQuorum {
    old: Vec<ServerId>,
    old_required: usize,
    new: Vec<ServerId>,
    new_required: usize,
}

impl JointQuorum {
    /// Builds the rule from the two member sets and their quorum sizes
    /// (`|old| − t` and `|new| − t` under the paper's majority quorums).
    pub fn new(
        old: Vec<ServerId>,
        old_required: usize,
        new: Vec<ServerId>,
        new_required: usize,
    ) -> Self {
        JointQuorum { old, old_required, new, new_required }
    }

    /// The old configuration's members.
    pub fn old_members(&self) -> &[ServerId] {
        &self.old
    }

    /// The new configuration's members.
    pub fn new_members(&self) -> &[ServerId] {
        &self.new
    }

    /// Replies required from the old configuration.
    pub fn old_required(&self) -> usize {
        self.old_required
    }

    /// Replies required from the new configuration.
    pub fn new_required(&self) -> usize {
        self.new_required
    }

    /// Every server a joint-window round must broadcast to: the union of
    /// both configurations, ascending, each member once.
    pub fn union(&self) -> Vec<ServerId> {
        let mut all: Vec<ServerId> = self.old.iter().chain(self.new.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Whether the acknowledging set contains a quorum of **both**
    /// configurations. This is the joint window's only termination rule:
    /// a round that satisfies one side alone must keep waiting.
    pub fn satisfied(&self, acks: impl IntoIterator<Item = ServerId>) -> bool {
        let (mut old_got, mut new_got) = (0usize, 0usize);
        for server in acks {
            if self.old.contains(&server) {
                old_got += 1;
            }
            if self.new.contains(&server) {
                new_got += 1;
            }
        }
        old_got >= self.old_required && new_got >= self.new_required
    }

    /// An upper bound on useful acknowledgements: once every union member
    /// has replied, waiting longer cannot change the verdict.
    pub fn max_acks(&self) -> usize {
        self.union().len()
    }
}

impl fmt::Display for JointQuorum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "joint(old {}≥{}, new {}≥{})",
            self.old.len(),
            self.old_required,
            self.new.len(),
            self.new_required
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<ServerId> {
        raw.iter().copied().map(ServerId::new).collect()
    }

    #[test]
    fn both_quorums_are_required() {
        // Old {0..4} t=1 → 4 required; new {2..6} t=1 → 4 required.
        let joint = JointQuorum::new(ids(&[0, 1, 2, 3, 4]), 4, ids(&[2, 3, 4, 5, 6]), 4);
        assert_eq!(joint.union(), ids(&[0, 1, 2, 3, 4, 5, 6]));
        assert_eq!(joint.max_acks(), 7);

        // An old quorum alone does not complete the round…
        assert!(!joint.satisfied(ids(&[0, 1, 2, 3])));
        // …nor a new quorum alone…
        assert!(!joint.satisfied(ids(&[3, 4, 5, 6])));
        // …but overlap members count toward both sides at once.
        assert!(joint.satisfied(ids(&[1, 2, 3, 4, 5])));
        assert!(joint.satisfied(joint.union()));
    }

    #[test]
    fn disjoint_configurations_need_both_sides_fully() {
        let joint = JointQuorum::new(ids(&[0, 1]), 2, ids(&[2, 3]), 2);
        assert!(!joint.satisfied(ids(&[0, 1, 2])));
        assert!(joint.satisfied(ids(&[0, 1, 2, 3])));
    }

    #[test]
    fn display_summarises_the_rule() {
        let joint = JointQuorum::new(ids(&[0, 1, 2]), 2, ids(&[1, 2, 3]), 2);
        assert_eq!(joint.to_string(), "joint(old 3≥2, new 3≥2)");
    }
}
