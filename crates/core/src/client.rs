//! The register client automaton: every protocol in the design space is a
//! composition of a write mode and a read mode (Fig 2's algorithm schema).
//!
//! | Mode | Round-trips | Used by |
//! |---|---|---|
//! | [`WriteMode::Slow`] | query `maxTS`, then update `(maxTS+1, wi)` | W2R2 (LS97), W2R1 (Algorithm 1) |
//! | [`WriteMode::Fast`] | update with a writer-local timestamp | ABD single-writer, Dutta et al. W1R1, and the *naive* multi-writer fast writes whose impossibility the paper proves |
//! | [`ReadMode::Slow`] | query max, then write back | ABD, W2R2 |
//! | [`ReadMode::Fast`] | one combined round + `admissible(·)` selection | W2R1 (Algorithm 1), Dutta et al. W1R1 |
//!
//! Clients serialize their own operations (executions are well-formed per
//! client, §2.1): invocations arriving while an operation is in flight are
//! queued and their `Invoked` event is emitted when they actually start.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mwr_sim::{Automaton, Context};
use mwr_types::{ClusterConfig, ProcessId, ReaderId, ServerId, Tag, TaggedValue, Value, WriterId};
use mwr_types::ClientId;

use crate::admissible::{SnapshotView, WitnessIndex};
use crate::events::{ClientEvent, OpKind, OpResult};
use crate::msg::{FastReadState, Msg, OpHandle, OpId, Snapshot};

/// How writes acquire their tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// One round-trip: the writer stamps values from a local counter.
    /// Correct with a single writer (ABD); **provably not atomic** with
    /// multiple writers (the paper's main theorem).
    Fast,
    /// Two round-trips: query `maxTS` from a quorum, then write
    /// `(maxTS + 1, wi)` (Algorithm 1's writer).
    Slow,
}

/// How reads pick their return value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// One round-trip: collect snapshots from a quorum and return the
    /// largest admissible value (Algorithm 1's reader). Atomic only when
    /// `R < S/t − 2`.
    Fast,
    /// Two round-trips: query the maximum from a quorum, write it back to a
    /// quorum, then return it (ABD/LS97 reader).
    Slow,
    /// One round-trip when possible, two otherwise: return the *global
    /// maximum* of the collected snapshots immediately if it is admissible
    /// within the safe degree budget
    /// ([`adaptive_degree_cap`](crate::adaptive_degree_cap)); fall back to
    /// an ABD-style write-back of that maximum otherwise.
    ///
    /// This is the semifast *idea* (Georgiou et al.) transplanted to the
    /// multi-writer setting. It cannot be semifast in the formal sense —
    /// the paper's §6 notes MWMR semifast implementations are impossible,
    /// and indeed the slow fallback here is unbounded under contention —
    /// but unlike Algorithm 1 it stays atomic for **any** `R`, trading the
    /// `R < S/t − 2` constraint for occasional second round-trips.
    Adaptive,
}

/// How fast-read rounds move information on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FastWire {
    /// Full-information payloads, faithful to the paper's model (§4.1):
    /// the whole `valQueue` out, whole server snapshots back. O(history)
    /// per read.
    FullInfo,
    /// Delta payloads: only unacknowledged `valQueue` entries out, only
    /// store changes above the reader's per-server acknowledged version
    /// back ([`Msg::ReadFastDelta`]). The reader reconstructs each
    /// server's logical snapshot from cached state, so `admissible(·)`
    /// selection is byte-for-byte unchanged. O(new information) per read.
    Delta,
    /// Delta payloads with run-length-encoded registration gossip (wire
    /// version 4, [`Msg::ReadFastRuns`]): identical information flow to
    /// [`FastWire::Delta`] — the ack decodes to the same
    /// [`DeltaSnapshot`](crate::DeltaSnapshot) — but each record's sorted
    /// `updated` list travels as consecutive-id runs, collapsing the
    /// O(W×R) catch-up re-registration stream to one run per value on the
    /// wire. In-memory semantics are byte-for-byte [`FastWire::Delta`].
    #[default]
    Runs,
}

/// Role-specific client state.
#[derive(Debug)]
enum Role {
    Writer {
        id: WriterId,
        mode: WriteMode,
        /// Local timestamp counter used by [`WriteMode::Fast`].
        local_ts: u64,
    },
    Reader {
        id: ReaderId,
        mode: ReadMode,
        /// Algorithm 1's `valQueue`: every tagged value this reader has
        /// observed and not yet GC-pruned; re-sent (in full or as a delta)
        /// on each fast read.
        val_queue: BTreeSet<TaggedValue>,
        /// Fast-read wire format.
        wire: FastWire,
        /// Per-server snapshot caches plus the incrementally-maintained
        /// witness index over them (delta wire only).
        state: FastReadState,
        /// The largest server-announced GC floor seen; local state below it
        /// is pruned (every client has completed an operation above it).
        gc_floor: TaggedValue,
    },
}

/// The in-flight phase of the current operation.
#[derive(Debug)]
enum Phase {
    /// Slow write, round 1: collecting `maxTS`.
    WriteQuery { value: Value, max_tag: Tag, acks: BTreeSet<ServerId> },
    /// Any write, final round: storing the tagged value.
    WriteUpdate { value: TaggedValue, acks: BTreeSet<ServerId> },
    /// Slow read, round 1: collecting the maximum value.
    ReadQuery { best: TaggedValue, acks: BTreeSet<ServerId> },
    /// Slow read, round 2: writing the maximum back.
    ReadWriteBack { best: TaggedValue, acks: BTreeSet<ServerId> },
    /// Fast read over the full-info wire: collecting whole snapshots.
    ReadFast { replies: BTreeMap<ServerId, Snapshot> },
    /// Fast read over the delta wire: the deltas merge straight into the
    /// reader's caches/index, so only the replied-server mask is tracked.
    ReadFastDelta { replied: u128 },
}

#[derive(Debug)]
struct InFlight {
    op: OpId,
    kind: OpKind,
    /// Which round-trip is in flight (1 or 2); fast modes never reach 2.
    phase_no: u8,
    phase: Phase,
}

/// A client automaton (reader or writer) for the simulator.
///
/// # Examples
///
/// Assembling clients by hand; see [`Cluster`](crate::Cluster) for the
/// one-call harness.
///
/// ```
/// use mwr_core::{ReadMode, RegisterClient, WriteMode};
/// use mwr_types::{ClusterConfig, ReaderId, WriterId};
///
/// let config = ClusterConfig::new(5, 1, 2, 2)?;
/// let _writer = RegisterClient::writer(WriterId::new(0), config, WriteMode::Slow);
/// let _reader = RegisterClient::reader(ReaderId::new(0), config, ReadMode::Fast);
/// # Ok::<(), mwr_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct RegisterClient {
    config: ClusterConfig,
    role: Role,
    pending: VecDeque<OpKind>,
    current: Option<InFlight>,
    next_seq: u64,
    /// Completed-operation floor: the largest tag this client has returned
    /// or written, piggybacked on requests for acknowledged-floor GC.
    floor: TaggedValue,
}

impl RegisterClient {
    /// Creates a writer client with the given write mode.
    pub fn writer(id: WriterId, config: ClusterConfig, mode: WriteMode) -> Self {
        RegisterClient {
            config,
            role: Role::Writer { id, mode, local_ts: 0 },
            pending: VecDeque::new(),
            current: None,
            next_seq: 0,
            floor: TaggedValue::initial(),
        }
    }

    /// Creates a reader client with the given read mode and the default
    /// [`FastWire::Delta`] wire format.
    pub fn reader(id: ReaderId, config: ClusterConfig, mode: ReadMode) -> Self {
        Self::reader_with_wire(id, config, mode, FastWire::default())
    }

    /// Creates a reader client with an explicit fast-read wire format.
    pub fn reader_with_wire(
        id: ReaderId,
        config: ClusterConfig,
        mode: ReadMode,
        wire: FastWire,
    ) -> Self {
        let mut val_queue = BTreeSet::new();
        val_queue.insert(TaggedValue::initial());
        RegisterClient {
            config,
            role: Role::Reader {
                id,
                mode,
                val_queue,
                wire,
                state: FastReadState::new(),
                gc_floor: TaggedValue::initial(),
            },
            pending: VecDeque::new(),
            current: None,
            next_seq: 0,
            floor: TaggedValue::initial(),
        }
    }

    fn client_id(&self) -> ClientId {
        match &self.role {
            Role::Writer { id, .. } => ClientId::Writer(*id),
            Role::Reader { id, .. } => ClientId::Reader(*id),
        }
    }

    fn quorum(&self) -> usize {
        self.config.quorum_size()
    }

    /// Whether an operation is currently executing.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    /// Number of queued (not yet started) operations.
    pub fn queued_ops(&self) -> usize {
        self.pending.len()
    }

    fn start_next(&mut self, ctx: &mut Context<'_, Msg, ClientEvent>) {
        debug_assert!(self.current.is_none());
        let Some(kind) = self.pending.pop_front() else {
            return;
        };
        let op = OpId { client: self.client_id(), seq: self.next_seq };
        self.next_seq += 1;
        ctx.notify(ClientEvent::Invoked { op, kind });

        let servers = self.config.servers();
        let floor = self.floor;
        let phase = match (&mut self.role, kind) {
            (Role::Writer { id, mode: WriteMode::Fast, local_ts }, OpKind::Write(v)) => {
                *local_ts += 1;
                let value = TaggedValue::new(Tag::new(*local_ts, *id), v);
                let handle = OpHandle { op, phase: 1 };
                ctx.broadcast_to_servers(servers, Msg::Update { handle, value, floor });
                Phase::WriteUpdate { value, acks: BTreeSet::new() }
            }
            (Role::Writer { mode: WriteMode::Slow, .. }, OpKind::Write(v)) => {
                let handle = OpHandle { op, phase: 1 };
                ctx.broadcast_to_servers(servers, Msg::Query { handle });
                Phase::WriteQuery { value: v, max_tag: Tag::initial(), acks: BTreeSet::new() }
            }
            (Role::Reader { mode: ReadMode::Slow, .. }, OpKind::Read) => {
                let handle = OpHandle { op, phase: 1 };
                ctx.broadcast_to_servers(servers, Msg::Query { handle });
                Phase::ReadQuery { best: TaggedValue::initial(), acks: BTreeSet::new() }
            }
            (
                Role::Reader {
                    mode: ReadMode::Fast | ReadMode::Adaptive,
                    val_queue,
                    wire,
                    state,
                    ..
                },
                OpKind::Read,
            ) => {
                let handle = OpHandle { op, phase: 1 };
                match wire {
                    FastWire::FullInfo => {
                        let val_queue: Vec<TaggedValue> = val_queue.iter().copied().collect();
                        ctx.broadcast_to_servers(servers, Msg::ReadFast { handle, val_queue });
                        Phase::ReadFast { replies: BTreeMap::new() }
                    }
                    FastWire::Delta | FastWire::Runs => {
                        // Per-server payloads: only what this server has not
                        // acknowledged yet. The Runs wire differs solely in
                        // the frame discriminant (which selects the
                        // run-length ack encoding on the way back).
                        for s in 0..servers as u32 {
                            let cache = state.cache(ServerId::new(s));
                            let acked = cache.acked_version();
                            let new_values = cache.unacknowledged(val_queue);
                            let msg = match wire {
                                FastWire::Runs => {
                                    Msg::ReadFastRuns { handle, acked, floor, new_values }
                                }
                                _ => Msg::ReadFastDelta { handle, acked, floor, new_values },
                            };
                            ctx.send(ProcessId::server(s), msg);
                        }
                        Phase::ReadFastDelta { replied: 0 }
                    }
                }
            }
            (Role::Writer { .. }, OpKind::Read) => {
                panic!("writers cannot invoke read() (paper §2.1)")
            }
            (Role::Reader { .. }, OpKind::Write(_)) => {
                panic!("readers cannot invoke write() (paper §2.1)")
            }
        };
        self.current = Some(InFlight { op, kind, phase_no: 1, phase });
    }

    fn complete(&mut self, result: OpResult, ctx: &mut Context<'_, Msg, ClientEvent>) {
        let inflight = self.current.take().expect("completing without an op");
        let (OpResult::Read(tv) | OpResult::Written(tv)) = result;
        self.floor = self.floor.max(tv);
        ctx.notify(ClientEvent::Completed { op: inflight.op, kind: inflight.kind, result });
        self.start_next(ctx);
    }

    /// Processes one ack; returns what to do once a quorum is assembled.
    fn on_ack(&mut self, server: ServerId, msg: Msg) -> Option<AckAction> {
        let quorum = self.quorum();
        let config = self.config;
        let floor = self.floor;
        let inflight = self.current.as_mut()?;
        let expected = OpHandle { op: inflight.op, phase: inflight.phase_no };

        match (msg, &mut inflight.phase) {
            (Msg::QueryAck { handle, latest }, Phase::WriteQuery { value, max_tag, acks })
                if handle == expected =>
            {
                *max_tag = (*max_tag).max(latest.tag());
                acks.insert(server);
                if acks.len() >= quorum {
                    let Role::Writer { id, .. } = &self.role else { unreachable!() };
                    let tagged = TaggedValue::new(max_tag.next(*id), *value);
                    let handle = OpHandle { op: inflight.op, phase: 2 };
                    inflight.phase_no = 2;
                    inflight.phase = Phase::WriteUpdate { value: tagged, acks: BTreeSet::new() };
                    return Some(AckAction::Broadcast(Msg::Update {
                        handle,
                        value: tagged,
                        floor,
                    }));
                }
                None
            }
            (Msg::QueryAck { handle, latest }, Phase::ReadQuery { best, acks })
                if handle == expected =>
            {
                *best = (*best).max(latest);
                acks.insert(server);
                if acks.len() >= quorum {
                    let chosen = *best;
                    let handle = OpHandle { op: inflight.op, phase: 2 };
                    inflight.phase_no = 2;
                    inflight.phase = Phase::ReadWriteBack { best: chosen, acks: BTreeSet::new() };
                    return Some(AckAction::Broadcast(Msg::Update {
                        handle,
                        value: chosen,
                        floor,
                    }));
                }
                None
            }
            (Msg::UpdateAck { handle }, Phase::WriteUpdate { value, acks })
                if handle == expected =>
            {
                acks.insert(server);
                (acks.len() >= quorum).then_some(AckAction::Complete(OpResult::Written(*value)))
            }
            (Msg::UpdateAck { handle }, Phase::ReadWriteBack { best, acks })
                if handle == expected =>
            {
                acks.insert(server);
                (acks.len() >= quorum).then_some(AckAction::Complete(OpResult::Read(*best)))
            }
            (Msg::ReadFastAck { handle, snapshot }, Phase::ReadFast { replies })
                if handle == expected =>
            {
                replies.insert(server, snapshot);
                if replies.len() >= quorum {
                    let replies = std::mem::take(replies);
                    return Some(Self::finish_fast_read_full(
                        &mut self.role,
                        inflight,
                        &replies,
                        &config,
                        floor,
                    ));
                }
                None
            }
            (
                Msg::ReadFastDeltaAck { handle, delta } | Msg::ReadFastRunsAck { handle, delta },
                Phase::ReadFastDelta { replied },
            ) if handle == expected =>
            {
                let Role::Reader { state, gc_floor, .. } = &mut self.role else {
                    unreachable!()
                };
                state.merge(server, &delta);
                *gc_floor = (*gc_floor).max(delta.pruned);
                *replied |= FastReadState::mask_bit(server);
                if replied.count_ones() as usize >= quorum {
                    let replied = *replied;
                    return Some(Self::finish_fast_read_delta(
                        &mut self.role,
                        inflight,
                        replied,
                        &config,
                        floor,
                    ));
                }
                None
            }
            _ => None, // stale ack from an earlier phase or operation
        }
    }

    /// Tail of a full-info fast read once a quorum of snapshots is in:
    /// fold them into the `valQueue`, apply GC pruning, index the borrowed
    /// replies once, then run the mode's selection.
    fn finish_fast_read_full(
        role: &mut Role,
        inflight: &mut InFlight,
        replies: &BTreeMap<ServerId, Snapshot>,
        config: &ClusterConfig,
        floor: TaggedValue,
    ) -> AckAction {
        let Role::Reader { mode, val_queue, gc_floor, .. } = &mut *role else { unreachable!() };
        let mode = *mode;
        for s in replies.values() {
            val_queue.extend(s.entries.iter().map(|e| e.value));
        }
        Self::prune_val_queue(val_queue, *gc_floor);
        let (index, mask) = WitnessIndex::from_views(replies.values().map(SnapshotView::Full));
        Self::decide_fast_read(mode, inflight, &index, mask, config, floor, *gc_floor)
    }

    /// Tail of a delta fast read: the quorum's deltas already merged into
    /// the caches and the standing witness index, so the selection runs
    /// straight over the index masked down to the replied servers.
    fn finish_fast_read_delta(
        role: &mut Role,
        inflight: &mut InFlight,
        replied: u128,
        config: &ClusterConfig,
        floor: TaggedValue,
    ) -> AckAction {
        let Role::Reader { mode, val_queue, state, gc_floor, .. } = &mut *role else {
            unreachable!()
        };
        let mode = *mode;
        for v in state.index().values_in(replied) {
            val_queue.insert(v);
        }
        Self::prune_val_queue(val_queue, *gc_floor);
        Self::decide_fast_read(mode, inflight, state.index(), replied, config, floor, *gc_floor)
    }

    /// Entries below the announced GC floor are below every client's
    /// completed-operation floor: no read can ever return them again (see
    /// the GC argument in the server module docs), so they can be dropped
    /// from the valQueue. Per-server caches self-prune on merge.
    fn prune_val_queue(val_queue: &mut BTreeSet<TaggedValue>, gc_floor: TaggedValue) {
        if gc_floor > TaggedValue::initial() {
            val_queue.retain(|v| *v >= gc_floor);
        }
    }

    /// The mode's return-value selection over an already-built witness
    /// index, shared by both wires.
    fn decide_fast_read(
        mode: ReadMode,
        inflight: &mut InFlight,
        index: &WitnessIndex,
        mask: u128,
        config: &ClusterConfig,
        floor: TaggedValue,
        gc_floor: TaggedValue,
    ) -> AckAction {
        match mode {
            ReadMode::Fast => {
                let mut sel = index.selector(
                    mask,
                    config.servers(),
                    config.max_faults(),
                    config.readers() + 1,
                );
                if gc_floor > floor {
                    // Late join: the announced GC floor has passed everything
                    // this reader ever completed, so its valQueue anchor may
                    // have been pruned server-side and `admissible(·)` has no
                    // degree-1 guarantee to stand on. Secure the snapshot
                    // maximum with a write-back round instead (see the GC
                    // argument in the server module docs); afterwards this
                    // reader's floor is at or above the announced one and
                    // the fast path resumes.
                    let max_v = sel.max_candidate().unwrap_or_else(TaggedValue::initial);
                    let handle = OpHandle { op: inflight.op, phase: 2 };
                    inflight.phase_no = 2;
                    inflight.phase =
                        Phase::ReadWriteBack { best: max_v, acks: BTreeSet::new() };
                    return AckAction::Broadcast(Msg::Update { handle, value: max_v, floor });
                }
                AckAction::Complete(OpResult::Read(sel.select_return_value()))
            }
            ReadMode::Adaptive => {
                let cap = crate::admissible::adaptive_degree_cap(
                    config.servers(),
                    config.max_faults(),
                    config.readers(),
                );
                let mut sel = index.selector(mask, config.servers(), config.max_faults(), cap);
                let max_v = sel.max_candidate().unwrap_or_else(TaggedValue::initial);
                // The degree-based fast accept stands on the same valQueue
                // anchor as the Fast mode's admissibility check, so the same
                // late-join caveat applies: once the announced GC floor passes
                // this reader's completed floor the anchor may have been
                // pruned server-side, and only the write-back round is sound.
                if gc_floor <= floor && sel.degree(max_v).is_some() {
                    // The maximum is safely confirmed: fast path.
                    return AckAction::Complete(OpResult::Read(max_v));
                }
                // Slow path: secure the maximum with a write-back round
                // before returning it.
                let handle = OpHandle { op: inflight.op, phase: 2 };
                inflight.phase_no = 2;
                inflight.phase = Phase::ReadWriteBack { best: max_v, acks: BTreeSet::new() };
                AckAction::Broadcast(Msg::Update { handle, value: max_v, floor })
            }
            ReadMode::Slow => unreachable!("slow reads never use ReadFast"),
        }
    }
}

/// What a quorum of acks triggers.
#[derive(Debug)]
enum AckAction {
    /// Start the next round-trip by broadcasting this message.
    Broadcast(Msg),
    /// The operation is done.
    Complete(OpResult),
}

impl Automaton<Msg, ClientEvent> for RegisterClient {
    fn on_external(&mut self, input: Msg, ctx: &mut Context<'_, Msg, ClientEvent>) {
        match input {
            Msg::InvokeRead => self.pending.push_back(OpKind::Read),
            Msg::InvokeWrite(v) => self.pending.push_back(OpKind::Write(v)),
            other => panic!("unexpected external input {other:?}"),
        }
        if self.current.is_none() {
            self.start_next(ctx);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, ClientEvent>) {
        let Some(server) = from.as_server() else {
            return; // clients only hear from servers
        };
        match self.on_ack(server, msg) {
            None => {}
            Some(AckAction::Broadcast(next_round)) => {
                let op = self.current.as_ref().expect("broadcasting mid-operation").op;
                ctx.notify(ClientEvent::SecondRound { op });
                ctx.broadcast_to_servers(self.config.servers(), next_round);
            }
            Some(AckAction::Complete(result)) => self.complete(result, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RegisterServer;
    use mwr_sim::{SimTime, Simulation};

    fn config() -> ClusterConfig {
        ClusterConfig::new(5, 1, 2, 2).unwrap()
    }

    fn build_sim(
        write_mode: WriteMode,
        read_mode: ReadMode,
        seed: u64,
    ) -> Simulation<Msg, ClientEvent> {
        let cfg = config();
        let mut sim = Simulation::new(seed);
        for s in cfg.server_ids() {
            sim.add_process(ProcessId::Server(s), RegisterServer::new());
        }
        for w in cfg.writer_ids() {
            sim.add_process(w.into(), RegisterClient::writer(w, cfg, write_mode));
        }
        for r in cfg.reader_ids() {
            sim.add_process(r.into(), RegisterClient::reader(r, cfg, read_mode));
        }
        sim
    }

    fn completions(events: &[(SimTime, ClientEvent)]) -> Vec<(OpId, OpResult)> {
        events
            .iter()
            .filter_map(|(_, e)| match e {
                ClientEvent::Completed { op, result, .. } => Some((*op, *result)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn slow_write_then_slow_read_returns_written_value() {
        let mut sim = build_sim(WriteMode::Slow, ReadMode::Slow, 1);
        sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeWrite(Value::new(42)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(100), ProcessId::reader(0), Msg::InvokeRead)
            .unwrap();
        sim.run_until_quiescent().unwrap();
        let done = completions(&sim.drain_notifications());
        assert_eq!(done.len(), 2);
        let OpResult::Written(wv) = done[0].1 else { panic!("write first") };
        let OpResult::Read(rv) = done[1].1 else { panic!("read second") };
        assert_eq!(wv.value(), Value::new(42));
        assert_eq!(rv, wv);
        assert_eq!(wv.tag(), Tag::new(1, WriterId::new(0)));
    }

    #[test]
    fn fast_read_returns_written_value_after_slow_write() {
        let mut sim = build_sim(WriteMode::Slow, ReadMode::Fast, 2);
        sim.schedule_external(SimTime::ZERO, ProcessId::writer(1), Msg::InvokeWrite(Value::new(7)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(100), ProcessId::reader(1), Msg::InvokeRead)
            .unwrap();
        sim.run_until_quiescent().unwrap();
        let done = completions(&sim.drain_notifications());
        assert_eq!(done.len(), 2);
        let OpResult::Read(rv) = done[1].1 else { panic!() };
        assert_eq!(rv.value(), Value::new(7));
        assert_eq!(rv.tag(), Tag::new(1, WriterId::new(1)));
    }

    #[test]
    fn fast_read_on_fresh_register_returns_initial() {
        let mut sim = build_sim(WriteMode::Slow, ReadMode::Fast, 3);
        sim.schedule_external(SimTime::ZERO, ProcessId::reader(0), Msg::InvokeRead).unwrap();
        sim.run_until_quiescent().unwrap();
        let done = completions(&sim.drain_notifications());
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, OpResult::Read(TaggedValue::initial()));
    }

    #[test]
    fn sequential_slow_writes_get_increasing_timestamps() {
        let mut sim = build_sim(WriteMode::Slow, ReadMode::Slow, 4);
        sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeWrite(Value::new(1)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(100), ProcessId::writer(1), Msg::InvokeWrite(Value::new(2)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(200), ProcessId::writer(0), Msg::InvokeWrite(Value::new(3)))
            .unwrap();
        sim.run_until_quiescent().unwrap();
        let done = completions(&sim.drain_notifications());
        let tags: Vec<Tag> = done
            .iter()
            .map(|(_, r)| match r {
                OpResult::Written(tv) => tv.tag(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(tags[0], Tag::new(1, WriterId::new(0)));
        assert_eq!(tags[1], Tag::new(2, WriterId::new(1)));
        assert_eq!(tags[2], Tag::new(3, WriterId::new(0)));
    }

    #[test]
    fn client_queues_overlapping_invocations() {
        let mut sim = build_sim(WriteMode::Slow, ReadMode::Slow, 5);
        // Two invocations at the same instant on the same writer: the second
        // must wait for the first (well-formed executions).
        for v in [10, 20] {
            sim.schedule_external(
                SimTime::ZERO,
                ProcessId::writer(0),
                Msg::InvokeWrite(Value::new(v)),
            )
            .unwrap();
        }
        sim.run_until_quiescent().unwrap();
        let events = sim.drain_notifications();
        // Ordering: Invoked(10) … Completed(10) … Invoked(20) … Completed(20),
        // with SecondRound markers interspersed (slow writes have two
        // round-trips).
        let seq: Vec<&ClientEvent> = events
            .iter()
            .map(|(_, e)| e)
            .filter(|e| !matches!(e, ClientEvent::SecondRound { .. }))
            .collect();
        match (seq[0], seq[1], seq[2], seq[3]) {
            (
                ClientEvent::Invoked { op: o1, .. },
                ClientEvent::Completed { op: c1, .. },
                ClientEvent::Invoked { op: o2, .. },
                ClientEvent::Completed { op: c2, .. },
            ) => {
                assert_eq!(o1, c1);
                assert_eq!(o2, c2);
                assert_ne!(o1, o2);
            }
            other => panic!("unexpected event order: {other:?}"),
        }
        let done = completions(&events);
        let OpResult::Written(t1) = done[0].1 else { panic!() };
        let OpResult::Written(t2) = done[1].1 else { panic!() };
        assert!(t2 > t1, "second write must supersede the first");
    }

    #[test]
    fn fast_write_uses_local_counter() {
        let mut sim = build_sim(WriteMode::Fast, ReadMode::Slow, 6);
        sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeWrite(Value::new(1)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(50), ProcessId::writer(0), Msg::InvokeWrite(Value::new(2)))
            .unwrap();
        sim.run_until_quiescent().unwrap();
        let done = completions(&sim.drain_notifications());
        let OpResult::Written(t1) = done[0].1 else { panic!() };
        let OpResult::Written(t2) = done[1].1 else { panic!() };
        assert_eq!(t1.tag(), Tag::new(1, WriterId::new(0)));
        assert_eq!(t2.tag(), Tag::new(2, WriterId::new(0)));
    }

    #[test]
    fn operations_complete_despite_t_crashes() {
        let mut sim = build_sim(WriteMode::Slow, ReadMode::Fast, 7);
        sim.schedule_crash(SimTime::ZERO, ProcessId::server(4));
        sim.schedule_external(SimTime::from_ticks(1), ProcessId::writer(0), Msg::InvokeWrite(Value::new(9)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(100), ProcessId::reader(0), Msg::InvokeRead)
            .unwrap();
        sim.run_until_quiescent().unwrap();
        let done = completions(&sim.drain_notifications());
        assert_eq!(done.len(), 2, "wait-freedom with t = 1 crash");
        let OpResult::Read(rv) = done[1].1 else { panic!() };
        assert_eq!(rv.value(), Value::new(9));
    }

    #[test]
    fn reader_val_queue_accumulates_across_reads() {
        let mut sim = build_sim(WriteMode::Slow, ReadMode::Fast, 8);
        sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeWrite(Value::new(1)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(100), ProcessId::reader(0), Msg::InvokeRead)
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(200), ProcessId::writer(1), Msg::InvokeWrite(Value::new(2)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(300), ProcessId::reader(0), Msg::InvokeRead)
            .unwrap();
        sim.run_until_quiescent().unwrap();
        let done = completions(&sim.drain_notifications());
        let reads: Vec<TaggedValue> = done
            .iter()
            .filter_map(|(_, r)| match r {
                OpResult::Read(tv) => Some(*tv),
                _ => None,
            })
            .collect();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].value(), Value::new(1));
        assert_eq!(reads[1].value(), Value::new(2));
        assert!(reads[1] > reads[0]);
    }

    #[test]
    fn adaptive_read_is_fast_when_the_maximum_is_settled() {
        let mut sim = build_sim(WriteMode::Slow, ReadMode::Adaptive, 11);
        sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeWrite(Value::new(5)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(100), ProcessId::reader(0), Msg::InvokeRead)
            .unwrap();
        sim.run_until_quiescent().unwrap();
        let events = sim.drain_notifications();
        let read_second_rounds = events
            .iter()
            .filter(|(_, e)| {
                matches!(e, ClientEvent::SecondRound { op } if op.client.as_reader().is_some())
            })
            .count();
        assert_eq!(read_second_rounds, 0, "a settled read takes one round-trip");
        let done = completions(&events);
        let OpResult::Read(rv) = done[1].1 else { panic!() };
        assert_eq!(rv.value(), Value::new(5));
    }

    #[test]
    fn adaptive_read_falls_back_when_the_maximum_is_unsettled() {
        // A write parked on all but one server: its value is the global
        // maximum in the reader's snapshots but is nowhere near admissible,
        // so the adaptive read pays a write-back round and returns it.
        let mut sim = build_sim(WriteMode::Slow, ReadMode::Adaptive, 12);
        // Let the write's query round finish, then hold its updates to all
        // servers except s0 (constant 1-tick delays: update broadcast at
        // t = 2).
        for srv in 1..5u32 {
            sim.schedule_hold(
                SimTime::from_ticks(1),
                mwr_sim::LinkSelector::directed(ProcessId::writer(0), ProcessId::server(srv)),
            );
        }
        sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeWrite(Value::new(9)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(100), ProcessId::reader(0), Msg::InvokeRead)
            .unwrap();
        sim.run_until_quiescent().unwrap();
        let events = sim.drain_notifications();
        let read_second_rounds = events
            .iter()
            .filter(|(_, e)| {
                matches!(e, ClientEvent::SecondRound { op } if op.client.as_reader().is_some())
            })
            .count();
        assert_eq!(read_second_rounds, 1, "the unsettled maximum forces the fallback");
        let read = events
            .iter()
            .find_map(|(_, e)| match e {
                ClientEvent::Completed { result: OpResult::Read(tv), .. } => Some(*tv),
                _ => None,
            })
            .expect("read completed");
        assert_eq!(read.value(), Value::new(9), "the fallback returns the secured maximum");
    }

    #[test]
    #[should_panic(expected = "writers cannot invoke read()")]
    fn writer_rejects_read_invocation() {
        let mut sim = build_sim(WriteMode::Slow, ReadMode::Slow, 9);
        sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeRead).unwrap();
        let _ = sim.run_until_quiescent();
    }

    #[test]
    #[should_panic(expected = "readers cannot invoke write()")]
    fn reader_rejects_write_invocation() {
        let mut sim = build_sim(WriteMode::Slow, ReadMode::Slow, 10);
        sim.schedule_external(SimTime::ZERO, ProcessId::reader(0), Msg::InvokeWrite(Value::new(0)))
            .unwrap();
        let _ = sim.run_until_quiescent();
    }
}
