//! Protocol messages exchanged between clients and servers.
//!
//! Every protocol in the design space is built from the two round-trip
//! primitives of the paper's algorithm schema (§2.2): *query* (collect
//! information from all servers) and *update* (send information to all
//! servers). The fast read of Algorithm 1 uses a combined round-trip that
//! both updates (the reader's `valQueue`, plus registering the reader in the
//! `updated` bookkeeping) and queries (the server's value store).

use std::collections::{BTreeMap, BTreeSet};

use bytes::{Buf, BytesMut};
use serde::{Deserialize, Serialize};

use mwr_types::codec::{DecodeError, Wire};
use mwr_types::{ClientId, TaggedValue, Value};

/// Identifier of one operation instance: the invoking client plus a
/// per-client sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId {
    /// The invoking client.
    pub client: ClientId,
    /// The client-local sequence number (0, 1, 2, …).
    pub seq: u64,
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.client, self.seq)
    }
}

/// Identifies one *phase* (round-trip) of one operation, so that late
/// replies from an earlier phase or operation are discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpHandle {
    /// The operation.
    pub op: OpId,
    /// The round-trip number within the operation (1 or 2).
    pub phase: u8,
}

impl std::fmt::Display for OpHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.op, self.phase)
    }
}

/// One entry of a server's value store as reported to a fast read: a tagged
/// value plus the set of clients recorded in its `updated` set
/// (Algorithm 2's `valuevector`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueRecord {
    /// The stored tagged value.
    pub value: TaggedValue,
    /// Clients that have been registered on this value, in sorted order.
    pub updated: Vec<ClientId>,
}

/// A server's reply to the fast-read round-trip: its full value store.
///
/// This follows the paper's *full-info* inclination (§4.1): servers report
/// everything they hold; practical deployments would prune, which is an
/// optimization the analysis deliberately ignores. The delta protocol
/// ([`Msg::ReadFastDelta`]/[`DeltaSnapshot`]) is that optimization: clients
/// reconstruct this exact snapshot from cached per-server state instead of
/// receiving it whole on every read.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// All stored values with their `updated` sets, sorted by tag.
    pub entries: Vec<ValueRecord>,
}

impl Snapshot {
    /// The largest tagged value in the snapshot, if any.
    pub fn max_value(&self) -> Option<TaggedValue> {
        self.entries.iter().map(|e| e.value).max()
    }

    /// The `updated` set recorded for `value`, if present.
    pub fn updated_for(&self, value: TaggedValue) -> Option<&[ClientId]> {
        self.entries
            .iter()
            .find(|e| e.value == value)
            .map(|e| e.updated.as_slice())
    }

    /// Whether the snapshot contains `value`.
    pub fn contains(&self, value: TaggedValue) -> bool {
        self.entries.iter().any(|e| e.value == value)
    }
}

/// The incremental form of a [`Snapshot`]: everything the server learned
/// since the reader's acknowledged version, plus enough header state for the
/// reader to keep its cached copy of the server's store exact.
///
/// Versions count *registrations* — every `(value, client)` pair the server
/// records bumps a per-server monotone counter — so the half-open window
/// `(from, version]` identifies precisely the store mutations this delta
/// carries. A reader that merges deltas contiguously (its acknowledged
/// version always equals the previous delta's `version`; per-link FIFO and
/// one-operation-at-a-time clients guarantee this) reconstructs the server's
/// full store byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaSnapshot {
    /// The reader-acknowledged version this delta starts from (exclusive).
    pub from: u64,
    /// The server's registration version after handling the request; the
    /// reader's next acknowledged floor.
    pub version: u64,
    /// The server's current maximum value `vali`.
    pub latest: TaggedValue,
    /// The server's garbage-collection floor: every value strictly below it
    /// has been pruned server-side and may be pruned from reader state too
    /// (it is below every client's completed-operation floor).
    pub pruned: TaggedValue,
    /// Values with registrations in `(from, version]`, sorted by tag; each
    /// record lists only the *newly registered* clients.
    pub entries: Vec<ValueRecord>,
}

/// A reader's cached copy of one server's store, maintained by merging
/// [`DeltaSnapshot`]s — the client-side dual of the delta wire, shared by
/// the simulator client and `mwr-runtime`'s live client so the two can
/// never drift.
///
/// Contiguous versioned deltas over FIFO links keep the cache an exact
/// mirror of the server's store (including server-side GC pruning, which
/// always retains the server's `latest`), so [`reconstruct`](Self::reconstruct)
/// equals the full-info [`Snapshot`] byte-for-byte.
#[derive(Debug, Clone)]
pub struct SnapshotCache {
    /// The last merged [`DeltaSnapshot::version`]; sent back as `acked`.
    version: u64,
    /// value → registered clients, as far as this reader knows.
    entries: BTreeMap<TaggedValue, BTreeSet<ClientId>>,
}

impl SnapshotCache {
    /// Seeded like a fresh server's store: the initial value with an empty
    /// `updated` set, version 0.
    pub fn new() -> Self {
        let mut entries = BTreeMap::new();
        entries.insert(TaggedValue::initial(), BTreeSet::new());
        SnapshotCache { version: 0, entries }
    }

    /// The acknowledged version to send with the next [`Msg::ReadFastDelta`].
    pub fn acked_version(&self) -> u64 {
        self.version
    }

    /// Whether the server is known to hold `value` (such entries are
    /// omitted from the request's `new_values`).
    pub fn knows(&self, value: TaggedValue) -> bool {
        self.entries.contains_key(&value)
    }

    /// Merges one delta; idempotent (set unions), monotone in version.
    pub fn merge(&mut self, delta: &DeltaSnapshot) {
        for rec in &delta.entries {
            self.entries.entry(rec.value).or_default().extend(rec.updated.iter().copied());
        }
        self.version = self.version.max(delta.version);
        // Mirror the server's GC: drop what it dropped (it keeps `latest`
        // unconditionally), so the reconstruction stays exact.
        let (pruned, latest) = (delta.pruned, delta.latest);
        self.entries.retain(|v, _| *v >= pruned || *v == latest);
    }

    /// The server's logical full-info snapshot, reconstructed.
    pub fn reconstruct(&self) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .map(|(value, updated)| ValueRecord {
                    value: *value,
                    updated: updated.iter().copied().collect(),
                })
                .collect(),
        }
    }
}

impl Default for SnapshotCache {
    fn default() -> Self {
        SnapshotCache::new()
    }
}

/// Protocol messages. One enum serves every protocol variant; which subset
/// is exercised depends on the chosen write/read modes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Msg {
    // -- external inputs (harness → client) --------------------------------
    /// Invoke a read operation on a reader client.
    InvokeRead,
    /// Invoke a write of `Value` on a writer client.
    InvokeWrite(Value),

    // -- client → server ----------------------------------------------------
    /// Query the server's state (first round of slow writes / slow reads).
    Query {
        /// Operation phase this query belongs to.
        handle: OpHandle,
    },
    /// Store `value` on the server (second round of writes, and the
    /// write-back round of slow reads).
    Update {
        /// Operation phase this update belongs to.
        handle: OpHandle,
        /// The tagged value to store.
        value: TaggedValue,
        /// The sender's completed-operation floor — the largest tag it has
        /// returned or written — piggybacked for acknowledged-floor GC.
        floor: TaggedValue,
    },
    /// The combined fast-read round-trip (Algorithm 1, line 19): carries the
    /// reader's accumulated `valQueue`; the server registers the reader and
    /// replies with its store.
    ReadFast {
        /// Operation phase this round belongs to.
        handle: OpHandle,
        /// Every tagged value the reader has ever observed.
        val_queue: Vec<TaggedValue>,
    },
    /// The bounded-state fast read: only `valQueue` entries the reader does
    /// not already know this server holds, plus the reader's acknowledged
    /// snapshot version and completed-operation floor. The server replies
    /// with a [`DeltaSnapshot`] instead of its full store.
    ReadFastDelta {
        /// Operation phase this round belongs to.
        handle: OpHandle,
        /// The last [`DeltaSnapshot::version`] the reader merged from this
        /// server; the reply covers `(acked, now]`.
        acked: u64,
        /// The reader's completed-operation floor (GC piggyback).
        floor: TaggedValue,
        /// `valQueue` entries not yet acknowledged by this server.
        new_values: Vec<TaggedValue>,
    },

    // -- server → client ----------------------------------------------------
    /// Reply to [`Msg::Query`] with the server's current maximum value.
    QueryAck {
        /// Echo of the query's handle.
        handle: OpHandle,
        /// The server's current maximum tagged value (`vali`).
        latest: TaggedValue,
    },
    /// Acknowledgement of an [`Msg::Update`].
    UpdateAck {
        /// Echo of the update's handle.
        handle: OpHandle,
    },
    /// Reply to [`Msg::ReadFast`] with the server's full store.
    ReadFastAck {
        /// Echo of the round's handle.
        handle: OpHandle,
        /// The server's store at reply time.
        snapshot: Snapshot,
    },
    /// Reply to [`Msg::ReadFastDelta`] with the store changes above the
    /// reader's acknowledged version.
    ReadFastDeltaAck {
        /// Echo of the round's handle.
        handle: OpHandle,
        /// The incremental snapshot.
        delta: DeltaSnapshot,
    },
}

// --- wire codec -------------------------------------------------------------

impl Wire for OpId {
    fn encode(&self, buf: &mut BytesMut) {
        self.client.encode(buf);
        self.seq.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.client.encoded_len() + self.seq.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(OpId { client: ClientId::decode(buf)?, seq: u64::decode(buf)? })
    }
}

impl Wire for OpHandle {
    fn encode(&self, buf: &mut BytesMut) {
        self.op.encode(buf);
        self.phase.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.op.encoded_len() + self.phase.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(OpHandle { op: OpId::decode(buf)?, phase: u8::decode(buf)? })
    }
}

impl Wire for ValueRecord {
    fn encode(&self, buf: &mut BytesMut) {
        self.value.encode(buf);
        self.updated.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.value.encoded_len() + self.updated.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(ValueRecord {
            value: TaggedValue::decode(buf)?,
            updated: Vec::<ClientId>::decode(buf)?,
        })
    }
}

impl Wire for Snapshot {
    fn encode(&self, buf: &mut BytesMut) {
        self.entries.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.entries.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(Snapshot { entries: Vec::<ValueRecord>::decode(buf)? })
    }
}

impl Wire for DeltaSnapshot {
    fn encode(&self, buf: &mut BytesMut) {
        self.from.encode(buf);
        self.version.encode(buf);
        self.latest.encode(buf);
        self.pruned.encode(buf);
        self.entries.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.from.encoded_len()
            + self.version.encoded_len()
            + self.latest.encoded_len()
            + self.pruned.encoded_len()
            + self.entries.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(DeltaSnapshot {
            from: u64::decode(buf)?,
            version: u64::decode(buf)?,
            latest: TaggedValue::decode(buf)?,
            pruned: TaggedValue::decode(buf)?,
            entries: Vec::<ValueRecord>::decode(buf)?,
        })
    }
}

impl Wire for Msg {
    fn encode(&self, buf: &mut BytesMut) {
        use bytes::BufMut;
        match self {
            Msg::InvokeRead => buf.put_u8(0),
            Msg::InvokeWrite(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
            Msg::Query { handle } => {
                buf.put_u8(2);
                handle.encode(buf);
            }
            Msg::Update { handle, value, floor } => {
                buf.put_u8(3);
                handle.encode(buf);
                value.encode(buf);
                floor.encode(buf);
            }
            Msg::ReadFast { handle, val_queue } => {
                buf.put_u8(4);
                handle.encode(buf);
                val_queue.encode(buf);
            }
            Msg::QueryAck { handle, latest } => {
                buf.put_u8(5);
                handle.encode(buf);
                latest.encode(buf);
            }
            Msg::UpdateAck { handle } => {
                buf.put_u8(6);
                handle.encode(buf);
            }
            Msg::ReadFastAck { handle, snapshot } => {
                buf.put_u8(7);
                handle.encode(buf);
                snapshot.encode(buf);
            }
            Msg::ReadFastDelta { handle, acked, floor, new_values } => {
                buf.put_u8(8);
                handle.encode(buf);
                acked.encode(buf);
                floor.encode(buf);
                new_values.encode(buf);
            }
            Msg::ReadFastDeltaAck { handle, delta } => {
                buf.put_u8(9);
                handle.encode(buf);
                delta.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Msg::InvokeRead => 0,
            Msg::InvokeWrite(v) => v.encoded_len(),
            Msg::Query { handle } => handle.encoded_len(),
            Msg::Update { handle, value, floor } => {
                handle.encoded_len() + value.encoded_len() + floor.encoded_len()
            }
            Msg::ReadFast { handle, val_queue } => handle.encoded_len() + val_queue.encoded_len(),
            Msg::QueryAck { handle, latest } => handle.encoded_len() + latest.encoded_len(),
            Msg::UpdateAck { handle } => handle.encoded_len(),
            Msg::ReadFastAck { handle, snapshot } => {
                handle.encoded_len() + snapshot.encoded_len()
            }
            Msg::ReadFastDelta { handle, acked, floor, new_values } => {
                handle.encoded_len()
                    + acked.encoded_len()
                    + floor.encoded_len()
                    + new_values.encoded_len()
            }
            Msg::ReadFastDeltaAck { handle, delta } => handle.encoded_len() + delta.encoded_len(),
        }
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(Msg::InvokeRead),
            1 => Ok(Msg::InvokeWrite(Value::decode(buf)?)),
            2 => Ok(Msg::Query { handle: OpHandle::decode(buf)? }),
            3 => Ok(Msg::Update {
                handle: OpHandle::decode(buf)?,
                value: TaggedValue::decode(buf)?,
                floor: TaggedValue::decode(buf)?,
            }),
            4 => Ok(Msg::ReadFast {
                handle: OpHandle::decode(buf)?,
                val_queue: Vec::<TaggedValue>::decode(buf)?,
            }),
            5 => Ok(Msg::QueryAck {
                handle: OpHandle::decode(buf)?,
                latest: TaggedValue::decode(buf)?,
            }),
            6 => Ok(Msg::UpdateAck { handle: OpHandle::decode(buf)? }),
            7 => Ok(Msg::ReadFastAck {
                handle: OpHandle::decode(buf)?,
                snapshot: Snapshot::decode(buf)?,
            }),
            8 => Ok(Msg::ReadFastDelta {
                handle: OpHandle::decode(buf)?,
                acked: u64::decode(buf)?,
                floor: TaggedValue::decode(buf)?,
                new_values: Vec::<TaggedValue>::decode(buf)?,
            }),
            9 => Ok(Msg::ReadFastDeltaAck {
                handle: OpHandle::decode(buf)?,
                delta: DeltaSnapshot::decode(buf)?,
            }),
            value => Err(DecodeError::InvalidDiscriminant { context: "Msg", value }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::{Tag, WriterId};

    fn handle() -> OpHandle {
        OpHandle { op: OpId { client: ClientId::reader(1), seq: 3 }, phase: 2 }
    }

    fn tv(ts: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts, WriterId::new(w)), Value::new(v))
    }

    #[test]
    fn snapshot_queries() {
        let snap = Snapshot {
            entries: vec![
                ValueRecord { value: tv(1, 0, 10), updated: vec![ClientId::writer(0)] },
                ValueRecord {
                    value: tv(2, 1, 20),
                    updated: vec![ClientId::writer(1), ClientId::reader(0)],
                },
            ],
        };
        assert_eq!(snap.max_value(), Some(tv(2, 1, 20)));
        assert!(snap.contains(tv(1, 0, 10)));
        assert!(!snap.contains(tv(3, 0, 0)));
        assert_eq!(snap.updated_for(tv(1, 0, 10)).unwrap().len(), 1);
        assert!(snap.updated_for(tv(9, 9, 9)).is_none());
        assert_eq!(Snapshot::default().max_value(), None);
    }

    #[test]
    fn all_messages_round_trip_on_the_wire() {
        let msgs = vec![
            Msg::InvokeRead,
            Msg::InvokeWrite(Value::new(5)),
            Msg::Query { handle: handle() },
            Msg::Update { handle: handle(), value: tv(4, 1, 44), floor: tv(3, 0, 33) },
            Msg::ReadFast { handle: handle(), val_queue: vec![tv(1, 0, 1), tv(2, 1, 2)] },
            Msg::QueryAck { handle: handle(), latest: tv(9, 0, 99) },
            Msg::UpdateAck { handle: handle() },
            Msg::ReadFastAck {
                handle: handle(),
                snapshot: Snapshot {
                    entries: vec![ValueRecord {
                        value: tv(1, 1, 7),
                        updated: vec![ClientId::reader(0), ClientId::writer(1)],
                    }],
                },
            },
            Msg::ReadFastDelta {
                handle: handle(),
                acked: 17,
                floor: tv(2, 1, 2),
                new_values: vec![tv(3, 0, 3)],
            },
            Msg::ReadFastDeltaAck {
                handle: handle(),
                delta: DeltaSnapshot {
                    from: 17,
                    version: 21,
                    latest: tv(3, 0, 3),
                    pruned: tv(1, 0, 1),
                    entries: vec![ValueRecord {
                        value: tv(3, 0, 3),
                        updated: vec![ClientId::reader(1)],
                    }],
                },
            },
        ];
        for msg in msgs {
            let mut bytes = msg.to_bytes();
            assert_eq!(msg.encoded_len(), bytes.len(), "encoded_len matches encode: {msg:?}");
            let mut cursor: &[u8] = &bytes;
            assert_eq!(Msg::decode(&mut cursor).expect("decode from slice"), msg);
            assert!(cursor.is_empty());
            let decoded = Msg::decode(&mut bytes).expect("decode");
            assert_eq!(decoded, msg);
            assert!(bytes.is_empty());
        }
    }

    #[test]
    fn corrupted_discriminant_is_rejected() {
        let mut bytes: &[u8] = &[99];
        assert!(matches!(
            Msg::decode(&mut bytes),
            Err(DecodeError::InvalidDiscriminant { context: "Msg", value: 99 })
        ));
    }

    #[test]
    fn display_formats_handles() {
        assert_eq!(handle().to_string(), "r2#3(2)");
    }
}
