//! Protocol messages exchanged between clients and servers.
//!
//! Every protocol in the design space is built from the two round-trip
//! primitives of the paper's algorithm schema (§2.2): *query* (collect
//! information from all servers) and *update* (send information to all
//! servers). The fast read of Algorithm 1 uses a combined round-trip that
//! both updates (the reader's `valQueue`, plus registering the reader in the
//! `updated` bookkeeping) and queries (the server's value store).

use std::collections::{BTreeMap, BTreeSet};

use bytes::{Buf, BytesMut};
use serde::{Deserialize, Serialize};

use mwr_types::codec::{client_runs, DecodeError, Wire, MAX_COLLECTION_LEN};
use mwr_types::{ClientId, ConfigEpoch, RegisterId, ServerId, TaggedValue, Value};

use crate::admissible::WitnessIndex;

/// Identifier of one operation instance: the invoking client plus a
/// per-client sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId {
    /// The invoking client.
    pub client: ClientId,
    /// The client-local sequence number (0, 1, 2, …).
    pub seq: u64,
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.client, self.seq)
    }
}

/// Identifies one *phase* (round-trip) of one operation, so that late
/// replies from an earlier phase or operation are discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpHandle {
    /// The operation.
    pub op: OpId,
    /// The round-trip number within the operation (1 or 2).
    pub phase: u8,
}

impl std::fmt::Display for OpHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.op, self.phase)
    }
}

/// One entry of a server's value store as reported to a fast read: a tagged
/// value plus the set of clients recorded in its `updated` set
/// (Algorithm 2's `valuevector`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueRecord {
    /// The stored tagged value.
    pub value: TaggedValue,
    /// Clients that have been registered on this value, in sorted order.
    pub updated: Vec<ClientId>,
}

/// A server's reply to the fast-read round-trip: its full value store.
///
/// This follows the paper's *full-info* inclination (§4.1): servers report
/// everything they hold; practical deployments would prune, which is an
/// optimization the analysis deliberately ignores. The delta protocol
/// ([`Msg::ReadFastDelta`]/[`DeltaSnapshot`]) is that optimization: clients
/// reconstruct this exact snapshot from cached per-server state instead of
/// receiving it whole on every read.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// All stored values with their `updated` sets, sorted by tag.
    pub entries: Vec<ValueRecord>,
}

impl Snapshot {
    /// The largest tagged value in the snapshot, if any.
    pub fn max_value(&self) -> Option<TaggedValue> {
        self.entries.iter().map(|e| e.value).max()
    }

    /// The `updated` set recorded for `value`, if present.
    pub fn updated_for(&self, value: TaggedValue) -> Option<&[ClientId]> {
        self.entries
            .iter()
            .find(|e| e.value == value)
            .map(|e| e.updated.as_slice())
    }

    /// Whether the snapshot contains `value`.
    pub fn contains(&self, value: TaggedValue) -> bool {
        self.entries.iter().any(|e| e.value == value)
    }
}

/// The incremental form of a [`Snapshot`]: everything the server learned
/// since the reader's acknowledged version, plus enough header state for the
/// reader to keep its cached copy of the server's store exact.
///
/// Versions count *registrations* — every `(value, client)` pair the server
/// records bumps a per-server monotone counter — so the half-open window
/// `(from, version]` identifies precisely the store mutations this delta
/// carries. A reader that merges deltas contiguously (its acknowledged
/// version always equals the previous delta's `version`; per-link FIFO and
/// one-operation-at-a-time clients guarantee this) reconstructs the server's
/// full store byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaSnapshot {
    /// The reader-acknowledged version this delta starts from (exclusive).
    pub from: u64,
    /// The server's registration version after handling the request; the
    /// reader's next acknowledged floor.
    pub version: u64,
    /// The server's current maximum value `vali`.
    pub latest: TaggedValue,
    /// The server's garbage-collection floor: every value strictly below it
    /// has been pruned server-side and may be pruned from reader state too
    /// (it is below every client's completed-operation floor).
    pub pruned: TaggedValue,
    /// Values with registrations in `(from, version]`, sorted by tag; each
    /// record lists only the *newly registered* clients.
    pub entries: Vec<ValueRecord>,
}

/// One client's reported completed-operation floor, as carried inside a
/// [`StateTransfer`] so a recovering server inherits its peers' GC progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloorReport {
    /// The reporting client.
    pub client: ClientId,
    /// The largest tag the client has returned or written, as known to the
    /// transferring server.
    pub floor: TaggedValue,
}

/// A catch-up snapshot of one server's full state, shipped to a recovering
/// peer during rejoin ([`Msg::StateFetch`] / [`Msg::StateSnapshot`]).
///
/// Carries everything a rejoined server needs to serve quorums again
/// without corrupting anyone: the full store with its registration sets,
/// the sender's registration-version high-water mark (so the recovering
/// server can resume *above* every version stamp a reader might hold), the
/// GC floor (so pruned tags are never resurrected), and the sender's GC
/// membership and floor reports (so pruning re-engages without waiting for
/// every client to speak again). See `ServerState::install` for the merge
/// rules and the soundness argument.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateTransfer {
    /// The sender's registration-version high-water mark.
    pub version: u64,
    /// The sender's current maximum value `vali`.
    pub latest: TaggedValue,
    /// The sender's GC floor: everything strictly below it is dead.
    pub pruned: TaggedValue,
    /// The sender's full store: every value with its registered clients.
    pub entries: Vec<ValueRecord>,
    /// GC membership: every client the sender has heard from.
    pub seen: Vec<ClientId>,
    /// The completed-operation floors reported to the sender.
    pub floors: Vec<FloorReport>,
}

/// One register's catch-up snapshot inside a shard-wide transfer
/// ([`Msg::ShardSnapshot`]).
///
/// A rejoining keyspace server fetches per *shard*, but state transfer stays
/// per *register*: each register's store, floors and version stamps are
/// installed into that register's own `ServerState`, so recovery can never
/// bleed one key's GC floor into another or resurrect a value under the
/// wrong key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterTransfer {
    /// The register this state belongs to.
    pub register: RegisterId,
    /// The register's full per-server state, exactly as in the
    /// single-register rejoin path.
    pub state: StateTransfer,
}

/// The entries of `val_queue` not present in the sorted `known` sequence —
/// the `new_values` of the next delta request, shared by both cache kinds.
/// A single merge-join over the two sorted sequences
/// (`O(|queue| + |known|)`), instead of a tree probe per queue entry per
/// server.
fn unacknowledged_from<'a>(
    known: impl Iterator<Item = &'a TaggedValue>,
    val_queue: &BTreeSet<TaggedValue>,
) -> Vec<TaggedValue> {
    let mut out = Vec::new();
    let mut known = known.peekable();
    for &v in val_queue {
        while known.next_if(|k| **k < v).is_some() {}
        if known.peek().copied() != Some(&v) {
            out.push(v);
        }
    }
    out
}

/// A sorted, deduplicated set of client identifiers, Vec-backed: at
/// protocol populations (tens of clients) a binary search plus memmove
/// beats a tree's node allocations on the delta-merge flood path, and the
/// admissibility evaluators read it as a plain slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientSet(Vec<ClientId>);

impl ClientSet {
    /// An empty set.
    pub fn new() -> Self {
        ClientSet::default()
    }

    /// Inserts `client`, returning whether it was new.
    pub fn insert(&mut self, client: ClientId) -> bool {
        match self.0.binary_search(&client) {
            Ok(_) => false,
            Err(i) => {
                self.0.insert(i, client);
                true
            }
        }
    }

    /// Whether `client` is in the set.
    pub fn contains(&self, client: ClientId) -> bool {
        self.0.binary_search(&client).is_ok()
    }

    /// The clients in ascending order.
    pub fn as_slice(&self) -> &[ClientId] {
        &self.0
    }

    /// Number of clients in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl FromIterator<ClientId> for ClientSet {
    fn from_iter<I: IntoIterator<Item = ClientId>>(iter: I) -> Self {
        let mut v: Vec<ClientId> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        ClientSet(v)
    }
}

/// A reader's cached copy of one server's store, maintained by merging
/// [`DeltaSnapshot`]s — the client-side dual of the delta wire, shared by
/// the simulator client and `mwr-runtime`'s live client so the two can
/// never drift.
///
/// Contiguous versioned deltas over FIFO links keep the cache an exact
/// mirror of the server's store (including server-side GC pruning, which
/// always retains the server's `latest`), so [`reconstruct`](Self::reconstruct)
/// equals the full-info [`Snapshot`] byte-for-byte.
#[derive(Debug, Clone)]
pub struct SnapshotCache {
    /// The last merged [`DeltaSnapshot::version`]; sent back as `acked`.
    version: u64,
    /// value → registered clients, as far as this reader knows; sorted by
    /// value (small post-GC, so a flat Vec beats a tree on the merge path).
    entries: Vec<(TaggedValue, ClientSet)>,
}

impl SnapshotCache {
    /// Seeded like a fresh server's store: the initial value with an empty
    /// `updated` set, version 0.
    pub fn new() -> Self {
        SnapshotCache { version: 0, entries: vec![(TaggedValue::initial(), ClientSet::new())] }
    }

    /// The acknowledged version to send with the next [`Msg::ReadFastDelta`].
    pub fn acked_version(&self) -> u64 {
        self.version
    }

    /// Whether the server is known to hold `value` (such entries are
    /// omitted from the request's `new_values`).
    pub fn knows(&self, value: TaggedValue) -> bool {
        self.entries.binary_search_by_key(&value, |e| e.0).is_ok()
    }

    /// The entries of `val_queue` this server is *not* known to hold — the
    /// `new_values` of the next delta request.
    pub fn unacknowledged(&self, val_queue: &BTreeSet<TaggedValue>) -> Vec<TaggedValue> {
        unacknowledged_from(self.entries.iter().map(|e| &e.0), val_queue)
    }

    /// The registered clients cached for `value`, if the server is known to
    /// hold it.
    pub fn updated_for(&self, value: TaggedValue) -> Option<&ClientSet> {
        self.entries
            .binary_search_by_key(&value, |e| e.0)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Iterates the cached `(value, registered clients)` entries in
    /// ascending tag order — the borrowed form of [`reconstruct`]
    /// (`SnapshotView::Cached` reads through this).
    ///
    /// [`reconstruct`]: Self::reconstruct
    pub fn iter(&self) -> std::slice::Iter<'_, (TaggedValue, ClientSet)> {
        self.entries.iter()
    }

    /// The mutable client set for `value`, created empty if absent.
    fn set_mut(&mut self, value: TaggedValue) -> &mut ClientSet {
        match self.entries.binary_search_by_key(&value, |e| e.0) {
            Ok(i) => &mut self.entries[i].1,
            Err(i) => {
                self.entries.insert(i, (value, ClientSet::new()));
                &mut self.entries[i].1
            }
        }
    }

    /// Merges one delta; idempotent (set unions), monotone in version.
    ///
    /// [`FastReadState::merge`] is the indexed twin of this method: the two
    /// must apply identical store semantics, which
    /// `tests/witness_equivalence.rs` pins by rebuilding the index from
    /// caches merged through this method.
    pub fn merge(&mut self, delta: &DeltaSnapshot) {
        for rec in &delta.entries {
            let clients = self.set_mut(rec.value);
            for &c in &rec.updated {
                clients.insert(c);
            }
        }
        self.version = self.version.max(delta.version);
        // Mirror the server's GC: drop what it dropped (it keeps `latest`
        // unconditionally), so the reconstruction stays exact.
        let (pruned, latest) = (delta.pruned, delta.latest);
        self.entries.retain(|(v, _)| *v >= pruned || *v == latest);
    }

    /// The server's logical full-info snapshot, reconstructed.
    pub fn reconstruct(&self) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .map(|(value, updated)| ValueRecord {
                    value: *value,
                    updated: updated.as_slice().to_vec(),
                })
                .collect(),
        }
    }
}

impl Default for SnapshotCache {
    fn default() -> Self {
        SnapshotCache::new()
    }
}

/// Slim per-server state for the indexed fast-read path: the acknowledged
/// version plus the sorted list of values the server is known to hold.
///
/// Client registrations live only in the shared [`WitnessIndex`] (as slot
/// bits) — the witness bit *is* the membership test — so the merge flood
/// pays one binary search per registration instead of maintaining a
/// parallel client set per server (that duplicate lives on in
/// [`SnapshotCache`] for the naive/standalone path).
#[derive(Debug, Clone, Default)]
pub struct ReaderCache {
    /// The last merged [`DeltaSnapshot::version`]; sent back as `acked`.
    version: u64,
    /// Values the server is known to hold, sorted ascending.
    values: Vec<TaggedValue>,
}

impl ReaderCache {
    /// Seeded like a fresh server's store: the initial value, version 0.
    fn new() -> Self {
        ReaderCache { version: 0, values: vec![TaggedValue::initial()] }
    }

    /// The acknowledged version to send with the next
    /// [`Msg::ReadFastDelta`].
    pub fn acked_version(&self) -> u64 {
        self.version
    }

    /// Whether the server is known to hold `value` (such entries are
    /// omitted from the request's `new_values`).
    pub fn knows(&self, value: TaggedValue) -> bool {
        self.values.binary_search(&value).is_ok()
    }

    /// The entries of `val_queue` this server is *not* known to hold — the
    /// `new_values` of the next delta request.
    pub fn unacknowledged(&self, val_queue: &BTreeSet<TaggedValue>) -> Vec<TaggedValue> {
        unacknowledged_from(self.values.iter(), val_queue)
    }

    /// Records that the server holds `value`.
    fn add_value(&mut self, value: TaggedValue) {
        if let Err(i) = self.values.binary_search(&value) {
            self.values.insert(i, value);
        }
    }
}

/// A reader's complete fast-read state for the delta wire: slim per-server
/// [`ReaderCache`]s plus a [`WitnessIndex`] over all of them, maintained
/// *incrementally* as deltas merge.
///
/// Index slot `s` is server `s` (at most 128 servers). Because every cache
/// mutation — registration, value arrival, GC eviction, even lazy cache
/// creation — updates the index in the same call, a read's return-value
/// selection needs no per-read reconstruction or indexing at all: it masks
/// the standing index down to the servers that replied
/// ([`WitnessIndex::selector`]) and walks it once. Shared by the simulator
/// client and `mwr-runtime`'s live client so the two cannot drift.
#[derive(Debug, Clone, Default)]
pub struct FastReadState {
    caches: BTreeMap<ServerId, ReaderCache>,
    index: WitnessIndex,
}

impl FastReadState {
    /// Empty state: no server contacted yet.
    pub fn new() -> Self {
        FastReadState::default()
    }

    /// The index slot backing `server`.
    ///
    /// # Panics
    ///
    /// Panics if `server.index() ≥ 128` (bitmask width).
    pub fn slot(server: ServerId) -> usize {
        let slot = server.as_usize();
        assert!(slot < crate::admissible::MAX_SLOTS, "server {server} beyond bitmask width");
        slot
    }

    /// The reply-mask bit for `server`.
    pub fn mask_bit(server: ServerId) -> u128 {
        1u128 << Self::slot(server)
    }

    /// The cache mirroring `server`'s store, created on first use (a fresh
    /// cache mirrors a fresh store: the initial value, no registrations —
    /// and the index learns that entry immediately).
    pub fn cache(&mut self, server: ServerId) -> &ReaderCache {
        self.cache_mut(server)
    }

    fn cache_mut(&mut self, server: ServerId) -> &mut ReaderCache {
        let slot = Self::slot(server);
        let index = &mut self.index;
        self.caches.entry(server).or_insert_with(|| {
            index.record_value(slot, TaggedValue::initial());
            ReaderCache::new()
        })
    }

    /// Merges one delta from `server`, keeping cache and index exact in one
    /// pass: new registrations set witness bits, GC evictions clear them.
    ///
    /// Applies exactly [`SnapshotCache::merge`]'s store semantics (pinned
    /// by `tests/witness_equivalence.rs` against a from-scratch rebuild
    /// over `SnapshotCache` mirrors), with one index probe per record and
    /// one idempotent witness-bit probe per registration.
    pub fn merge(&mut self, server: ServerId, delta: &DeltaSnapshot) {
        let slot = Self::slot(server);
        let bit = 1u128 << slot;
        self.cache_mut(server);
        let FastReadState { caches, index } = self;
        let cache = caches.get_mut(&server).expect("cache_mut created the entry");
        for rec in &delta.entries {
            cache.add_value(rec.value);
            let w = index.witness_entry(rec.value);
            w.containing |= bit;
            w.record_sorted(slot, &rec.updated);
        }
        cache.version = cache.version.max(delta.version);
        // Mirror the server's GC: drop what it dropped (it keeps `latest`
        // unconditionally), evicting the dropped entries' index bits too.
        let (pruned, latest) = (delta.pruned, delta.latest);
        cache.values.retain(|v| {
            let keep = *v >= pruned || *v == latest;
            if !keep {
                index.evict(slot, *v);
            }
            keep
        });
    }

    /// The standing witness index over every cached server store.
    pub fn index(&self) -> &WitnessIndex {
        &self.index
    }

    /// Forgets everything cached about `server`, returning its slot to the
    /// fresh-store state (the initial value, version 0) and evicting every
    /// stale witness bit from the index.
    ///
    /// Called when a delta reply's `from` falls *below* the acknowledged
    /// version the reader sent: the server has crashed and been reinstalled
    /// from its peers, so the cached mirror of its store no longer
    /// corresponds to anything the server holds. The reply that signalled
    /// the reset covers the server's entire rebuilt store from version 0,
    /// so merging it right after this call makes the mirror exact again.
    pub fn reset(&mut self, server: ServerId) {
        let slot = Self::slot(server);
        let Some(cache) = self.caches.get_mut(&server) else { return };
        for value in cache.values.drain(..) {
            self.index.evict(slot, value);
        }
        cache.values.push(TaggedValue::initial());
        cache.version = 0;
        self.index.record_value(slot, TaggedValue::initial());
    }
}

/// Protocol messages. One enum serves every protocol variant; which subset
/// is exercised depends on the chosen write/read modes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Msg {
    // -- external inputs (harness → client) --------------------------------
    /// Invoke a read operation on a reader client.
    InvokeRead,
    /// Invoke a write of `Value` on a writer client.
    InvokeWrite(Value),

    // -- client → server ----------------------------------------------------
    /// Query the server's state (first round of slow writes / slow reads).
    Query {
        /// Operation phase this query belongs to.
        handle: OpHandle,
    },
    /// Store `value` on the server (second round of writes, and the
    /// write-back round of slow reads).
    Update {
        /// Operation phase this update belongs to.
        handle: OpHandle,
        /// The tagged value to store.
        value: TaggedValue,
        /// The sender's completed-operation floor — the largest tag it has
        /// returned or written — piggybacked for acknowledged-floor GC.
        floor: TaggedValue,
    },
    /// The combined fast-read round-trip (Algorithm 1, line 19): carries the
    /// reader's accumulated `valQueue`; the server registers the reader and
    /// replies with its store.
    ReadFast {
        /// Operation phase this round belongs to.
        handle: OpHandle,
        /// Every tagged value the reader has ever observed.
        val_queue: Vec<TaggedValue>,
    },
    /// The bounded-state fast read: only `valQueue` entries the reader does
    /// not already know this server holds, plus the reader's acknowledged
    /// snapshot version and completed-operation floor. The server replies
    /// with a [`DeltaSnapshot`] instead of its full store.
    ReadFastDelta {
        /// Operation phase this round belongs to.
        handle: OpHandle,
        /// The last [`DeltaSnapshot::version`] the reader merged from this
        /// server; the reply covers `(acked, now]`.
        acked: u64,
        /// The reader's completed-operation floor (GC piggyback).
        floor: TaggedValue,
        /// `valQueue` entries not yet acknowledged by this server.
        new_values: Vec<TaggedValue>,
    },

    // -- server → client ----------------------------------------------------
    /// Reply to [`Msg::Query`] with the server's current maximum value.
    QueryAck {
        /// Echo of the query's handle.
        handle: OpHandle,
        /// The server's current maximum tagged value (`vali`).
        latest: TaggedValue,
    },
    /// Acknowledgement of an [`Msg::Update`].
    UpdateAck {
        /// Echo of the update's handle.
        handle: OpHandle,
    },
    /// Reply to [`Msg::ReadFast`] with the server's full store.
    ReadFastAck {
        /// Echo of the round's handle.
        handle: OpHandle,
        /// The server's store at reply time.
        snapshot: Snapshot,
    },
    /// Reply to [`Msg::ReadFastDelta`] with the store changes above the
    /// reader's acknowledged version.
    ReadFastDeltaAck {
        /// Echo of the round's handle.
        handle: OpHandle,
        /// The incremental snapshot.
        delta: DeltaSnapshot,
    },

    // -- recovery and churn -------------------------------------------------
    /// A recovering server's request for a catch-up snapshot (server →
    /// server — the one message exchanged between replicas). Peers reply
    /// with [`Msg::StateSnapshot`]; the recovering server installs a quorum
    /// of them before it resumes answering clients.
    StateFetch {
        /// Correlates replies with this fetch round (servers have no
        /// [`OpHandle`]s).
        nonce: u64,
    },
    /// A live server's reply to [`Msg::StateFetch`]: its full state.
    StateSnapshot {
        /// Echo of the fetch nonce.
        nonce: u64,
        /// The catch-up payload, boxed so the rare recovery message does
        /// not fatten every [`Msg`] moved through a channel.
        state: Box<StateTransfer>,
    },
    /// A client's announcement that it is leaving for good: the server
    /// removes it from GC membership (so its silence can never wedge the
    /// floor again) and drops its registrations and catch-up bookkeeping.
    Depart {
        /// Operation phase this departure belongs to.
        handle: OpHandle,
    },
    /// Acknowledgement of a [`Msg::Depart`].
    DepartAck {
        /// Echo of the departure's handle.
        handle: OpHandle,
    },

    // -- keyspace multiplexing (wire version 2) -----------------------------
    /// A protocol message addressed to one named register of a keyspace.
    ///
    /// This is the wire-version-2 frame header: a compact register id
    /// prefixed to any inner message, letting one connection (and one
    /// per-peer writer pipeline) multiplex every register a client touches.
    /// Discriminants 0–13 are the legacy single-register frames and still
    /// decode unchanged; a bank routes them to [`RegisterId::DEFAULT`], so a
    /// v1 peer talking to a keyspace server lands on register `k1`.
    ForRegister {
        /// The addressed register.
        register: RegisterId,
        /// The wrapped protocol message, boxed to keep [`Msg`]'s move size
        /// at the legacy frame size.
        inner: Box<Msg>,
    },
    /// A rejoining keyspace server's request for one shard's catch-up state
    /// (server → server). Peers in the shard's group reply with
    /// [`Msg::ShardSnapshot`]; the recovering server installs a quorum of
    /// them *per shard* before serving that shard again.
    ShardFetch {
        /// The shard whose registers are requested.
        shard: u32,
        /// Correlates replies with this fetch round.
        nonce: u64,
    },
    /// A live server's reply to [`Msg::ShardFetch`]: the full state of every
    /// register of that shard it has instantiated. Registers the peer never
    /// touched are omitted — lazy instantiation makes absence an empty
    /// (vacuously correct) transfer.
    ShardSnapshot {
        /// Echo of the fetch nonce.
        nonce: u64,
        /// Echo of the requested shard.
        shard: u32,
        /// Per-register catch-up payloads.
        registers: Vec<RegisterTransfer>,
    },

    // -- reconfiguration (wire version 3) -----------------------------------
    /// The configuration-epoch frame header: every message sent while the
    /// cluster is past epoch 0 travels wrapped in the sender's current
    /// epoch. Receivers adopt `max(own, frame)` and tag their replies, so a
    /// client whose view is stale learns of a reconfiguration from *any*
    /// reply and refreshes its endpoint set mid-round. Legacy v1/v2 frames
    /// (discriminants 0–16) decode unchanged as epoch 0, and an epoch-0
    /// process emits no wrapper — a cluster that never reconfigures stays
    /// byte-identical on the wire.
    InEpoch {
        /// The sender's configuration epoch.
        epoch: ConfigEpoch,
        /// The wrapped protocol message, boxed to keep [`Msg`]'s move size
        /// at the legacy frame size.
        inner: Box<Msg>,
    },
    /// The reconfiguration coordinator's push of a merged old-quorum state
    /// into a *joining* server (server-side counterpart of the rejoin path's
    /// pull). The target installs the transfers exactly as a recovering
    /// server would — version resumes above every high-water mark, nothing
    /// below the transferred floor is resurrected — and acknowledges.
    StateInstall {
        /// Correlates the acknowledgement with this install.
        nonce: u64,
        /// One transfer per old-configuration quorum member.
        transfers: Vec<StateTransfer>,
    },
    /// A joining server's acknowledgement of a [`Msg::StateInstall`]: its
    /// state now dominates an old-configuration quorum.
    StateInstallAck {
        /// Echo of the install nonce.
        nonce: u64,
    },
    /// The coordinator's push of one shard's merged state into a server
    /// *gaining* that shard under the new configuration (a joining server,
    /// or a survivor the rendezvous reshuffle assigns new shards).
    ShardInstall {
        /// Correlates the acknowledgement with this install.
        nonce: u64,
        /// The shard whose registers are pushed.
        shard: u32,
        /// Per-register payloads, each merged from a group quorum.
        registers: Vec<RegisterTransfer>,
    },
    /// Acknowledgement of a [`Msg::ShardInstall`].
    ShardInstallAck {
        /// Echo of the install nonce.
        nonce: u64,
        /// Echo of the installed shard.
        shard: u32,
    },

    // -- batched registration gossip (wire version 4) ------------------------
    /// The run-length fast read: field-for-field identical to
    /// [`Msg::ReadFastDelta`], but its discriminant announces that the
    /// sender decodes run-length acknowledgements, so the server replies
    /// with [`Msg::ReadFastRunsAck`] instead of [`Msg::ReadFastDeltaAck`].
    /// A v3 peer keeps sending discriminant 8 and keeps receiving
    /// discriminant 9, byte for byte — version negotiation is carried by
    /// the request discriminant alone.
    ReadFastRuns {
        /// Operation phase this round belongs to.
        handle: OpHandle,
        /// The last [`DeltaSnapshot::version`] the reader merged from this
        /// server; the reply covers `(acked, now]`.
        acked: u64,
        /// The reader's completed-operation floor (GC piggyback).
        floor: TaggedValue,
        /// `valQueue` entries not yet acknowledged by this server.
        new_values: Vec<TaggedValue>,
    },
    /// Reply to [`Msg::ReadFastRuns`]: the *same* [`DeltaSnapshot`] a
    /// [`Msg::ReadFastDeltaAck`] would carry, but each record's sorted
    /// `updated` list travels run-length encoded
    /// ([`mwr_types::codec::client_runs`]). Decoding expands the runs back
    /// into the identical flat list, so everything past the codec — cache
    /// merges, the witness index, `admissible(·)` selection — is
    /// byte-for-byte the full-information protocol. The compression
    /// collapses the O(W×R) catch-up re-registration stream (every write
    /// re-registers every reader, which every other reader then receives)
    /// into one run per value.
    ReadFastRunsAck {
        /// Echo of the round's handle.
        handle: OpHandle,
        /// The incremental snapshot (runs are a wire artifact only).
        delta: DeltaSnapshot,
    },
}

impl Msg {
    /// The epoch this frame was tagged with: the header epoch for
    /// [`Msg::InEpoch`] frames, epoch 0 for legacy frames.
    pub fn epoch(&self) -> ConfigEpoch {
        match self {
            Msg::InEpoch { epoch, .. } => *epoch,
            _ => ConfigEpoch::ZERO,
        }
    }

    /// Strips an [`Msg::InEpoch`] header, returning the frame's epoch and
    /// payload (legacy frames are their own payload at epoch 0).
    pub fn into_epoch_parts(self) -> (ConfigEpoch, Msg) {
        match self {
            Msg::InEpoch { epoch, inner } => (epoch, *inner),
            other => (ConfigEpoch::ZERO, other),
        }
    }

    /// Wraps `self` in an epoch header when `epoch > 0`; epoch-0 frames stay
    /// legacy so a never-reconfigured cluster is byte-identical on the wire.
    pub fn in_epoch(self, epoch: ConfigEpoch) -> Msg {
        if epoch == ConfigEpoch::ZERO {
            self
        } else {
            Msg::InEpoch { epoch, inner: Box::new(self) }
        }
    }
}

// --- wire codec -------------------------------------------------------------

impl Wire for OpId {
    fn encode(&self, buf: &mut BytesMut) {
        self.client.encode(buf);
        self.seq.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.client.encoded_len() + self.seq.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(OpId { client: ClientId::decode(buf)?, seq: u64::decode(buf)? })
    }
}

impl Wire for OpHandle {
    fn encode(&self, buf: &mut BytesMut) {
        self.op.encode(buf);
        self.phase.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.op.encoded_len() + self.phase.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(OpHandle { op: OpId::decode(buf)?, phase: u8::decode(buf)? })
    }
}

impl Wire for ValueRecord {
    fn encode(&self, buf: &mut BytesMut) {
        self.value.encode(buf);
        self.updated.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.value.encoded_len() + self.updated.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(ValueRecord {
            value: TaggedValue::decode(buf)?,
            updated: Vec::<ClientId>::decode(buf)?,
        })
    }
}

impl Wire for Snapshot {
    fn encode(&self, buf: &mut BytesMut) {
        self.entries.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.entries.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(Snapshot { entries: Vec::<ValueRecord>::decode(buf)? })
    }
}

impl Wire for DeltaSnapshot {
    fn encode(&self, buf: &mut BytesMut) {
        self.from.encode(buf);
        self.version.encode(buf);
        self.latest.encode(buf);
        self.pruned.encode(buf);
        self.entries.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.from.encoded_len()
            + self.version.encoded_len()
            + self.latest.encoded_len()
            + self.pruned.encoded_len()
            + self.entries.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(DeltaSnapshot {
            from: u64::decode(buf)?,
            version: u64::decode(buf)?,
            latest: TaggedValue::decode(buf)?,
            pruned: TaggedValue::decode(buf)?,
            entries: Vec::<ValueRecord>::decode(buf)?,
        })
    }
}

impl Wire for FloorReport {
    fn encode(&self, buf: &mut BytesMut) {
        self.client.encode(buf);
        self.floor.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.client.encoded_len() + self.floor.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(FloorReport { client: ClientId::decode(buf)?, floor: TaggedValue::decode(buf)? })
    }
}

impl Wire for StateTransfer {
    fn encode(&self, buf: &mut BytesMut) {
        self.version.encode(buf);
        self.latest.encode(buf);
        self.pruned.encode(buf);
        self.entries.encode(buf);
        self.seen.encode(buf);
        self.floors.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.version.encoded_len()
            + self.latest.encoded_len()
            + self.pruned.encoded_len()
            + self.entries.encoded_len()
            + self.seen.encoded_len()
            + self.floors.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(StateTransfer {
            version: u64::decode(buf)?,
            latest: TaggedValue::decode(buf)?,
            pruned: TaggedValue::decode(buf)?,
            entries: Vec::<ValueRecord>::decode(buf)?,
            seen: Vec::<ClientId>::decode(buf)?,
            floors: Vec::<FloorReport>::decode(buf)?,
        })
    }
}

impl Wire for RegisterTransfer {
    fn encode(&self, buf: &mut BytesMut) {
        self.register.encode(buf);
        self.state.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.register.encoded_len() + self.state.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(RegisterTransfer {
            register: RegisterId::decode(buf)?,
            state: StateTransfer::decode(buf)?,
        })
    }
}

impl Wire for Msg {
    fn encode(&self, buf: &mut BytesMut) {
        use bytes::BufMut;
        match self {
            Msg::InvokeRead => buf.put_u8(0),
            Msg::InvokeWrite(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
            Msg::Query { handle } => {
                buf.put_u8(2);
                handle.encode(buf);
            }
            Msg::Update { handle, value, floor } => {
                buf.put_u8(3);
                handle.encode(buf);
                value.encode(buf);
                floor.encode(buf);
            }
            Msg::ReadFast { handle, val_queue } => {
                buf.put_u8(4);
                handle.encode(buf);
                val_queue.encode(buf);
            }
            Msg::QueryAck { handle, latest } => {
                buf.put_u8(5);
                handle.encode(buf);
                latest.encode(buf);
            }
            Msg::UpdateAck { handle } => {
                buf.put_u8(6);
                handle.encode(buf);
            }
            Msg::ReadFastAck { handle, snapshot } => {
                buf.put_u8(7);
                handle.encode(buf);
                snapshot.encode(buf);
            }
            Msg::ReadFastDelta { handle, acked, floor, new_values } => {
                buf.put_u8(8);
                handle.encode(buf);
                acked.encode(buf);
                floor.encode(buf);
                new_values.encode(buf);
            }
            Msg::ReadFastDeltaAck { handle, delta } => {
                buf.put_u8(9);
                handle.encode(buf);
                delta.encode(buf);
            }
            Msg::StateFetch { nonce } => {
                buf.put_u8(10);
                nonce.encode(buf);
            }
            Msg::StateSnapshot { nonce, state } => {
                buf.put_u8(11);
                nonce.encode(buf);
                state.encode(buf);
            }
            Msg::Depart { handle } => {
                buf.put_u8(12);
                handle.encode(buf);
            }
            Msg::DepartAck { handle } => {
                buf.put_u8(13);
                handle.encode(buf);
            }
            Msg::ForRegister { register, inner } => {
                buf.put_u8(14);
                register.encode(buf);
                inner.encode(buf);
            }
            Msg::ShardFetch { shard, nonce } => {
                buf.put_u8(15);
                shard.encode(buf);
                nonce.encode(buf);
            }
            Msg::ShardSnapshot { nonce, shard, registers } => {
                buf.put_u8(16);
                nonce.encode(buf);
                shard.encode(buf);
                registers.encode(buf);
            }
            Msg::InEpoch { epoch, inner } => {
                buf.put_u8(17);
                epoch.encode(buf);
                inner.encode(buf);
            }
            Msg::StateInstall { nonce, transfers } => {
                buf.put_u8(18);
                nonce.encode(buf);
                transfers.encode(buf);
            }
            Msg::StateInstallAck { nonce } => {
                buf.put_u8(19);
                nonce.encode(buf);
            }
            Msg::ShardInstall { nonce, shard, registers } => {
                buf.put_u8(20);
                nonce.encode(buf);
                shard.encode(buf);
                registers.encode(buf);
            }
            Msg::ShardInstallAck { nonce, shard } => {
                buf.put_u8(21);
                nonce.encode(buf);
                shard.encode(buf);
            }
            Msg::ReadFastRuns { handle, acked, floor, new_values } => {
                buf.put_u8(22);
                handle.encode(buf);
                acked.encode(buf);
                floor.encode(buf);
                new_values.encode(buf);
            }
            Msg::ReadFastRunsAck { handle, delta } => {
                buf.put_u8(23);
                handle.encode(buf);
                delta.from.encode(buf);
                delta.version.encode(buf);
                delta.latest.encode(buf);
                delta.pruned.encode(buf);
                (delta.entries.len() as u64).encode(buf);
                for rec in &delta.entries {
                    rec.value.encode(buf);
                    client_runs::encode(&rec.updated, buf);
                }
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Msg::InvokeRead => 0,
            Msg::InvokeWrite(v) => v.encoded_len(),
            Msg::Query { handle } => handle.encoded_len(),
            Msg::Update { handle, value, floor } => {
                handle.encoded_len() + value.encoded_len() + floor.encoded_len()
            }
            Msg::ReadFast { handle, val_queue } => handle.encoded_len() + val_queue.encoded_len(),
            Msg::QueryAck { handle, latest } => handle.encoded_len() + latest.encoded_len(),
            Msg::UpdateAck { handle } => handle.encoded_len(),
            Msg::ReadFastAck { handle, snapshot } => {
                handle.encoded_len() + snapshot.encoded_len()
            }
            Msg::ReadFastDelta { handle, acked, floor, new_values } => {
                handle.encoded_len()
                    + acked.encoded_len()
                    + floor.encoded_len()
                    + new_values.encoded_len()
            }
            Msg::ReadFastDeltaAck { handle, delta } => handle.encoded_len() + delta.encoded_len(),
            Msg::StateFetch { nonce } => nonce.encoded_len(),
            Msg::StateSnapshot { nonce, state } => nonce.encoded_len() + state.encoded_len(),
            Msg::Depart { handle } => handle.encoded_len(),
            Msg::DepartAck { handle } => handle.encoded_len(),
            Msg::ForRegister { register, inner } => {
                register.encoded_len() + inner.encoded_len()
            }
            Msg::ShardFetch { shard, nonce } => shard.encoded_len() + nonce.encoded_len(),
            Msg::ShardSnapshot { nonce, shard, registers } => {
                nonce.encoded_len() + shard.encoded_len() + registers.encoded_len()
            }
            Msg::InEpoch { epoch, inner } => epoch.encoded_len() + inner.encoded_len(),
            Msg::StateInstall { nonce, transfers } => {
                nonce.encoded_len() + transfers.encoded_len()
            }
            Msg::StateInstallAck { nonce } => nonce.encoded_len(),
            Msg::ShardInstall { nonce, shard, registers } => {
                nonce.encoded_len() + shard.encoded_len() + registers.encoded_len()
            }
            Msg::ShardInstallAck { nonce, shard } => nonce.encoded_len() + shard.encoded_len(),
            Msg::ReadFastRuns { handle, acked, floor, new_values } => {
                handle.encoded_len()
                    + acked.encoded_len()
                    + floor.encoded_len()
                    + new_values.encoded_len()
            }
            Msg::ReadFastRunsAck { handle, delta } => {
                handle.encoded_len()
                    + delta.from.encoded_len()
                    + delta.version.encoded_len()
                    + delta.latest.encoded_len()
                    + delta.pruned.encoded_len()
                    + 8
                    + delta
                        .entries
                        .iter()
                        .map(|rec| {
                            rec.value.encoded_len() + client_runs::encoded_len(&rec.updated)
                        })
                        .sum::<usize>()
            }
        }
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(Msg::InvokeRead),
            1 => Ok(Msg::InvokeWrite(Value::decode(buf)?)),
            2 => Ok(Msg::Query { handle: OpHandle::decode(buf)? }),
            3 => Ok(Msg::Update {
                handle: OpHandle::decode(buf)?,
                value: TaggedValue::decode(buf)?,
                floor: TaggedValue::decode(buf)?,
            }),
            4 => Ok(Msg::ReadFast {
                handle: OpHandle::decode(buf)?,
                val_queue: Vec::<TaggedValue>::decode(buf)?,
            }),
            5 => Ok(Msg::QueryAck {
                handle: OpHandle::decode(buf)?,
                latest: TaggedValue::decode(buf)?,
            }),
            6 => Ok(Msg::UpdateAck { handle: OpHandle::decode(buf)? }),
            7 => Ok(Msg::ReadFastAck {
                handle: OpHandle::decode(buf)?,
                snapshot: Snapshot::decode(buf)?,
            }),
            8 => Ok(Msg::ReadFastDelta {
                handle: OpHandle::decode(buf)?,
                acked: u64::decode(buf)?,
                floor: TaggedValue::decode(buf)?,
                new_values: Vec::<TaggedValue>::decode(buf)?,
            }),
            9 => Ok(Msg::ReadFastDeltaAck {
                handle: OpHandle::decode(buf)?,
                delta: DeltaSnapshot::decode(buf)?,
            }),
            10 => Ok(Msg::StateFetch { nonce: u64::decode(buf)? }),
            11 => Ok(Msg::StateSnapshot {
                nonce: u64::decode(buf)?,
                state: Box::new(StateTransfer::decode(buf)?),
            }),
            12 => Ok(Msg::Depart { handle: OpHandle::decode(buf)? }),
            13 => Ok(Msg::DepartAck { handle: OpHandle::decode(buf)? }),
            14 => Ok(Msg::ForRegister {
                register: RegisterId::decode(buf)?,
                inner: Box::new(Msg::decode(buf)?),
            }),
            15 => Ok(Msg::ShardFetch { shard: u32::decode(buf)?, nonce: u64::decode(buf)? }),
            16 => Ok(Msg::ShardSnapshot {
                nonce: u64::decode(buf)?,
                shard: u32::decode(buf)?,
                registers: Vec::<RegisterTransfer>::decode(buf)?,
            }),
            17 => Ok(Msg::InEpoch {
                epoch: ConfigEpoch::decode(buf)?,
                inner: Box::new(Msg::decode(buf)?),
            }),
            18 => Ok(Msg::StateInstall {
                nonce: u64::decode(buf)?,
                transfers: Vec::<StateTransfer>::decode(buf)?,
            }),
            19 => Ok(Msg::StateInstallAck { nonce: u64::decode(buf)? }),
            20 => Ok(Msg::ShardInstall {
                nonce: u64::decode(buf)?,
                shard: u32::decode(buf)?,
                registers: Vec::<RegisterTransfer>::decode(buf)?,
            }),
            21 => Ok(Msg::ShardInstallAck { nonce: u64::decode(buf)?, shard: u32::decode(buf)? }),
            22 => Ok(Msg::ReadFastRuns {
                handle: OpHandle::decode(buf)?,
                acked: u64::decode(buf)?,
                floor: TaggedValue::decode(buf)?,
                new_values: Vec::<TaggedValue>::decode(buf)?,
            }),
            23 => {
                let handle = OpHandle::decode(buf)?;
                let from = u64::decode(buf)?;
                let version = u64::decode(buf)?;
                let latest = TaggedValue::decode(buf)?;
                let pruned = TaggedValue::decode(buf)?;
                let declared = u64::decode(buf)?;
                if declared > MAX_COLLECTION_LEN {
                    return Err(DecodeError::LengthOverflow { declared });
                }
                let mut entries = Vec::with_capacity(declared as usize);
                for _ in 0..declared {
                    entries.push(ValueRecord {
                        value: TaggedValue::decode(buf)?,
                        updated: client_runs::decode(buf)?,
                    });
                }
                Ok(Msg::ReadFastRunsAck {
                    handle,
                    delta: DeltaSnapshot { from, version, latest, pruned, entries },
                })
            }
            value => Err(DecodeError::InvalidDiscriminant { context: "Msg", value }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::{Tag, WriterId};

    fn handle() -> OpHandle {
        OpHandle { op: OpId { client: ClientId::reader(1), seq: 3 }, phase: 2 }
    }

    fn tv(ts: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts, WriterId::new(w)), Value::new(v))
    }

    #[test]
    fn snapshot_queries() {
        let snap = Snapshot {
            entries: vec![
                ValueRecord { value: tv(1, 0, 10), updated: vec![ClientId::writer(0)] },
                ValueRecord {
                    value: tv(2, 1, 20),
                    updated: vec![ClientId::writer(1), ClientId::reader(0)],
                },
            ],
        };
        assert_eq!(snap.max_value(), Some(tv(2, 1, 20)));
        assert!(snap.contains(tv(1, 0, 10)));
        assert!(!snap.contains(tv(3, 0, 0)));
        assert_eq!(snap.updated_for(tv(1, 0, 10)).unwrap().len(), 1);
        assert!(snap.updated_for(tv(9, 9, 9)).is_none());
        assert_eq!(Snapshot::default().max_value(), None);
    }

    #[test]
    fn all_messages_round_trip_on_the_wire() {
        let msgs = vec![
            Msg::InvokeRead,
            Msg::InvokeWrite(Value::new(5)),
            Msg::Query { handle: handle() },
            Msg::Update { handle: handle(), value: tv(4, 1, 44), floor: tv(3, 0, 33) },
            Msg::ReadFast { handle: handle(), val_queue: vec![tv(1, 0, 1), tv(2, 1, 2)] },
            Msg::QueryAck { handle: handle(), latest: tv(9, 0, 99) },
            Msg::UpdateAck { handle: handle() },
            Msg::ReadFastAck {
                handle: handle(),
                snapshot: Snapshot {
                    entries: vec![ValueRecord {
                        value: tv(1, 1, 7),
                        updated: vec![ClientId::reader(0), ClientId::writer(1)],
                    }],
                },
            },
            Msg::ReadFastDelta {
                handle: handle(),
                acked: 17,
                floor: tv(2, 1, 2),
                new_values: vec![tv(3, 0, 3)],
            },
            Msg::ReadFastDeltaAck {
                handle: handle(),
                delta: DeltaSnapshot {
                    from: 17,
                    version: 21,
                    latest: tv(3, 0, 3),
                    pruned: tv(1, 0, 1),
                    entries: vec![ValueRecord {
                        value: tv(3, 0, 3),
                        updated: vec![ClientId::reader(1)],
                    }],
                },
            },
            Msg::StateFetch { nonce: 42 },
            Msg::StateSnapshot {
                nonce: 42,
                state: Box::new(StateTransfer {
                    version: 99,
                    latest: tv(5, 1, 55),
                    pruned: tv(2, 0, 22),
                    entries: vec![ValueRecord {
                        value: tv(5, 1, 55),
                        updated: vec![ClientId::reader(0), ClientId::writer(1)],
                    }],
                    seen: vec![ClientId::reader(0), ClientId::writer(0)],
                    floors: vec![FloorReport { client: ClientId::writer(0), floor: tv(2, 0, 22) }],
                }),
            },
            Msg::Depart { handle: handle() },
            Msg::DepartAck { handle: handle() },
            Msg::ForRegister {
                register: RegisterId::new(7),
                inner: Box::new(Msg::Update {
                    handle: handle(),
                    value: tv(4, 1, 44),
                    floor: tv(3, 0, 33),
                }),
            },
            Msg::ShardFetch { shard: 3, nonce: 77 },
            Msg::ShardSnapshot {
                nonce: 77,
                shard: 3,
                registers: vec![RegisterTransfer {
                    register: RegisterId::new(9),
                    state: StateTransfer {
                        version: 4,
                        latest: tv(2, 0, 20),
                        pruned: tv(1, 0, 10),
                        entries: vec![ValueRecord {
                            value: tv(2, 0, 20),
                            updated: vec![ClientId::reader(0)],
                        }],
                        seen: vec![ClientId::reader(0)],
                        floors: vec![],
                    },
                }],
            },
            Msg::InEpoch {
                epoch: mwr_types::ConfigEpoch::new(3),
                inner: Box::new(Msg::ForRegister {
                    register: RegisterId::new(7),
                    inner: Box::new(Msg::Query { handle: handle() }),
                }),
            },
            Msg::StateInstall {
                nonce: 8,
                transfers: vec![StateTransfer {
                    version: 4,
                    latest: tv(2, 0, 20),
                    pruned: tv(1, 0, 10),
                    entries: vec![ValueRecord {
                        value: tv(2, 0, 20),
                        updated: vec![ClientId::reader(0)],
                    }],
                    seen: vec![ClientId::reader(0)],
                    floors: vec![],
                }],
            },
            Msg::StateInstallAck { nonce: 8 },
            Msg::ShardInstall {
                nonce: 9,
                shard: 2,
                registers: vec![RegisterTransfer {
                    register: RegisterId::new(5),
                    state: StateTransfer {
                        version: 1,
                        latest: tv(1, 1, 11),
                        pruned: TaggedValue::initial(),
                        entries: vec![],
                        seen: vec![],
                        floors: vec![],
                    },
                }],
            },
            Msg::ShardInstallAck { nonce: 9, shard: 2 },
            Msg::ReadFastRuns {
                handle: handle(),
                acked: 17,
                floor: tv(2, 1, 2),
                new_values: vec![tv(3, 0, 3)],
            },
            Msg::ReadFastRunsAck {
                handle: handle(),
                delta: DeltaSnapshot {
                    from: 17,
                    version: 29,
                    latest: tv(3, 0, 3),
                    pruned: tv(1, 0, 1),
                    entries: vec![
                        ValueRecord {
                            value: tv(3, 0, 3),
                            updated: (0..5).map(ClientId::reader).collect(),
                        },
                        ValueRecord {
                            value: tv(2, 1, 2),
                            updated: vec![ClientId::reader(2), ClientId::writer(1)],
                        },
                    ],
                },
            },
        ];
        for msg in msgs {
            let mut bytes = msg.to_bytes();
            assert_eq!(msg.encoded_len(), bytes.len(), "encoded_len matches encode: {msg:?}");
            let mut cursor: &[u8] = &bytes;
            assert_eq!(Msg::decode(&mut cursor).expect("decode from slice"), msg);
            assert!(cursor.is_empty());
            let decoded = Msg::decode(&mut bytes).expect("decode");
            assert_eq!(decoded, msg);
            assert!(bytes.is_empty());
        }
    }

    #[test]
    fn corrupted_discriminant_is_rejected() {
        let mut bytes: &[u8] = &[99];
        assert!(matches!(
            Msg::decode(&mut bytes),
            Err(DecodeError::InvalidDiscriminant { context: "Msg", value: 99 })
        ));
    }

    #[test]
    fn legacy_frames_decode_unchanged_next_to_the_register_header() {
        // Wire version 2 only *adds* discriminants 14–16; a v1 frame (0–13)
        // must decode to the identical message, and the register header must
        // cost exactly its discriminant byte plus the 4-byte id.
        let inner = Msg::Query { handle: handle() };
        let legacy = inner.to_bytes();
        let mut cursor: &[u8] = &legacy;
        assert_eq!(Msg::decode(&mut cursor).unwrap(), inner);

        let wrapped =
            Msg::ForRegister { register: RegisterId::new(3), inner: Box::new(inner.clone()) };
        assert_eq!(wrapped.encoded_len(), inner.encoded_len() + 5);
        // The wrapped frame's tail is the legacy frame, byte for byte.
        let bytes = wrapped.to_bytes();
        assert_eq!(&bytes[5..], &legacy[..]);
    }

    #[test]
    fn epoch_header_costs_five_bytes_and_is_elided_at_epoch_zero() {
        use mwr_types::ConfigEpoch;
        // Wire version 3 only *adds* discriminants 17–21; a v1/v2 frame
        // decodes to the identical message at epoch 0, and the epoch header
        // costs exactly its discriminant byte plus the 4-byte epoch.
        let inner = Msg::Query { handle: handle() };
        assert_eq!(inner.epoch(), ConfigEpoch::ZERO);
        assert_eq!(inner.clone().in_epoch(ConfigEpoch::ZERO), inner, "epoch 0 adds no wrapper");

        let e3 = ConfigEpoch::new(3);
        let wrapped = inner.clone().in_epoch(e3);
        assert_eq!(wrapped.encoded_len(), inner.encoded_len() + 5);
        assert_eq!(wrapped.epoch(), e3);
        // The wrapped frame's tail is the legacy frame, byte for byte.
        let bytes = wrapped.to_bytes();
        assert_eq!(&bytes[5..], &inner.to_bytes()[..]);
        assert_eq!(wrapped.into_epoch_parts(), (e3, inner));
    }

    #[test]
    fn v3_frames_decode_unchanged_next_to_the_runs_wire() {
        // Wire version 4 only *adds* discriminants 22–23: the v3 delta
        // request/ack must encode and decode byte-identically, and the
        // runs request must be the delta request with only the
        // discriminant byte changed (version negotiation is carried by
        // the request discriminant alone).
        let delta_req = Msg::ReadFastDelta {
            handle: handle(),
            acked: 17,
            floor: tv(2, 1, 2),
            new_values: vec![tv(3, 0, 3)],
        };
        let runs_req = Msg::ReadFastRuns {
            handle: handle(),
            acked: 17,
            floor: tv(2, 1, 2),
            new_values: vec![tv(3, 0, 3)],
        };
        let (v3, v4) = (delta_req.to_bytes(), runs_req.to_bytes());
        assert_eq!(v3[0], 8);
        assert_eq!(v4[0], 22);
        assert_eq!(&v3[1..], &v4[1..], "payloads are identical past the discriminant");
        let mut cursor: &[u8] = &v3;
        assert_eq!(Msg::decode(&mut cursor).unwrap(), delta_req);
    }

    #[test]
    fn runs_ack_compresses_dense_registration_gossip() {
        // The catch-up stream's shape: every reader re-registered on one
        // value. 64 consecutive readers collapse to a single 9-byte run
        // where the v3 ack spends 5 bytes per client.
        let dense = DeltaSnapshot {
            from: 3,
            version: 90,
            latest: tv(5, 0, 50),
            pruned: TaggedValue::initial(),
            entries: vec![ValueRecord {
                value: tv(5, 0, 50),
                updated: (0..64).map(ClientId::reader).collect(),
            }],
        };
        let v3 = Msg::ReadFastDeltaAck { handle: handle(), delta: dense.clone() };
        let v4 = Msg::ReadFastRunsAck { handle: handle(), delta: dense };
        assert!(
            v4.encoded_len() < v3.encoded_len() / 3,
            "runs ack {} must be well under a third of the delta ack {}",
            v4.encoded_len(),
            v3.encoded_len()
        );
        // And it stays a faithful encoding: decode gives the same delta.
        let mut bytes = v4.to_bytes();
        assert_eq!(Msg::decode(&mut bytes).unwrap(), v4);
    }

    #[test]
    fn display_formats_handles() {
        assert_eq!(handle().to_string(), "r2#3(2)");
    }

    #[test]
    fn client_set_stays_sorted_and_deduplicated() {
        let mut set = ClientSet::new();
        assert!(set.insert(ClientId::writer(1)));
        assert!(set.insert(ClientId::reader(0)));
        assert!(!set.insert(ClientId::writer(1)), "duplicate insert is a no-op");
        assert!(set.contains(ClientId::reader(0)));
        assert!(!set.contains(ClientId::reader(9)));
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        let sorted: Vec<ClientId> = set.as_slice().to_vec();
        let mut expect = sorted.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect, "as_slice is ascending");
        let from_iter: ClientSet =
            [ClientId::writer(1), ClientId::reader(0), ClientId::writer(1)].into_iter().collect();
        assert_eq!(from_iter, set);
    }

    fn delta(version: u64, latest: TaggedValue, pruned: TaggedValue, entries: Vec<ValueRecord>) -> DeltaSnapshot {
        DeltaSnapshot { from: 0, version, latest, pruned, entries }
    }

    #[test]
    fn unacknowledged_is_the_set_difference_on_both_cache_kinds() {
        let (a, b, c) = (tv(1, 0, 1), tv(2, 0, 2), tv(3, 1, 3));
        let mut cache = SnapshotCache::new();
        cache.merge(&delta(
            1,
            b,
            TaggedValue::initial(),
            vec![ValueRecord { value: b, updated: vec![ClientId::writer(0)] }],
        ));
        let mut state = FastReadState::new();
        state.merge(
            ServerId::new(0),
            &delta(1, b, TaggedValue::initial(), vec![ValueRecord { value: b, updated: vec![] }]),
        );

        let queue: std::collections::BTreeSet<TaggedValue> =
            [TaggedValue::initial(), a, b, c].into_iter().collect();
        let expect: Vec<TaggedValue> =
            queue.iter().filter(|v| !cache.knows(**v)).copied().collect();
        assert_eq!(cache.unacknowledged(&queue), expect);
        assert_eq!(state.cache(ServerId::new(0)).unacknowledged(&queue), expect);
        assert_eq!(expect, vec![a, c], "initial and b are known, a and c are not");
    }

    /// A reset returns the slot to the fresh-store state: stale values and
    /// witness bits vanish, and re-merging the server's rebuilt store makes
    /// the mirror exact again.
    #[test]
    fn fast_read_state_reset_clears_the_slot_and_its_witnesses() {
        let (v1, v2) = (tv(1, 0, 1), tv(2, 0, 2));
        let mut state = FastReadState::new();
        let s0 = ServerId::new(0);
        state.merge(
            s0,
            &delta(
                3,
                v1,
                TaggedValue::initial(),
                vec![ValueRecord { value: v1, updated: vec![ClientId::reader(0)] }],
            ),
        );
        assert!(state.cache(s0).knows(v1));

        state.reset(s0);
        assert!(!state.cache(s0).knows(v1), "stale value forgotten");
        assert!(state.cache(s0).knows(TaggedValue::initial()), "fresh-store seed");
        assert_eq!(state.cache(s0).acked_version(), 0, "acked version rewound");
        assert_eq!(
            state.index().values_in(1).collect::<Vec<_>>(),
            vec![TaggedValue::initial()],
            "stale witness bits evicted"
        );

        // Merging the rebuilt server's full-store delta resynchronizes.
        state.merge(
            s0,
            &delta(7, v2, TaggedValue::initial(), vec![ValueRecord {
                value: v2,
                updated: vec![ClientId::writer(0)],
            }]),
        );
        assert!(state.cache(s0).knows(v2));
        assert_eq!(state.cache(s0).acked_version(), 7);

        // Resetting a never-contacted server is a no-op.
        state.reset(ServerId::new(5));
    }

    #[test]
    fn fast_read_state_merge_tracks_values_and_evicts_on_gc() {
        let (v1, v2) = (tv(1, 0, 1), tv(2, 0, 2));
        let mut state = FastReadState::new();
        let s0 = ServerId::new(0);
        state.merge(
            s0,
            &delta(
                2,
                v1,
                TaggedValue::initial(),
                vec![ValueRecord { value: v1, updated: vec![ClientId::reader(0)] }],
            ),
        );
        assert!(state.cache(s0).knows(v1));
        assert_eq!(state.cache(s0).acked_version(), 2);
        assert_eq!(state.index().values_in(1).collect::<Vec<_>>(), vec![TaggedValue::initial(), v1]);

        // GC floor v2 with latest v2: both the initial value and v1 drop
        // from cache and index alike.
        state.merge(
            s0,
            &delta(3, v2, v2, vec![ValueRecord { value: v2, updated: vec![ClientId::writer(0)] }]),
        );
        assert!(!state.cache(s0).knows(v1));
        assert!(state.cache(s0).knows(v2));
        assert_eq!(state.index().values_in(1).collect::<Vec<_>>(), vec![v2]);
        assert_eq!(
            state.index().selector(1, 1, 0, 1).max_candidate(),
            Some(v2),
            "selection sees exactly the surviving state"
        );
    }
}
