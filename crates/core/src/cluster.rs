//! One-call assembly of a simulated register cluster, plus the
//! [`SimCluster`] trait: schedule-driven execution shared by every
//! protocol family (core, tunable-quorum, Byzantine).

use mwr_sim::{SimError, SimTime, Simulation};
use mwr_types::{ClusterConfig, ProcessId, Value};

use crate::client::{FastWire, RegisterClient};
use crate::events::ClientEvent;
use crate::msg::Msg;
use crate::protocol::Protocol;
use crate::server::RegisterServer;

/// One operation in a harness-provided schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduledOp {
    /// Reader `reader` invokes `read()`.
    Read {
        /// Zero-based reader index.
        reader: u32,
    },
    /// Writer `writer` invokes `write(value)`.
    Write {
        /// Zero-based writer index.
        writer: u32,
        /// The value to write.
        value: Value,
    },
}

impl ScheduledOp {
    /// Schedules this operation's invocation into a simulation at `at`.
    ///
    /// This is the single translation point from harness schedules to
    /// client-automaton messages; every cluster family uses it, as can
    /// hand-assembled simulations that mix automata from several crates.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcess`] if the reader/writer index is
    /// out of range for the installed processes.
    pub fn schedule_into(
        self,
        sim: &mut Simulation<Msg, ClientEvent>,
        at: SimTime,
    ) -> Result<(), SimError> {
        match self {
            ScheduledOp::Read { reader } => {
                sim.schedule_external(at, ProcessId::reader(reader), Msg::InvokeRead)
            }
            ScheduledOp::Write { writer, value } => {
                sim.schedule_external(at, ProcessId::writer(writer), Msg::InvokeWrite(value))
            }
        }
    }
}

/// A cluster blueprint that can be installed into the deterministic
/// simulator: the one interface every protocol family implements.
///
/// Implementors provide [`install`](SimCluster::install) (which processes
/// make up the cluster) and [`client_config`](SimCluster::client_config)
/// (the population the harness schedules against); simulation assembly and
/// schedule-driven execution are shared default methods, so a new protocol
/// family written against this trait gets `build_sim`/`schedule`/
/// `run_schedule` — and with them every schedule-driven harness in the
/// workspace — for free.
///
/// # Examples
///
/// ```
/// use mwr_core::{Cluster, Protocol, ScheduledOp, SimCluster};
/// use mwr_sim::SimTime;
/// use mwr_types::{ClusterConfig, Value};
///
/// let config = ClusterConfig::new(5, 1, 2, 2)?;
/// let cluster = Cluster::new(config, Protocol::W2R1);
/// let events = cluster.run_schedule(
///     7,
///     &[
///         (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(1) }),
///         (SimTime::from_ticks(100), ScheduledOp::Read { reader: 0 }),
///     ],
/// )?;
/// assert_eq!(events.len(), 5); // 2 invocations, 2 completions, 1 second-round marker
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait SimCluster {
    /// Adds all servers, writers and readers to a simulation.
    fn install(&self, sim: &mut Simulation<Msg, ClientEvent>);

    /// The client/server population as a crash-model [`ClusterConfig`]:
    /// what the scheduling and workload harnesses address operations
    /// against. Families with richer configurations (e.g. Byzantine
    /// clusters) report their crash-view here.
    fn client_config(&self) -> ClusterConfig;

    /// Builds a fresh simulation with this cluster installed.
    fn build_sim(&self, seed: u64) -> Simulation<Msg, ClientEvent> {
        let mut sim = Simulation::new(seed);
        self.install(&mut sim);
        sim
    }

    /// Schedules one operation invocation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcess`] if the reader/writer index is
    /// out of range for the configuration.
    fn schedule(
        &self,
        sim: &mut Simulation<Msg, ClientEvent>,
        at: SimTime,
        op: ScheduledOp,
    ) -> Result<(), SimError> {
        op.schedule_into(sim, at)
    }

    /// Runs a full schedule to quiescence and returns the client events.
    ///
    /// # Errors
    ///
    /// Propagates scheduling and simulation errors.
    fn run_schedule(
        &self,
        seed: u64,
        ops: &[(SimTime, ScheduledOp)],
    ) -> Result<Vec<(SimTime, ClientEvent)>, SimError> {
        let mut sim = self.build_sim(seed);
        for (at, op) in ops {
            op.schedule_into(&mut sim, *at)?;
        }
        sim.run_until_quiescent()?;
        Ok(sim.drain_notifications())
    }
}

/// A cluster blueprint: configuration plus protocol choice.
///
/// This is the low-level, paper-faithful assembly of the core protocols.
/// Applications normally go through the `mwr-register` facade
/// (`mwr::register::Deployment`), which builds these blueprints behind a
/// single API for every protocol family and backend.
///
/// # Examples
///
/// ```
/// use mwr_core::{Cluster, Protocol, ScheduledOp, SimCluster};
/// use mwr_sim::SimTime;
/// use mwr_types::{ClusterConfig, Value};
///
/// let config = ClusterConfig::new(5, 1, 2, 2)?;
/// let cluster = Cluster::new(config, Protocol::W2R1);
/// let events = cluster.run_schedule(
///     7,
///     &[
///         (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(1) }),
///         (SimTime::from_ticks(100), ScheduledOp::Read { reader: 0 }),
///     ],
/// )?;
/// assert_eq!(events.len(), 5); // 2 invocations, 2 completions, 1 second-round marker
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Cluster {
    config: ClusterConfig,
    protocol: Protocol,
    wire: FastWire,
    gc: bool,
}

impl Cluster {
    /// Creates a blueprint with the bounded-state defaults: delta-snapshot
    /// fast reads and acknowledged-floor GC on the servers. Use
    /// [`with_fast_wire`](Self::with_fast_wire) /
    /// [`with_gc`](Self::with_gc) for the paper-faithful full-info model.
    pub fn new(config: ClusterConfig, protocol: Protocol) -> Self {
        Cluster { config, protocol, wire: FastWire::default(), gc: true }
    }

    /// Selects the fast-read wire format ([`FastWire::FullInfo`] restores
    /// the paper's O(history) payloads).
    pub fn with_fast_wire(mut self, wire: FastWire) -> Self {
        self.wire = wire;
        self
    }

    /// Enables or disables acknowledged-floor GC on the servers.
    pub fn with_gc(mut self, gc: bool) -> Self {
        self.gc = gc;
        self
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The protocol in use.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The fast-read wire format clients will use.
    pub fn fast_wire(&self) -> FastWire {
        self.wire
    }
}

impl SimCluster for Cluster {
    fn install(&self, sim: &mut Simulation<Msg, ClientEvent>) {
        let population = self.config.readers() + self.config.writers();
        for s in self.config.server_ids() {
            let server = if self.gc {
                RegisterServer::with_gc(population)
            } else {
                RegisterServer::new()
            };
            sim.add_process(ProcessId::Server(s), server);
        }
        for w in self.config.writer_ids() {
            sim.add_process(
                w.into(),
                RegisterClient::writer(w, self.config, self.protocol.write_mode()),
            );
        }
        for r in self.config.reader_ids() {
            sim.add_process(
                r.into(),
                RegisterClient::reader_with_wire(
                    r,
                    self.config,
                    self.protocol.read_mode(),
                    self.wire,
                ),
            );
        }
    }

    fn client_config(&self) -> ClusterConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::OpResult;
    use mwr_types::TaggedValue;

    fn reads_of(events: &[(SimTime, ClientEvent)]) -> Vec<TaggedValue> {
        events
            .iter()
            .filter_map(|(_, e)| match e {
                ClientEvent::Completed { result: OpResult::Read(tv), .. } => Some(*tv),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn every_protocol_completes_a_simple_schedule() {
        let schedule = [
            (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(11) }),
            (SimTime::from_ticks(100), ScheduledOp::Read { reader: 0 }),
            (SimTime::from_ticks(200), ScheduledOp::Read { reader: 1 }),
        ];
        for protocol in Protocol::ALL {
            let writers = if protocol.is_single_writer() { 1 } else { 2 };
            let config = ClusterConfig::new(5, 1, 2, writers).unwrap();
            let cluster = Cluster::new(config, protocol);
            let events = cluster.run_schedule(1, &schedule).unwrap();
            let reads = reads_of(&events);
            assert_eq!(reads.len(), 2, "{protocol}: both reads complete");
            assert!(
                reads.iter().all(|tv| tv.value() == Value::new(11)),
                "{protocol}: sequential read after write returns the write"
            );
        }
    }

    #[test]
    fn out_of_range_client_is_reported() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let cluster = Cluster::new(config, Protocol::W2R2);
        let err = cluster
            .run_schedule(0, &[(SimTime::ZERO, ScheduledOp::Read { reader: 5 })])
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownProcess { .. }));
    }

    #[test]
    fn identical_seeds_reproduce_event_streams() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster = Cluster::new(config, Protocol::W2R1);
        let schedule = [
            (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(1) }),
            (SimTime::ZERO, ScheduledOp::Write { writer: 1, value: Value::new(2) }),
            (SimTime::from_ticks(3), ScheduledOp::Read { reader: 0 }),
            (SimTime::from_ticks(4), ScheduledOp::Read { reader: 1 }),
        ];
        let a = cluster.run_schedule(99, &schedule).unwrap();
        let b = cluster.run_schedule(99, &schedule).unwrap();
        assert_eq!(a, b);
    }
}
