//! Multi-writer atomic register protocols — the core library of the `mwr`
//! workspace, reproducing *Fine-grained Analysis on Fast Implementations of
//! Multi-writer Atomic Registers* (Huang, Huang & Wei, PODC 2020).
//!
//! # The design space
//!
//! A register emulation is classified by round-trips per operation (Fig 2):
//! `WxRy` = writes take `x` round-trips, reads take `y`. This crate
//! implements every point as a composition of [`WriteMode`] × [`ReadMode`]
//! over a single unified [`RegisterServer`] (Algorithm 2):
//!
//! | [`Protocol`] | Write | Read | Atomic? |
//! |---|---|---|---|
//! | [`Protocol::W2R2`] | slow | slow | iff `t < S/2` (LS97) |
//! | [`Protocol::W2R1`] | slow | fast | iff `R < S/t − 2` — **the paper's Algorithms 1–2** |
//! | [`Protocol::AbdSwmrW1R2`] | fast | slow | single writer only (ABD) |
//! | [`Protocol::DuttaSwmrW1R1`] | fast | fast | single writer and `R < S/t − 2` |
//! | [`Protocol::NaiveW1R2`] | fast | slow | **never** with `W ≥ 2, t ≥ 1` (Theorem 1) |
//! | [`Protocol::NaiveW1R1`] | fast | fast | **never** with `W ≥ 2, t ≥ 1` |
//!
//! The two "naive" protocols exist *because* the paper proves them
//! impossible: they are the violation witnesses that the atomicity checker
//! in `mwr-check` catches, and `mwr-chains` mechanizes the proof that no
//! cleverer implementation can do better.
//!
//! # Correctness properties
//!
//! The W2R1 implementation satisfies the paper's MWA0–MWA4 (Appendix A):
//!
//! - **MWA0** — non-concurrent writes get increasing tags (two-round write).
//! - **MWA1** — reads return tags with non-negative timestamps.
//! - **MWA2** — a read following `wr_{k,i}` returns `≥ (k, wi)`.
//! - **MWA3** — a read never returns a value before it was written.
//! - **MWA4** — of two non-concurrent reads, the later returns `≥` the
//!   earlier.
//!
//! These are exercised by the integration and property tests at the
//! workspace root, with verdicts delivered by the `mwr-check` checkers.
//!
//! # Examples
//!
//! ```
//! use mwr_core::{Cluster, Protocol, ScheduledOp, SimCluster};
//! use mwr_sim::SimTime;
//! use mwr_types::{ClusterConfig, Value};
//!
//! // The paper's fast-read algorithm on S = 5 servers, t = 1, R = 2, W = 2.
//! let config = ClusterConfig::new(5, 1, 2, 2)?;
//! assert!(config.fast_read_feasible());
//! let cluster = Cluster::new(config, Protocol::W2R1);
//! let events = cluster.run_schedule(
//!     42,
//!     &[
//!         (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(7) }),
//!         (SimTime::from_ticks(100), ScheduledOp::Read { reader: 0 }),
//!     ],
//! )?;
//! assert_eq!(events.len(), 5); // incl. the slow write's second-round marker
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod admissible;
mod audit;
mod bank;
mod client;
mod cluster;
mod events;
mod msg;
mod protocol;
mod reconfig;
mod routing;
mod server;

pub use audit::AuditRecord;

pub use admissible::{
    adaptive_degree_cap, mask_of, Admissibility, Entries, SnapshotSource, SnapshotView,
    WitnessIndex, WitnessSelector, MAX_SLOTS,
};
pub use client::{FastWire, ReadMode, RegisterClient, WriteMode};
pub use cluster::{Cluster, ScheduledOp, SimCluster};
pub use events::{ClientEvent, OpKind, OpResult};
pub use bank::ServerBank;
pub use msg::{
    ClientSet, DeltaSnapshot, FastReadState, FloorReport, Msg, OpHandle, OpId, ReaderCache,
    RegisterTransfer, Snapshot, SnapshotCache, StateTransfer, ValueRecord,
};
pub use protocol::{ParseProtocolError, Protocol};
pub use reconfig::JointQuorum;
pub use routing::{Router, MAX_MEMBERS};
pub use server::{RegisterServer, ServerState};
