//! Notifications emitted by client automata to the harness.
//!
//! The harness (workload drivers, the checker, experiment binaries)
//! reconstructs the *execution history* of the register from these events:
//! each operation contributes an invocation and a response event, stamped
//! with virtual time by the simulator.

use mwr_types::{ClientId, TaggedValue, Value};

use crate::msg::OpId;

/// What kind of operation a client ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `read()` — only readers invoke it.
    Read,
    /// `write(v)` — only writers invoke it.
    Write(Value),
}

/// The outcome of a completed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    /// A write completed; the protocol assigned it this tagged value.
    Written(TaggedValue),
    /// A read completed, returning this tagged value.
    Read(TaggedValue),
}

impl OpResult {
    /// The tagged value carried by the result.
    pub fn tagged_value(self) -> TaggedValue {
        match self {
            OpResult::Written(tv) | OpResult::Read(tv) => tv,
        }
    }
}

/// Events emitted by [`RegisterClient`](crate::RegisterClient) automata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientEvent {
    /// An operation started executing (it was dequeued and its first
    /// round-trip was sent). Histories are well-formed by construction:
    /// clients serialize their own operations.
    Invoked {
        /// The operation.
        op: OpId,
        /// What it does.
        kind: OpKind,
    },
    /// An operation launched a second round-trip. Slow writes and slow
    /// reads always emit this; adaptive reads emit it exactly when they
    /// fall back to the write-back path — experiments count it to measure
    /// the fast-read fraction.
    SecondRound {
        /// The operation.
        op: OpId,
    },
    /// An operation completed.
    Completed {
        /// The operation.
        op: OpId,
        /// What it did.
        kind: OpKind,
        /// Its outcome.
        result: OpResult,
    },
}

impl ClientEvent {
    /// The client this event belongs to.
    pub fn client(&self) -> ClientId {
        self.op().client
    }

    /// The operation this event belongs to.
    pub fn op(&self) -> OpId {
        match self {
            ClientEvent::Invoked { op, .. }
            | ClientEvent::SecondRound { op }
            | ClientEvent::Completed { op, .. } => *op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::{Tag, WriterId};

    #[test]
    fn accessors() {
        let op = OpId { client: ClientId::reader(0), seq: 1 };
        let tv = TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(3));
        let inv = ClientEvent::Invoked { op, kind: OpKind::Read };
        let done = ClientEvent::Completed { op, kind: OpKind::Read, result: OpResult::Read(tv) };
        assert_eq!(inv.client(), ClientId::reader(0));
        assert_eq!(done.op(), op);
        assert_eq!(OpResult::Read(tv).tagged_value(), tv);
        assert_eq!(OpResult::Written(tv).tagged_value(), tv);
    }
}
