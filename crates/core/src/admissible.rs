//! The `admissible(·)` predicate of Algorithm 1 and the fast-read return
//! value selection.
//!
//! A value `v` is *admissible with degree `a`* in a read (Algorithm 1,
//! line 32) when there is a subset `µ` of the received `READACK` messages
//! such that
//!
//! 1. every message in `µ` contains `v`,
//! 2. `|µ| ≥ S − a·t`, and
//! 3. `|⋂_{m∈µ} m.updated(v)| ≥ a` — at least `a` clients are registered on
//!    `v` in **every** message of `µ`.
//!
//! Intuition (from Dutta et al. [12], extended to multiple writers here):
//! degree `a = 1` means a full quorum saw `v` with a common witness (the
//! writer); each missed server can be traded for one more common witness
//! client, because a witness client in the intersection either completed an
//! operation ordering `v` before this read, or will itself testify to later
//! reads. The feasibility condition `R < S/t − 2` guarantees that degrees up
//! to `R + 1` still leave non-empty quorums (`S − (R+1)t > t ≥ 1`).
//!
//! # Two evaluators, one seam
//!
//! Reply data reaches the predicate through the [`SnapshotSource`] /
//! [`SnapshotView`] seam, which borrows either a full-info wire
//! [`Snapshot`] or a reader-side [`SnapshotCache`](crate::SnapshotCache)
//! mirror without cloning. Over that seam sit two implementations:
//!
//! - [`Admissibility`] — the naive reference: rebuilds its witness bitmasks
//!   per `(candidate, degree)` probe. Kept as the executable specification
//!   (property tests pin the fast path against it) and used by the
//!   Byzantine reader, whose vouch-filtered snapshots are synthesized fresh
//!   each read anyway.
//! - [`WitnessIndex`] + [`WitnessSelector`] — the production fast path: the
//!   per-value masks are built **once** (per read via
//!   [`WitnessIndex::from_views`], or maintained **incrementally across
//!   reads** by [`FastReadState`](crate::FastReadState) as delta snapshots
//!   merge) and shared across every candidate and every degree of the
//!   selection walk.
//!
//! # Complexity
//!
//! The naive check is exponential in the client population (choose the
//! witness set `C`). Both evaluators represent, for each candidate client,
//! the set of replies containing it as a bitmask, and search for `a`
//! clients whose mask intersection has popcount `≥ S − a·t`, pruning
//! subsets whose running intersection is already too small. With the
//! protocol's small degrees (`a ≤ R + 1`) and client populations this is
//! microseconds in practice — the `admissible` Criterion bench quantifies
//! both evaluators, and `admissible_smoke --assert-admissible-floor` gates
//! the fast path's scaling in CI.

use std::collections::BTreeMap;

use mwr_types::{ClientId, TaggedValue};

use crate::msg::{ClientSet, Snapshot, SnapshotCache, ValueRecord};

/// The widest reply set / server population the bitmask evaluators support.
pub const MAX_SLOTS: usize = 128;

/// The largest admissibility degree an *adaptive* read may trust for its
/// fast path: `a ≤ R + 1` (the algorithm's degree range) **and**
/// `S − a·t ≥ t + 1` (Lemma 9's requirement that a degree-`a` witness set
/// still spans more than `t` servers, so it survives crashes and
/// intersects every quorum).
///
/// In feasible configurations (`t(R + 2) < S`) the two bounds coincide at
/// `R + 1`, so the adaptive fast path accepts exactly what Algorithm 1
/// accepts; beyond the feasibility boundary the cap shrinks and more reads
/// take the write-back fallback. With `t = 0` every degree is safe.
///
/// # Examples
///
/// ```
/// use mwr_core::adaptive_degree_cap;
///
/// assert_eq!(adaptive_degree_cap(5, 1, 2), 3);  // feasible: R + 1
/// assert_eq!(adaptive_degree_cap(5, 1, 4), 3);  // infeasible: (S − t − 1)/t
/// assert_eq!(adaptive_degree_cap(3, 1, 2), 1);  // barely anything is safe
/// assert_eq!(adaptive_degree_cap(4, 0, 7), 8);  // no faults: R + 1
/// ```
pub fn adaptive_degree_cap(servers: usize, max_faults: usize, readers: usize) -> usize {
    if max_faults == 0 {
        return readers + 1;
    }
    let lemma9 = (servers.saturating_sub(max_faults + 1)) / max_faults;
    lemma9.min(readers + 1)
}

// --- the borrowed reply seam ------------------------------------------------

/// A borrowed view of one server's logical snapshot: either a full-info
/// wire [`Snapshot`] or a reader-side [`SnapshotCache`] mirror.
///
/// Admissibility evaluation consumes replies through this seam, so neither
/// evaluator ever needs the cache reconstructed into an owned `Snapshot`
/// (the clone that used to dominate W2R1's read cost at high `R`).
#[derive(Debug, Clone, Copy)]
pub enum SnapshotView<'a> {
    /// A full-info snapshot as received on the wire.
    Full(&'a Snapshot),
    /// A reader's cached mirror of one server's store (delta wire).
    Cached(&'a SnapshotCache),
}

impl<'a> SnapshotView<'a> {
    /// The clients registered on `value`, if the snapshot contains it.
    pub fn updated_for(&self, value: TaggedValue) -> Option<&'a [ClientId]> {
        match self {
            SnapshotView::Full(s) => s.updated_for(value),
            SnapshotView::Cached(c) => c.updated_for(value).map(ClientSet::as_slice),
        }
    }

    /// Iterates every `(value, registered clients)` entry in ascending tag
    /// order.
    pub fn entries(&self) -> Entries<'a> {
        match self {
            SnapshotView::Full(s) => Entries::Full(s.entries.iter()),
            SnapshotView::Cached(c) => Entries::Cached(c.iter()),
        }
    }
}

/// Iterator over the `(value, clients)` entries of a [`SnapshotView`].
#[derive(Debug, Clone)]
pub enum Entries<'a> {
    /// Entries of a full-info [`Snapshot`].
    Full(std::slice::Iter<'a, ValueRecord>),
    /// Entries of a [`SnapshotCache`].
    Cached(std::slice::Iter<'a, (TaggedValue, ClientSet)>),
}

impl<'a> Iterator for Entries<'a> {
    type Item = (TaggedValue, &'a [ClientId]);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            Entries::Full(it) => it.next().map(|r| (r.value, r.updated.as_slice())),
            Entries::Cached(it) => it.next().map(|(v, u)| (*v, u.as_slice())),
        }
    }
}

/// Anything that can lend a [`SnapshotView`] of one server's reply.
pub trait SnapshotSource {
    /// Borrows this reply as a view.
    fn view(&self) -> SnapshotView<'_>;
}

impl SnapshotSource for Snapshot {
    fn view(&self) -> SnapshotView<'_> {
        SnapshotView::Full(self)
    }
}

impl SnapshotSource for SnapshotCache {
    fn view(&self) -> SnapshotView<'_> {
        SnapshotView::Cached(self)
    }
}

impl SnapshotSource for SnapshotView<'_> {
    fn view(&self) -> SnapshotView<'_> {
        *self
    }
}

// --- the naive reference evaluator ------------------------------------------

/// Evaluates admissibility over the replies of one fast read — the naive
/// reference implementation (see the module docs for how it relates to
/// [`WitnessIndex`]).
///
/// # Examples
///
/// ```
/// use mwr_core::{Admissibility, Snapshot, ValueRecord};
/// use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};
///
/// let v = TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(7));
/// let snap = |clients: &[ClientId]| Snapshot {
///     entries: vec![ValueRecord { value: v, updated: clients.to_vec() }],
/// };
/// // S = 3, t = 1, quorum = 2 replies, both containing v with the writer
/// // registered: admissible with degree 1.
/// let replies = vec![
///     snap(&[ClientId::writer(0)]),
///     snap(&[ClientId::writer(0)]),
/// ];
/// let adm = Admissibility::new(&replies, 3, 1, 2);
/// assert_eq!(adm.degree(v), Some(1));
/// ```
#[derive(Debug)]
pub struct Admissibility<'a, S: SnapshotSource = Snapshot> {
    replies: &'a [S],
    servers: usize,
    max_faults: usize,
    max_degree: usize,
}

impl<'a, S: SnapshotSource> Admissibility<'a, S> {
    /// Creates an evaluator over `replies` (one snapshot per distinct
    /// server) for a cluster with `servers` servers and `max_faults` crash
    /// tolerance; degrees range over `1 ..= max_degree` (the algorithm uses
    /// `max_degree = R + 1`).
    ///
    /// # Panics
    ///
    /// Panics if more than 128 replies are supplied (bitmask width).
    pub fn new(replies: &'a [S], servers: usize, max_faults: usize, max_degree: usize) -> Self {
        assert!(
            replies.len() <= MAX_SLOTS,
            "at most 128 server replies supported"
        );
        Admissibility { replies, servers, max_faults, max_degree }
    }

    /// Whether `v` is admissible with exactly degree `a`.
    pub fn admissible_with_degree(&self, v: TaggedValue, a: usize) -> bool {
        if a == 0 {
            return false;
        }
        // |µ| ≥ S − a·t, and µ must be non-empty for the intersection to be
        // meaningful.
        let needed = self.servers.saturating_sub(a * self.max_faults).max(1);

        // Bitmask per candidate client: which replies contain v with this
        // client registered on it.
        let mut masks: BTreeMap<ClientId, u128> = BTreeMap::new();
        let mut containing = 0usize;
        for (i, snap) in self.replies.iter().enumerate() {
            if let Some(updated) = snap.view().updated_for(v) {
                containing += 1;
                for &c in updated {
                    *masks.entry(c).or_insert(0) |= 1u128 << i;
                }
            }
        }
        if containing < needed {
            return false;
        }
        // Drop clients that alone cannot reach the threshold.
        let candidates: Vec<u128> = masks
            .values()
            .copied()
            .filter(|m| m.count_ones() as usize >= needed)
            .collect();
        if candidates.len() < a {
            return false;
        }
        search(&candidates, 0, u128::MAX, a, needed)
    }

    /// The smallest degree `a ∈ [1, max_degree]` with which `v` is
    /// admissible, or `None`.
    pub fn degree(&self, v: TaggedValue) -> Option<usize> {
        (1..=self.max_degree).find(|&a| self.admissible_with_degree(v, a))
    }

    /// All distinct values present in any reply, in descending tag order —
    /// the candidate order of Algorithm 1's selection loop.
    pub fn candidates_descending(&self) -> Vec<TaggedValue> {
        let mut vals: Vec<TaggedValue> = self
            .replies
            .iter()
            .flat_map(|s| s.view().entries().map(|(v, _)| v))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        vals.reverse();
        vals
    }

    /// Algorithm 1's read return value: the largest admissible value.
    ///
    /// Walks candidates in descending order (`maxV`, then "remove `maxV`
    /// from all messages" and repeat) and returns the first admissible one.
    ///
    /// # Panics
    ///
    /// Panics if no value is admissible. This cannot happen in a run of the
    /// protocol: the reader's `valQueue` always contains the initial value,
    /// every replying server registers the reader on it before replying, so
    /// the initial value is admissible with degree 1.
    pub fn select_return_value(&self) -> TaggedValue {
        for v in self.candidates_descending() {
            if self.degree(v).is_some() {
                return v;
            }
        }
        panic!(
            "no admissible value among {} replies — protocol invariant broken",
            self.replies.len()
        );
    }
}

/// Depth-first search for `remaining` more clients whose combined mask
/// intersection keeps at least `needed` replies.
///
/// Shared by both evaluators; the result is independent of candidate order,
/// which is why the selector may sort its candidates for pruning without
/// diverging from the reference.
fn search(candidates: &[u128], start: usize, acc: u128, remaining: usize, needed: usize) -> bool {
    if remaining == 0 {
        return acc.count_ones() as usize >= needed;
    }
    for i in start..candidates.len() {
        // Not enough candidates left to pick `remaining`.
        if candidates.len() - i < remaining {
            return false;
        }
        let next = acc & candidates[i];
        if (next.count_ones() as usize) < needed {
            continue;
        }
        if search(candidates, i + 1, next, remaining - 1, needed) {
            return true;
        }
    }
    false
}

// --- the incremental fast path ----------------------------------------------

/// Per-value witness bitmasks over up to 128 reply *slots* (one slot per
/// server or per reply position).
///
/// For every candidate value the index records (a) which slots currently
/// hold the value (`containing`) and (b), per registered client, the slots
/// where that client is registered on it. Every candidate walk, degree
/// probe and witness-subset search of the selection runs over these masks,
/// so they are computed exactly once:
///
/// - per read, for full-info replies, via [`WitnessIndex::from_views`];
/// - across reads, for the delta wire, maintained incrementally by
///   [`FastReadState`](crate::FastReadState) as deltas merge — the per-read
///   cost of selection no longer rebuilds anything at all.
///
/// Values whose `containing` mask goes empty (GC eviction) are dropped, so
/// the index stays bounded by live protocol state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WitnessIndex {
    /// value → witness masks, sorted by value ascending. Post-GC the live
    /// value population is small, so a flat sorted Vec keeps both the
    /// merge-path probes and the descending selection walk cache-local.
    entries: Vec<(TaggedValue, ValueWitness)>,
}

/// The masks recorded for one candidate value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct ValueWitness {
    /// Bit `s`: slot `s` currently holds this value.
    pub(crate) containing: u128,
    /// Client → slots where the client is registered on this value, sorted
    /// by client. Every set bit here is also set in `containing` (a
    /// registration implies the slot holds the value).
    pub(crate) witnesses: Vec<(ClientId, u128)>,
}

impl ValueWitness {
    /// Marks `client` registered on this value at `slot` (which therefore
    /// holds the value).
    pub(crate) fn record(&mut self, slot: usize, client: ClientId) {
        let bit = 1u128 << slot;
        self.containing |= bit;
        match self.witnesses.binary_search_by_key(&client, |e| e.0) {
            Ok(i) => self.witnesses[i].1 |= bit,
            Err(i) => self.witnesses.insert(i, (client, bit)),
        }
    }

    /// Registers a whole record's client list on this value at `slot` in
    /// one pass — a merge-join over the two client-sorted lists, instead
    /// of one binary search per registration. This is the delta-merge hot
    /// path: a fast read's reply re-registers O(W×R) catch-up clients, and
    /// both the wire's `updated` lists and `witnesses` are sorted by
    /// client. Out-of-order elements (a non-conforming peer) fall back to
    /// the searched insert, preserving set semantics.
    pub(crate) fn record_sorted(&mut self, slot: usize, clients: &[ClientId]) {
        let bit = 1u128 << slot;
        self.containing |= bit;
        let mut i = 0;
        let mut prev: Option<ClientId> = None;
        for &c in clients {
            if prev.is_some_and(|p| c <= p) {
                self.record(slot, c);
                continue;
            }
            prev = Some(c);
            while i < self.witnesses.len() && self.witnesses[i].0 < c {
                i += 1;
            }
            if i < self.witnesses.len() && self.witnesses[i].0 == c {
                self.witnesses[i].1 |= bit;
            } else {
                self.witnesses.insert(i, (c, bit));
            }
            i += 1;
        }
    }
}

impl WitnessIndex {
    /// An empty index.
    pub fn new() -> Self {
        WitnessIndex::default()
    }

    /// Builds the index once over borrowed reply data (slot `i` = the
    /// `i`-th view) and returns it with the mask covering all slots — the
    /// per-read path for full-info replies.
    ///
    /// # Panics
    ///
    /// Panics if more than 128 views are supplied.
    pub fn from_views<'a, I>(views: I) -> (Self, u128)
    where
        I: IntoIterator<Item = SnapshotView<'a>>,
    {
        let mut index = WitnessIndex::new();
        let mut slots = 0usize;
        for (slot, view) in views.into_iter().enumerate() {
            assert!(slot < MAX_SLOTS, "at most 128 server replies supported");
            slots = slot + 1;
            for (value, clients) in view.entries() {
                let w = index.witness_entry(value);
                w.containing |= 1u128 << slot;
                for &c in clients {
                    w.record(slot, c);
                }
            }
        }
        (index, mask_of(slots))
    }

    /// Records that slot `slot` holds `value` (with no new registrations).
    ///
    /// # Panics
    ///
    /// Panics if `slot ≥ 128`.
    pub fn record_value(&mut self, slot: usize, value: TaggedValue) {
        assert!(slot < MAX_SLOTS, "slot {slot} out of bitmask range");
        self.witness_entry(value).containing |= 1u128 << slot;
    }

    /// Records that slot `slot` registers `client` on `value` (implies the
    /// slot holds the value).
    ///
    /// # Panics
    ///
    /// Panics if `slot ≥ 128`.
    pub fn record_witness(&mut self, slot: usize, value: TaggedValue, client: ClientId) {
        assert!(slot < MAX_SLOTS, "slot {slot} out of bitmask range");
        self.witness_entry(value).record(slot, client);
    }

    /// The mutable witness entry for `value` — one probe that a merge
    /// amortizes over a whole record's registrations.
    pub(crate) fn witness_entry(&mut self, value: TaggedValue) -> &mut ValueWitness {
        match self.entries.binary_search_by_key(&value, |e| e.0) {
            Ok(i) => &mut self.entries[i].1,
            Err(i) => {
                self.entries.insert(i, (value, ValueWitness::default()));
                &mut self.entries[i].1
            }
        }
    }

    /// Forgets everything slot `slot` recorded about `value` (the slot's
    /// store pruned it); drops the value entirely once no slot holds it.
    pub fn evict(&mut self, slot: usize, value: TaggedValue) {
        assert!(slot < MAX_SLOTS, "slot {slot} out of bitmask range");
        let keep = !(1u128 << slot);
        if let Ok(i) = self.entries.binary_search_by_key(&value, |e| e.0) {
            let w = &mut self.entries[i].1;
            w.containing &= keep;
            if w.containing == 0 {
                self.entries.remove(i);
                return;
            }
            w.witnesses.retain_mut(|e| {
                e.1 &= keep;
                e.1 != 0
            });
        }
    }

    /// The values some slot in `mask` currently holds, ascending — what a
    /// fast read folds into its `valQueue`.
    pub fn values_in(&self, mask: u128) -> impl Iterator<Item = TaggedValue> + '_ {
        self.entries
            .iter()
            .filter(move |(_, w)| w.containing & mask != 0)
            .map(|(v, _)| *v)
    }

    /// Number of indexed values (across all slots).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no values at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A selection evaluator restricted to the slots in `mask` (the servers
    /// that actually replied to this read), for a cluster with `servers`
    /// servers, `max_faults` crash tolerance and degrees `1 ..= max_degree`.
    pub fn selector(
        &self,
        mask: u128,
        servers: usize,
        max_faults: usize,
        max_degree: usize,
    ) -> WitnessSelector<'_> {
        WitnessSelector { index: self, mask, servers, max_faults, max_degree, scratch: Vec::new() }
    }
}

/// The mask covering slots `0 .. slots`.
///
/// # Panics
///
/// Panics if `slots > 128`.
pub fn mask_of(slots: usize) -> u128 {
    assert!(slots <= MAX_SLOTS, "at most 128 slots supported");
    if slots == MAX_SLOTS {
        u128::MAX
    } else {
        (1u128 << slots) - 1
    }
}

/// One read's return-value selection over a [`WitnessIndex`]: Algorithm 1's
/// candidate walk and `admissible(·)` probes, restricted to the reply slots
/// in the selector's mask.
///
/// Selection is a single descending walk over the index (the candidates are
/// already distinct and tag-ordered — no per-read collect/sort/dedup), and
/// each candidate's masked witness masks are materialized once and shared
/// across all of its degree probes. The scratch buffer is the only
/// allocation, reused across every candidate of the walk.
#[derive(Debug)]
pub struct WitnessSelector<'a> {
    index: &'a WitnessIndex,
    mask: u128,
    servers: usize,
    max_faults: usize,
    max_degree: usize,
    /// Masked witness masks of the candidate under evaluation, sorted by
    /// descending popcount; refilled per candidate, reused across degrees.
    scratch: Vec<u128>,
}

impl WitnessSelector<'_> {
    /// The smallest degree `a ∈ [1, max_degree]` with which `v` is
    /// admissible within the replied slots, or `None`.
    pub fn degree(&mut self, v: TaggedValue) -> Option<usize> {
        let index = self.index;
        index
            .entries
            .binary_search_by_key(&v, |e| e.0)
            .ok()
            .and_then(|i| self.degree_of(&index.entries[i].1))
    }

    /// The largest candidate value any replied slot holds — Algorithm 1's
    /// `maxV`, the adaptive read's fast-path candidate.
    pub fn max_candidate(&self) -> Option<TaggedValue> {
        self.index
            .entries
            .iter()
            .rev()
            .find(|(_, w)| w.containing & self.mask != 0)
            .map(|(v, _)| *v)
    }

    /// Algorithm 1's read return value: the largest admissible value, found
    /// in one descending walk over the index.
    ///
    /// # Panics
    ///
    /// Panics if no value is admissible (impossible in a protocol run; see
    /// [`Admissibility::select_return_value`]).
    pub fn select_return_value(&mut self) -> TaggedValue {
        let index = self.index;
        for (v, w) in index.entries.iter().rev() {
            if self.degree_of(w).is_some() {
                return *v;
            }
        }
        panic!(
            "no admissible value among {} replies — protocol invariant broken",
            self.mask.count_ones()
        );
    }

    /// Degree probe sharing one masked-and-sorted witness list across all
    /// degrees of this candidate.
    fn degree_of(&mut self, w: &ValueWitness) -> Option<usize> {
        let containing = (w.containing & self.mask).count_ones() as usize;
        if containing == 0 {
            return None;
        }
        self.scratch.clear();
        self.scratch
            .extend(w.witnesses.iter().map(|e| e.1 & self.mask).filter(|m| *m != 0));
        self.scratch
            .sort_unstable_by_key(|m| std::cmp::Reverse(m.count_ones()));
        for a in 1..=self.max_degree {
            let needed = self.servers.saturating_sub(a * self.max_faults).max(1);
            if containing < needed {
                continue;
            }
            // Only clients whose own mask reaches the threshold can join a
            // witness set; sorted by popcount, they form a prefix that only
            // grows as the degree rises (needed falls).
            let eligible = self
                .scratch
                .partition_point(|m| m.count_ones() as usize >= needed);
            if eligible < a {
                continue;
            }
            if search(&self.scratch[..eligible], 0, u128::MAX, a, needed) {
                return Some(a);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::ValueRecord;
    use mwr_types::{Tag, Value, WriterId};

    fn tv(ts: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts, WriterId::new(w)), Value::new(v))
    }

    /// Builds one snapshot from (value, updated-clients) pairs.
    fn snap(entries: &[(TaggedValue, &[ClientId])]) -> Snapshot {
        Snapshot {
            entries: entries
                .iter()
                .map(|(v, cs)| ValueRecord { value: *v, updated: cs.to_vec() })
                .collect(),
        }
    }

    /// The indexed evaluation of the same replies, for the paired asserts.
    fn indexed(replies: &[Snapshot], servers: usize, t: usize, max_degree: usize) -> (WitnessIndex, u128, usize, usize, usize) {
        let (index, mask) = WitnessIndex::from_views(replies.iter().map(SnapshotSource::view));
        (index, mask, servers, t, max_degree)
    }

    fn indexed_degree(replies: &[Snapshot], servers: usize, t: usize, max_degree: usize, v: TaggedValue) -> Option<usize> {
        let (index, mask, s, t, d) = indexed(replies, servers, t, max_degree);
        index.selector(mask, s, t, d).degree(v)
    }

    const W0: ClientId = ClientId::writer(0);
    const R0: ClientId = ClientId::reader(0);
    const R1: ClientId = ClientId::reader(1);

    #[test]
    fn full_quorum_with_common_writer_is_degree_one() {
        let v = tv(1, 0, 10);
        // S = 5, t = 1: quorum 4. All four replies contain v with w0.
        let replies = vec![
            snap(&[(v, &[W0])]),
            snap(&[(v, &[W0])]),
            snap(&[(v, &[W0])]),
            snap(&[(v, &[W0])]),
        ];
        let adm = Admissibility::new(&replies, 5, 1, 3);
        assert_eq!(adm.degree(v), Some(1));
        assert_eq!(indexed_degree(&replies, 5, 1, 3, v), Some(1));
    }

    #[test]
    fn partial_coverage_needs_higher_degree() {
        let v = tv(1, 0, 10);
        let other = tv(0, 0, 0);
        // S = 5, t = 1. Only 3 replies contain v (≥ S − 2t = 3), each with
        // two common witnesses {w0, r0}: degree 2, not degree 1.
        let replies = vec![
            snap(&[(v, &[W0, R0])]),
            snap(&[(v, &[W0, R0])]),
            snap(&[(v, &[W0, R0])]),
            snap(&[(other, &[R0])]),
        ];
        let adm = Admissibility::new(&replies, 5, 1, 3);
        assert!(!adm.admissible_with_degree(v, 1));
        assert!(adm.admissible_with_degree(v, 2));
        assert_eq!(adm.degree(v), Some(2));
        assert_eq!(indexed_degree(&replies, 5, 1, 3, v), Some(2));
    }

    #[test]
    fn one_common_witness_cannot_support_degree_two() {
        let v = tv(1, 0, 10);
        // 3 of 4 replies contain v but the only common client is w0:
        // degree 2 requires two common witnesses.
        let replies = vec![
            snap(&[(v, &[W0, R0])]),
            snap(&[(v, &[W0, R1])]),
            snap(&[(v, &[W0])]),
            snap(&[]),
        ];
        let adm = Admissibility::new(&replies, 5, 1, 3);
        assert!(!adm.admissible_with_degree(v, 2));
        // …but degree 1 also fails (only 3 < S − t = 4 replies contain v).
        assert_eq!(adm.degree(v), None);
        assert_eq!(indexed_degree(&replies, 5, 1, 3, v), None);
    }

    #[test]
    fn witness_subsets_are_searched_not_just_global_intersection() {
        let v = tv(1, 0, 10);
        // S = 4, t = 1, degree 2 needs |µ| ≥ 2 with 2 common witnesses.
        // Global intersection over all three replies is {w0} (too small),
        // but µ = {reply0, reply1} has {w0, r0} in common.
        let replies = vec![
            snap(&[(v, &[W0, R0])]),
            snap(&[(v, &[W0, R0])]),
            snap(&[(v, &[W0, R1])]),
        ];
        let adm = Admissibility::new(&replies, 4, 1, 3);
        assert!(adm.admissible_with_degree(v, 2));
        assert_eq!(indexed_degree(&replies, 4, 1, 3, v), adm.degree(v));
    }

    #[test]
    fn initial_value_with_reader_registration_is_always_admissible() {
        let init = TaggedValue::initial();
        // Every replying server registered the reader before replying.
        let replies: Vec<Snapshot> = (0..4).map(|_| snap(&[(init, &[R0])])).collect();
        let adm = Admissibility::new(&replies, 5, 1, 3);
        assert_eq!(adm.degree(init), Some(1));
        assert_eq!(adm.select_return_value(), init);
        let (index, mask) = WitnessIndex::from_views(replies.iter().map(SnapshotSource::view));
        assert_eq!(index.selector(mask, 5, 1, 3).select_return_value(), init);
    }

    #[test]
    fn selection_prefers_largest_admissible() {
        let old = tv(1, 0, 10);
        let new = tv(2, 1, 20);
        // `new` is on only 2 of 4 replies with a single witness: not
        // admissible (degree 2 needs 2 witnesses). `old` is everywhere.
        let replies = vec![
            snap(&[(old, &[W0, R0]), (new, &[ClientId::writer(1)])]),
            snap(&[(old, &[W0, R0]), (new, &[ClientId::writer(1)])]),
            snap(&[(old, &[W0, R0])]),
            snap(&[(old, &[W0, R0])]),
        ];
        let adm = Admissibility::new(&replies, 5, 1, 3);
        assert_eq!(adm.degree(new), None);
        assert_eq!(adm.select_return_value(), old);
        assert_eq!(adm.candidates_descending(), vec![new, old]);
        let (index, mask) = WitnessIndex::from_views(replies.iter().map(SnapshotSource::view));
        let mut sel = index.selector(mask, 5, 1, 3);
        assert_eq!(sel.degree(new), None);
        assert_eq!(sel.max_candidate(), Some(new));
        assert_eq!(sel.select_return_value(), old);
    }

    #[test]
    fn degree_zero_is_never_admissible() {
        let v = tv(1, 0, 1);
        let replies = vec![snap(&[(v, &[W0])])];
        let adm = Admissibility::new(&replies, 2, 0, 2);
        assert!(!adm.admissible_with_degree(v, 0));
    }

    #[test]
    fn zero_faults_requires_all_servers_for_degree_one() {
        let v = tv(1, 0, 1);
        // t = 0: needed = S for every degree; 2 of 3 replies contain v.
        let replies = vec![snap(&[(v, &[W0])]), snap(&[(v, &[W0])]), snap(&[])];
        let adm = Admissibility::new(&replies, 3, 0, 2);
        assert_eq!(adm.degree(v), None);
        assert_eq!(indexed_degree(&replies, 3, 0, 2, v), None);
        let full: Vec<Snapshot> = (0..3).map(|_| snap(&[(v, &[W0])])).collect();
        let adm = Admissibility::new(&full, 3, 0, 2);
        assert_eq!(adm.degree(v), Some(1));
        assert_eq!(indexed_degree(&full, 3, 0, 2, v), Some(1));
    }

    #[test]
    #[should_panic(expected = "no admissible value")]
    fn empty_replies_panic_on_selection() {
        let replies: Vec<Snapshot> = vec![Snapshot::default()];
        Admissibility::new(&replies, 3, 1, 2).select_return_value();
    }

    #[test]
    #[should_panic(expected = "no admissible value")]
    fn selector_panics_like_the_reference_on_empty_replies() {
        let replies: Vec<Snapshot> = vec![Snapshot::default()];
        let (index, mask) = WitnessIndex::from_views(replies.iter().map(SnapshotSource::view));
        index.selector(mask, 3, 1, 2).select_return_value();
    }

    #[test]
    fn naive_evaluator_reads_cached_views_too() {
        // The seam: the reference evaluator runs directly over caches.
        let v = tv(1, 0, 7);
        let mut cache = SnapshotCache::new();
        cache.merge(&crate::msg::DeltaSnapshot {
            from: 0,
            version: 1,
            latest: v,
            pruned: TaggedValue::initial(),
            entries: vec![ValueRecord { value: v, updated: vec![W0] }],
        });
        let caches = vec![cache.clone(), cache.clone()];
        let adm = Admissibility::new(&caches, 3, 1, 2);
        assert_eq!(adm.degree(v), Some(1));
        assert_eq!(adm.select_return_value(), v);
    }

    #[test]
    fn index_masks_out_slots_that_did_not_reply() {
        let v = tv(1, 0, 10);
        // 4 slots hold v, but only slots {0, 1} replied: S = 5, t = 1 needs
        // 4 containing replies for degree 1 — masked down to 2, nothing is
        // admissible; with all slots it is.
        let replies: Vec<Snapshot> = (0..4).map(|_| snap(&[(v, &[W0])])).collect();
        let (index, mask) = WitnessIndex::from_views(replies.iter().map(SnapshotSource::view));
        assert_eq!(index.selector(mask, 5, 1, 3).degree(v), Some(1));
        assert_eq!(index.selector(0b11, 5, 1, 3).degree(v), None);
        assert_eq!(index.selector(0b11, 5, 1, 3).max_candidate(), Some(v));
        assert_eq!(index.selector(0, 5, 1, 3).max_candidate(), None);
    }

    #[test]
    fn eviction_drops_masks_and_empty_values() {
        let v = tv(1, 0, 10);
        let mut index = WitnessIndex::new();
        index.record_witness(0, v, W0);
        index.record_witness(1, v, W0);
        index.record_witness(1, v, R0);
        assert_eq!(index.len(), 1);
        index.evict(1, v);
        // Slot 0 still holds it, with w0 only.
        assert_eq!(index.selector(0b1, 1, 0, 1).degree(v), Some(1));
        assert_eq!(index.selector(0b10, 2, 1, 1).degree(v), None);
        index.evict(0, v);
        assert!(index.is_empty(), "no slot holds the value any more");
        assert_eq!(index.values_in(u128::MAX).count(), 0);
    }

    #[test]
    fn bitmask_boundary_slot_127_works_and_128_panics() {
        let v = tv(1, 0, 1);
        let mut index = WitnessIndex::new();
        index.record_witness(127, v, W0);
        assert_eq!(index.selector(mask_of(128), 128, 0, 1).max_candidate(), Some(v));
        // 128 one-reply snapshots is the widest supported read.
        let replies: Vec<Snapshot> = (0..128).map(|_| snap(&[(v, &[W0])])).collect();
        let (wide, mask) = WitnessIndex::from_views(replies.iter().map(SnapshotSource::view));
        assert_eq!(mask, u128::MAX);
        assert_eq!(wide.selector(mask, 128, 0, 1).degree(v), Some(1));
        assert!(std::panic::catch_unwind(|| {
            let mut index = WitnessIndex::new();
            index.record_value(128, v);
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| mask_of(129)).is_err());
        let too_many: Vec<Snapshot> = (0..129).map(|_| snap(&[])).collect();
        assert!(std::panic::catch_unwind(|| {
            WitnessIndex::from_views(too_many.iter().map(SnapshotSource::view))
        })
        .is_err());
    }

    #[test]
    fn values_in_respects_the_mask() {
        let a = tv(1, 0, 1);
        let b = tv(2, 0, 2);
        let mut index = WitnessIndex::new();
        index.record_value(0, a);
        index.record_value(1, b);
        assert_eq!(index.values_in(0b01).collect::<Vec<_>>(), vec![a]);
        assert_eq!(index.values_in(0b10).collect::<Vec<_>>(), vec![b]);
        assert_eq!(index.values_in(0b11).collect::<Vec<_>>(), vec![a, b]);
    }
}
