//! The `admissible(·)` predicate of Algorithm 1 and the fast-read return
//! value selection.
//!
//! A value `v` is *admissible with degree `a`* in a read (Algorithm 1,
//! line 32) when there is a subset `µ` of the received `READACK` messages
//! such that
//!
//! 1. every message in `µ` contains `v`,
//! 2. `|µ| ≥ S − a·t`, and
//! 3. `|⋂_{m∈µ} m.updated(v)| ≥ a` — at least `a` clients are registered on
//!    `v` in **every** message of `µ`.
//!
//! Intuition (from Dutta et al. [12], extended to multiple writers here):
//! degree `a = 1` means a full quorum saw `v` with a common witness (the
//! writer); each missed server can be traded for one more common witness
//! client, because a witness client in the intersection either completed an
//! operation ordering `v` before this read, or will itself testify to later
//! reads. The feasibility condition `R < S/t − 2` guarantees that degrees up
//! to `R + 1` still leave non-empty quorums (`S − (R+1)t > t ≥ 1`).
//!
//! # Complexity
//!
//! The naive check is exponential in the client population (choose the
//! witness set `C`). This implementation represents, for each candidate
//! client, the set of replies containing it as a bitmask, and searches for
//! `a` clients whose mask intersection has popcount `≥ S − a·t`, pruning
//! subsets whose running intersection is already too small. With the
//! protocol's small degrees (`a ≤ R + 1`) and client populations this is
//! microseconds in practice — the `admissible` Criterion bench quantifies it.

use std::collections::BTreeMap;

use mwr_types::{ClientId, TaggedValue};

use crate::msg::Snapshot;

/// The largest admissibility degree an *adaptive* read may trust for its
/// fast path: `a ≤ R + 1` (the algorithm's degree range) **and**
/// `S − a·t ≥ t + 1` (Lemma 9's requirement that a degree-`a` witness set
/// still spans more than `t` servers, so it survives crashes and
/// intersects every quorum).
///
/// In feasible configurations (`t(R + 2) < S`) the two bounds coincide at
/// `R + 1`, so the adaptive fast path accepts exactly what Algorithm 1
/// accepts; beyond the feasibility boundary the cap shrinks and more reads
/// take the write-back fallback. With `t = 0` every degree is safe.
///
/// # Examples
///
/// ```
/// use mwr_core::adaptive_degree_cap;
///
/// assert_eq!(adaptive_degree_cap(5, 1, 2), 3);  // feasible: R + 1
/// assert_eq!(adaptive_degree_cap(5, 1, 4), 3);  // infeasible: (S − t − 1)/t
/// assert_eq!(adaptive_degree_cap(3, 1, 2), 1);  // barely anything is safe
/// assert_eq!(adaptive_degree_cap(4, 0, 7), 8);  // no faults: R + 1
/// ```
pub fn adaptive_degree_cap(servers: usize, max_faults: usize, readers: usize) -> usize {
    if max_faults == 0 {
        return readers + 1;
    }
    let lemma9 = (servers.saturating_sub(max_faults + 1)) / max_faults;
    lemma9.min(readers + 1)
}

/// Evaluates admissibility over the replies of one fast read.
///
/// # Examples
///
/// ```
/// use mwr_core::{Admissibility, Snapshot, ValueRecord};
/// use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};
///
/// let v = TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(7));
/// let snap = |clients: &[ClientId]| Snapshot {
///     entries: vec![ValueRecord { value: v, updated: clients.to_vec() }],
/// };
/// // S = 3, t = 1, quorum = 2 replies, both containing v with the writer
/// // registered: admissible with degree 1.
/// let replies = vec![
///     snap(&[ClientId::writer(0)]),
///     snap(&[ClientId::writer(0)]),
/// ];
/// let adm = Admissibility::new(&replies, 3, 1, 2);
/// assert_eq!(adm.degree(v), Some(1));
/// ```
#[derive(Debug)]
pub struct Admissibility<'a> {
    replies: &'a [Snapshot],
    servers: usize,
    max_faults: usize,
    max_degree: usize,
}

impl<'a> Admissibility<'a> {
    /// Creates an evaluator over `replies` (one snapshot per distinct
    /// server) for a cluster with `servers` servers and `max_faults` crash
    /// tolerance; degrees range over `1 ..= max_degree` (the algorithm uses
    /// `max_degree = R + 1`).
    ///
    /// # Panics
    ///
    /// Panics if more than 128 replies are supplied (bitmask width).
    pub fn new(
        replies: &'a [Snapshot],
        servers: usize,
        max_faults: usize,
        max_degree: usize,
    ) -> Self {
        assert!(replies.len() <= 128, "at most 128 server replies supported");
        Admissibility { replies, servers, max_faults, max_degree }
    }

    /// Whether `v` is admissible with exactly degree `a`.
    pub fn admissible_with_degree(&self, v: TaggedValue, a: usize) -> bool {
        if a == 0 {
            return false;
        }
        // |µ| ≥ S − a·t, and µ must be non-empty for the intersection to be
        // meaningful.
        let needed = self.servers.saturating_sub(a * self.max_faults).max(1);

        // Bitmask per candidate client: which replies contain v with this
        // client registered on it.
        let mut masks: BTreeMap<ClientId, u128> = BTreeMap::new();
        let mut containing = 0usize;
        for (i, snap) in self.replies.iter().enumerate() {
            if let Some(updated) = snap.updated_for(v) {
                containing += 1;
                for &c in updated {
                    *masks.entry(c).or_insert(0) |= 1u128 << i;
                }
            }
        }
        if containing < needed {
            return false;
        }
        // Drop clients that alone cannot reach the threshold.
        let candidates: Vec<u128> = masks
            .values()
            .copied()
            .filter(|m| m.count_ones() as usize >= needed)
            .collect();
        if candidates.len() < a {
            return false;
        }
        Self::search(&candidates, 0, u128::MAX, a, needed)
    }

    /// Depth-first search for `remaining` more clients whose combined mask
    /// intersection keeps at least `needed` replies.
    fn search(candidates: &[u128], start: usize, acc: u128, remaining: usize, needed: usize) -> bool {
        if remaining == 0 {
            return acc.count_ones() as usize >= needed;
        }
        for i in start..candidates.len() {
            // Not enough candidates left to pick `remaining`.
            if candidates.len() - i < remaining {
                return false;
            }
            let next = acc & candidates[i];
            if (next.count_ones() as usize) < needed {
                continue;
            }
            if Self::search(candidates, i + 1, next, remaining - 1, needed) {
                return true;
            }
        }
        false
    }

    /// The smallest degree `a ∈ [1, max_degree]` with which `v` is
    /// admissible, or `None`.
    pub fn degree(&self, v: TaggedValue) -> Option<usize> {
        (1..=self.max_degree).find(|&a| self.admissible_with_degree(v, a))
    }

    /// All distinct values present in any reply, in descending tag order —
    /// the candidate order of Algorithm 1's selection loop.
    pub fn candidates_descending(&self) -> Vec<TaggedValue> {
        let mut vals: Vec<TaggedValue> = self
            .replies
            .iter()
            .flat_map(|s| s.entries.iter().map(|e| e.value))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        vals.reverse();
        vals
    }

    /// Algorithm 1's read return value: the largest admissible value.
    ///
    /// Walks candidates in descending order (`maxV`, then "remove `maxV`
    /// from all messages" and repeat) and returns the first admissible one.
    ///
    /// # Panics
    ///
    /// Panics if no value is admissible. This cannot happen in a run of the
    /// protocol: the reader's `valQueue` always contains the initial value,
    /// every replying server registers the reader on it before replying, so
    /// the initial value is admissible with degree 1.
    pub fn select_return_value(&self) -> TaggedValue {
        for v in self.candidates_descending() {
            if self.degree(v).is_some() {
                return v;
            }
        }
        panic!(
            "no admissible value among {} replies — protocol invariant broken",
            self.replies.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::ValueRecord;
    use mwr_types::{Tag, Value, WriterId};

    fn tv(ts: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts, WriterId::new(w)), Value::new(v))
    }

    /// Builds one snapshot from (value, updated-clients) pairs.
    fn snap(entries: &[(TaggedValue, &[ClientId])]) -> Snapshot {
        Snapshot {
            entries: entries
                .iter()
                .map(|(v, cs)| ValueRecord { value: *v, updated: cs.to_vec() })
                .collect(),
        }
    }

    const W0: ClientId = ClientId::writer(0);
    const R0: ClientId = ClientId::reader(0);
    const R1: ClientId = ClientId::reader(1);

    #[test]
    fn full_quorum_with_common_writer_is_degree_one() {
        let v = tv(1, 0, 10);
        // S = 5, t = 1: quorum 4. All four replies contain v with w0.
        let replies = vec![
            snap(&[(v, &[W0])]),
            snap(&[(v, &[W0])]),
            snap(&[(v, &[W0])]),
            snap(&[(v, &[W0])]),
        ];
        let adm = Admissibility::new(&replies, 5, 1, 3);
        assert_eq!(adm.degree(v), Some(1));
    }

    #[test]
    fn partial_coverage_needs_higher_degree() {
        let v = tv(1, 0, 10);
        let other = tv(0, 0, 0);
        // S = 5, t = 1. Only 3 replies contain v (≥ S − 2t = 3), each with
        // two common witnesses {w0, r0}: degree 2, not degree 1.
        let replies = vec![
            snap(&[(v, &[W0, R0])]),
            snap(&[(v, &[W0, R0])]),
            snap(&[(v, &[W0, R0])]),
            snap(&[(other, &[R0])]),
        ];
        let adm = Admissibility::new(&replies, 5, 1, 3);
        assert!(!adm.admissible_with_degree(v, 1));
        assert!(adm.admissible_with_degree(v, 2));
        assert_eq!(adm.degree(v), Some(2));
    }

    #[test]
    fn one_common_witness_cannot_support_degree_two() {
        let v = tv(1, 0, 10);
        // 3 of 4 replies contain v but the only common client is w0:
        // degree 2 requires two common witnesses.
        let replies = vec![
            snap(&[(v, &[W0, R0])]),
            snap(&[(v, &[W0, R1])]),
            snap(&[(v, &[W0])]),
            snap(&[]),
        ];
        let adm = Admissibility::new(&replies, 5, 1, 3);
        assert!(!adm.admissible_with_degree(v, 2));
        // …but degree 1 also fails (only 3 < S − t = 4 replies contain v).
        assert_eq!(adm.degree(v), None);
    }

    #[test]
    fn witness_subsets_are_searched_not_just_global_intersection() {
        let v = tv(1, 0, 10);
        // S = 4, t = 1, degree 2 needs |µ| ≥ 2 with 2 common witnesses.
        // Global intersection over all three replies is {w0} (too small),
        // but µ = {reply0, reply1} has {w0, r0} in common.
        let replies = vec![
            snap(&[(v, &[W0, R0])]),
            snap(&[(v, &[W0, R0])]),
            snap(&[(v, &[W0, R1])]),
        ];
        let adm = Admissibility::new(&replies, 4, 1, 3);
        assert!(adm.admissible_with_degree(v, 2));
    }

    #[test]
    fn initial_value_with_reader_registration_is_always_admissible() {
        let init = TaggedValue::initial();
        // Every replying server registered the reader before replying.
        let replies: Vec<Snapshot> = (0..4).map(|_| snap(&[(init, &[R0])])).collect();
        let adm = Admissibility::new(&replies, 5, 1, 3);
        assert_eq!(adm.degree(init), Some(1));
        assert_eq!(adm.select_return_value(), init);
    }

    #[test]
    fn selection_prefers_largest_admissible() {
        let old = tv(1, 0, 10);
        let new = tv(2, 1, 20);
        // `new` is on only 2 of 4 replies with a single witness: not
        // admissible (degree 2 needs 2 witnesses). `old` is everywhere.
        let replies = vec![
            snap(&[(old, &[W0, R0]), (new, &[ClientId::writer(1)])]),
            snap(&[(old, &[W0, R0]), (new, &[ClientId::writer(1)])]),
            snap(&[(old, &[W0, R0])]),
            snap(&[(old, &[W0, R0])]),
        ];
        let adm = Admissibility::new(&replies, 5, 1, 3);
        assert_eq!(adm.degree(new), None);
        assert_eq!(adm.select_return_value(), old);
        assert_eq!(adm.candidates_descending(), vec![new, old]);
    }

    #[test]
    fn degree_zero_is_never_admissible() {
        let v = tv(1, 0, 1);
        let replies = vec![snap(&[(v, &[W0])])];
        let adm = Admissibility::new(&replies, 2, 0, 2);
        assert!(!adm.admissible_with_degree(v, 0));
    }

    #[test]
    fn zero_faults_requires_all_servers_for_degree_one() {
        let v = tv(1, 0, 1);
        // t = 0: needed = S for every degree; 2 of 3 replies contain v.
        let replies = vec![snap(&[(v, &[W0])]), snap(&[(v, &[W0])]), snap(&[])];
        let adm = Admissibility::new(&replies, 3, 0, 2);
        assert_eq!(adm.degree(v), None);
        let full: Vec<Snapshot> = (0..3).map(|_| snap(&[(v, &[W0])])).collect();
        let adm = Admissibility::new(&full, 3, 0, 2);
        assert_eq!(adm.degree(v), Some(1));
    }

    #[test]
    #[should_panic(expected = "no admissible value")]
    fn empty_replies_panic_on_selection() {
        let replies: Vec<Snapshot> = vec![Snapshot::default()];
        Admissibility::new(&replies, 3, 1, 2).select_return_value();
    }
}
