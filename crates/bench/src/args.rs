//! Tiny shared `--flag` / `--key value` parsing for the experiment
//! binaries — one implementation instead of a hand-rolled scan per bin.
//!
//! The binaries take a handful of overrides (run counts, op counts,
//! assertion switches); anything unrecognized aborts with a usage line so
//! typos fail loudly instead of silently running the default experiment.

use std::fmt::Write as _;

/// Parsed command-line arguments: boolean flags and `--key value` options.
///
/// # Examples
///
/// ```
/// use mwr_bench::args::Args;
///
/// let args = Args::from_vec(vec!["--assert-bounded".into(), "--ops".into(), "300".into()]);
/// assert!(args.flag("assert-bounded"));
/// assert_eq!(args.get_u64("ops", 200), 300);
/// assert!(!args.flag("verbose"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parses the process's command line (skipping the binary name).
    pub fn parse() -> Self {
        Args { raw: std::env::args().skip(1).collect() }
    }

    /// Builds from an explicit vector (for tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// Whether boolean flag `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == &format!("--{name}"))
    }

    /// The value following `--name`, or of `--name=value`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        let key = format!("--{name}");
        let prefix = format!("--{name}=");
        for (i, a) in self.raw.iter().enumerate() {
            if let Some(v) = a.strip_prefix(&prefix) {
                return Some(v);
            }
            if a == &key {
                return self.raw.get(i + 1).map(String::as_str);
            }
        }
        None
    }

    /// The `--name` value parsed as `u64`, or `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics with a readable message when the value is present but not a
    /// number — a typo should stop the experiment, not skew it.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        match self.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{name} expects a number, got {v:?}")),
        }
    }

    /// Aborts with a usage message unless every argument is one of
    /// `flags` (as `--flag`) or `options` (as `--key value` /
    /// `--key=value`, with the value present).
    pub fn expect_known(&self, bin: &str, flags: &[&str], options: &[&str]) {
        if let Err(message) = self.check_known(bin, flags, options) {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }

    /// The testable core of [`expect_known`](Self::expect_known): `Err`
    /// holds the message that would be printed before exiting.
    fn check_known(&self, bin: &str, flags: &[&str], options: &[&str]) -> Result<(), String> {
        let usage = |problem: String| {
            let mut usage = format!("{problem}\nusage: {bin}");
            for f in flags {
                let _ = write!(usage, " [--{f}]");
            }
            for o in options {
                let _ = write!(usage, " [--{o} N]");
            }
            usage
        };
        let mut i = 0;
        while i < self.raw.len() {
            let a = &self.raw[i];
            let bare = a.strip_prefix("--").map(|b| b.split('=').next().unwrap_or(b));
            match bare {
                Some(name) if flags.contains(&name) => i += 1,
                Some(name) if options.contains(&name) && a.contains('=') => i += 1,
                Some(name) if options.contains(&name) => {
                    // A trailing option with no value must fail loudly, not
                    // silently fall back to the default.
                    if i + 1 >= self.raw.len() {
                        return Err(usage(format!("--{name} expects a value")));
                    }
                    i += 2;
                }
                _ => return Err(usage(format!("unrecognized argument {a:?}"))),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::from_vec(parts.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_are_detected() {
        let a = args(&["--assert-bounded", "--ops", "50"]);
        assert!(a.flag("assert-bounded"));
        assert!(!a.flag("ops-missing"));
        // An option's *value* is not a flag.
        assert!(!a.flag("50"));
    }

    #[test]
    fn options_support_both_spellings() {
        assert_eq!(args(&["--ops", "300"]).get("ops"), Some("300"));
        assert_eq!(args(&["--ops=300"]).get("ops"), Some("300"));
        assert_eq!(args(&[]).get("ops"), None);
    }

    #[test]
    fn numeric_options_fall_back_to_defaults() {
        assert_eq!(args(&[]).get_u64("runs", 40), 40);
        assert_eq!(args(&["--runs", "7"]).get_u64("runs", 40), 7);
        assert_eq!(args(&["--runs=7"]).get_u64("runs", 40), 7);
    }

    #[test]
    #[should_panic(expected = "--runs expects a number")]
    fn non_numeric_values_panic_with_the_key_name() {
        args(&["--runs", "many"]).get_u64("runs", 40);
    }

    #[test]
    fn empty_command_lines_are_fine() {
        let a = Args::from_vec(Vec::new());
        assert!(!a.flag("anything"));
        assert_eq!(a.get_u64("runs", 3), 3);
    }

    #[test]
    fn known_arguments_validate() {
        let a = args(&["--assert-bounded", "--runs", "5", "--seed=7"]);
        assert!(a.check_known("bin", &["assert-bounded"], &["runs", "seed"]).is_ok());
    }

    #[test]
    fn unknown_arguments_are_rejected_with_usage() {
        let err = args(&["--bogus"]).check_known("bin", &["ok"], &["runs"]).unwrap_err();
        assert!(err.contains("unrecognized argument"), "{err}");
        assert!(err.contains("usage: bin [--ok] [--runs N]"), "{err}");
    }

    #[test]
    fn trailing_option_without_value_is_rejected() {
        let err = args(&["--runs"]).check_known("bin", &[], &["runs"]).unwrap_err();
        assert!(err.contains("--runs expects a value"), "{err}");
    }
}
