//! Minimal parser for the `BENCH_live_throughput.json` artifact family and
//! the markdown delta table the CI perf-regression step renders from two
//! of them.
//!
//! The workspace vendors no `serde_json`, and the artifacts are written by
//! `live_throughput` in a fixed, line-oriented shape (one sweep point per
//! line). This module parses exactly that shape — it is a companion to the
//! writer, not a general JSON parser — and is unit-tested against the
//! writer's output formats: the plain sweep (`BENCH_live_throughput.json`),
//! the chaos scenarios (`BENCH_chaos.json`, `send_path` = scenario, with a
//! `faults` column naming the driven plan and — on keyspace chaos rows —
//! `keys`/`zipf` columns too), and the keyspace sweep
//! (`BENCH_keyspace.json`, whose rows carry extra `keys`/`zipf` columns).
//! The `keys`, `zipf`, and `faults` columns are part of a point's
//! identity: a reconfigure-window point never silently compares against a
//! fault-free one.

use std::fmt::Write as _;

/// One sweep point of a `live_throughput` report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// `"in-memory"` or `"tcp"`.
    pub transport: String,
    /// `"channel"`, `"pipeline"` or `"legacy"`.
    pub send_path: String,
    /// Protocol display name, e.g. `"W2R1 (this paper)"`.
    pub protocol: String,
    /// Writer count of the point.
    pub writers: u64,
    /// Reader count of the point.
    pub readers: u64,
    /// Measured throughput.
    pub ops_per_sec: f64,
    /// Read latency-under-load p50 (µs).
    pub rd_p50_us: u64,
    /// Register count of a keyspace sweep row (`BENCH_keyspace.json`);
    /// `None` on single-register rows.
    pub keys: Option<u64>,
    /// Zipf skew of a keyspace sweep row; `None` on single-register rows.
    pub zipf: Option<f64>,
    /// Fault scenario driven through the point (`BENCH_chaos.json`, e.g.
    /// `"reconfigure"`); `None` on fault-free sweep rows.
    pub faults: Option<String>,
}

impl SweepPoint {
    /// The identity a point is matched on across two reports. The zipf
    /// skew is keyed by bit pattern: two floats compare equal here exactly
    /// when the writer printed them identically.
    #[allow(clippy::type_complexity)]
    pub fn key(
        &self,
    ) -> (String, String, String, u64, u64, Option<u64>, Option<u64>, Option<String>) {
        (
            self.transport.clone(),
            self.send_path.clone(),
            self.protocol.clone(),
            self.writers,
            self.readers,
            self.keys,
            self.zipf.map(f64::to_bits),
            self.faults.clone(),
        )
    }

    /// Human-readable point label for tables.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{} {} {} {}x{}",
            self.transport, self.send_path, self.protocol, self.writers, self.readers
        );
        if let Some(keys) = self.keys {
            let _ = write!(label, " keys={keys}");
        }
        if let Some(zipf) = self.zipf {
            let _ = write!(label, " zipf={zipf}");
        }
        if let Some(faults) = &self.faults {
            let _ = write!(label, " faults={faults}");
        }
        label
    }
}

/// Extracts the string value of `"key": "value"` from a JSON line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the numeric value of `"key": 123` or `"key": 123.4` from a
/// JSON line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the sweep points out of a `BENCH_live_throughput.json` document.
///
/// # Errors
///
/// Returns a description of the first malformed sweep line, or of a
/// document with no sweep points at all.
pub fn parse_live_throughput(json: &str) -> Result<Vec<SweepPoint>, String> {
    let mut points = Vec::new();
    for line in json.lines() {
        // Sweep lines (and only they) carry a "transport" field.
        if !line.contains("\"transport\"") {
            continue;
        }
        let point = (|| {
            Some(SweepPoint {
                transport: str_field(line, "transport")?,
                send_path: str_field(line, "send_path")?,
                protocol: str_field(line, "protocol")?,
                writers: num_field(line, "writers")? as u64,
                readers: num_field(line, "readers")? as u64,
                ops_per_sec: num_field(line, "ops_per_sec")?,
                rd_p50_us: num_field(line, "rd_p50_us")? as u64,
                keys: num_field(line, "keys").map(|v| v as u64),
                zipf: num_field(line, "zipf"),
                faults: str_field(line, "faults"),
            })
        })()
        .ok_or_else(|| format!("malformed sweep line: {}", line.trim()))?;
        points.push(point);
    }
    if points.is_empty() {
        return Err("no sweep points found (not a live_throughput report?)".into());
    }
    Ok(points)
}

/// Renders the markdown delta table comparing `fresh` against `baseline`,
/// matching points by (transport, send path, protocol, W, R) plus the
/// keys/zipf/faults columns when present (a keyspace point never matches a
/// single-register point, and a fault-window point never matches a
/// fault-free one). Returns the table plus the geometric-mean
/// throughput ratio over matched points.
///
/// Points only one side measured are listed (`new point`) or counted (a
/// quick sweep legitimately re-measures a subset of the full baseline)
/// rather than silently shifting the comparison, and a point with a zero
/// or non-finite throughput on either side renders as `n/a` and stays out
/// of the geomean instead of exploding it.
pub fn delta_table(baseline: &[SweepPoint], fresh: &[SweepPoint]) -> (String, f64) {
    let mut out = String::new();
    out.push_str("| point | baseline ops/s | fresh ops/s | Δ ops/s | rd p50 µs |\n");
    out.push_str("|---|---:|---:|---:|---:|\n");
    let mut log_sum = 0.0f64;
    let mut matched = 0usize;
    for f in fresh {
        let Some(b) = baseline.iter().find(|b| b.key() == f.key()) else {
            let _ = writeln!(
                out,
                "| {} | — | {:.0} | new point | {} |",
                f.label(),
                f.ops_per_sec,
                f.rd_p50_us
            );
            continue;
        };
        let usable = |ops: f64| ops.is_finite() && ops > 0.0;
        if !usable(b.ops_per_sec) || !usable(f.ops_per_sec) {
            // A side that recorded no ops (crashed run, zero duration) has
            // no meaningful ratio.
            let _ = writeln!(
                out,
                "| {} | {:.0} | {:.0} | n/a | {} → {} |",
                f.label(),
                b.ops_per_sec,
                f.ops_per_sec,
                b.rd_p50_us,
                f.rd_p50_us
            );
            continue;
        }
        let ratio = f.ops_per_sec / b.ops_per_sec;
        log_sum += ratio.ln();
        matched += 1;
        let _ = writeln!(
            out,
            "| {} | {:.0} | {:.0} | {:+.1}% | {} → {} |",
            f.label(),
            b.ops_per_sec,
            f.ops_per_sec,
            (ratio - 1.0) * 100.0,
            b.rd_p50_us,
            f.rd_p50_us
        );
    }
    let unmeasured = baseline
        .iter()
        .filter(|b| !fresh.iter().any(|f| f.key() == b.key()))
        .count();
    let geomean = if matched > 0 { (log_sum / matched as f64).exp() } else { 1.0 };
    let _ = writeln!(
        out,
        "\n**geomean fresh/baseline over {matched} matched points: {geomean:.3}x** \
         (run-to-run noise on the 1-core CI box is ±10–20%; the hard gate is \
         `--assert-floor`, this table is the trend signal)"
    );
    if unmeasured > 0 {
        let _ = writeln!(
            out,
            "\n{unmeasured} baseline point(s) not re-measured in this run."
        );
    }
    (out, geomean)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "experiment": "live_throughput",
  "duration_ms": 500,
  "servers": 11,
  "geomean_pipeline_over_legacy": 1.26,
  "contended_tcp": [
    {"protocol": "W2R1 (this paper)", "pipeline_ops_per_sec": 2151.0, "legacy_ops_per_sec": 1739.7, "speedup": 1.24}
  ],
  "sweep": [
    {"transport": "in-memory", "send_path": "channel", "protocol": "W2R1 (this paper)", "writers": 1, "readers": 1, "ops": 10001, "ops_per_sec": 19992.9, "wr_p50_us": 104, "wr_p99_us": 230, "rd_p50_us": 80, "rd_p99_us": 191},
    {"transport": "tcp", "send_path": "pipeline", "protocol": "W2R1 (this paper)", "writers": 8, "readers": 8, "ops": 1105, "ops_per_sec": 2151.0, "wr_p50_us": 8025, "wr_p99_us": 22922, "rd_p50_us": 6071, "rd_p99_us": 14903}
  ]
}
"#;

    /// `BENCH_chaos.json` rows: `send_path` = scenario, a `faults` column
    /// naming the driven plan, extra chaos counters trailing the standard
    /// columns — and, on keyspace chaos rows, `keys`/`zipf` columns too.
    const CHAOS_SAMPLE: &str = r#"{
  "experiment": "live_throughput_chaos",
  "sweep": [
    {"transport": "tcp", "send_path": "rolling-restart", "protocol": "W2R1 (this paper)", "writers": 2, "readers": 2, "ops": 804, "ops_per_sec": 199.7, "wr_p50_us": 4000, "wr_p99_us": 410000, "rd_p50_us": 2500, "rd_p99_us": 380000, "faults": "rolling-restart", "crashes": 3, "rejoins": 3, "reconfigs": 0, "reconfig_failures": 0, "churn_joined": 0, "churn_departed": 0, "churn_reads": 0, "failed_ops": 0, "steps_skipped": 0, "live_servers": 3, "ops_audited": 804, "audit_ok": true},
    {"transport": "in-memory", "send_path": "churn-storm", "protocol": "W2R1 (this paper)", "writers": 2, "readers": 2, "ops": 4100, "ops_per_sec": 2050.0, "wr_p50_us": 700, "wr_p99_us": 4400, "rd_p50_us": 500, "rd_p99_us": 3100, "faults": "churn-storm", "crashes": 0, "rejoins": 0, "reconfigs": 0, "reconfig_failures": 0, "churn_joined": 500, "churn_departed": 500, "churn_reads": 1000, "failed_ops": 0, "steps_skipped": 0, "live_servers": 3},
    {"transport": "tcp", "send_path": "reconfigure", "protocol": "W2R1 (this paper)", "writers": 2, "readers": 2, "ops": 1400, "ops_per_sec": 350.0, "wr_p50_us": 5000, "wr_p99_us": 210000, "rd_p50_us": 3000, "rd_p99_us": 180000, "faults": "reconfigure", "crashes": 0, "rejoins": 0, "reconfigs": 1, "reconfig_failures": 0, "churn_joined": 0, "churn_departed": 0, "churn_reads": 0, "failed_ops": 0, "steps_skipped": 0, "live_servers": 5, "steady_ops_per_sec": 520.0, "ops_audited": 1400, "audit_ok": true},
    {"transport": "tcp", "send_path": "reconfigure", "protocol": "W2Ra (adaptive)", "writers": 2, "readers": 2, "keys": 4, "zipf": 1.10, "ops": 1100, "ops_per_sec": 275.0, "wr_p50_us": 6000, "wr_p99_us": 230000, "rd_p50_us": 3500, "rd_p99_us": 190000, "faults": "reconfigure", "crashes": 0, "rejoins": 0, "reconfigs": 1, "reconfig_failures": 0, "churn_joined": 0, "churn_departed": 0, "churn_reads": 0, "failed_ops": 0, "steps_skipped": 0, "live_servers": 5, "steady_ops_per_sec": 410.0, "registers_audited": 4, "ops_audited": 1100, "audit_ok": true}
  ]
}
"#;

    /// `BENCH_keyspace.json` rows: standard columns plus `keys`/`zipf`.
    const KEYSPACE_SAMPLE: &str = r#"{
  "experiment": "live_throughput_keyspace",
  "duration_ms": 3000,
  "servers": 11,
  "shards": 16,
  "group_size": 5,
  "zipf": 1.10,
  "sweep": [
    {"transport": "in-memory", "send_path": "channel", "protocol": "W2R1 (this paper)", "writers": 1, "readers": 1, "keys": 1, "zipf": 1.10, "ops": 42640, "ops_per_sec": 14210.0, "wr_p50_us": 171, "wr_p99_us": 417, "rd_p50_us": 99, "rd_p99_us": 263},
    {"transport": "in-memory", "send_path": "channel", "protocol": "W2Ra (adaptive)", "writers": 2, "readers": 2, "keys": 64, "zipf": 1.10, "ops": 91649, "ops_per_sec": 30538.0, "wr_p50_us": 126, "wr_p99_us": 399, "rd_p50_us": 102, "rd_p99_us": 306, "registers_audited": 64, "ops_audited": 9000, "audit_ok": true}
  ]
}
"#;

    #[test]
    fn parses_sweep_points_and_skips_headline_lines() {
        let points = parse_live_throughput(SAMPLE).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].transport, "in-memory");
        assert_eq!(points[0].protocol, "W2R1 (this paper)");
        assert_eq!(points[0].writers, 1);
        assert_eq!(points[0].ops_per_sec, 19992.9);
        assert_eq!(points[1].send_path, "pipeline");
        assert_eq!(points[1].rd_p50_us, 6071);
        // Single-register rows have no keyspace columns.
        assert_eq!(points[0].keys, None);
        assert_eq!(points[0].zipf, None);
    }

    #[test]
    fn parses_chaos_rows_with_scenario_send_paths() {
        let points = parse_live_throughput(CHAOS_SAMPLE).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].send_path, "rolling-restart");
        assert_eq!(points[0].ops_per_sec, 199.7);
        assert_eq!(points[0].faults.as_deref(), Some("rolling-restart"));
        assert_eq!(points[1].send_path, "churn-storm");
        assert_eq!(points[1].keys, None, "single-register chaos rows carry no keyspace columns");
    }

    #[test]
    fn parses_reconfigure_rows_and_keyspace_chaos_columns() {
        let points = parse_live_throughput(CHAOS_SAMPLE).unwrap();
        // The single-register reconfigure window.
        assert_eq!(points[2].faults.as_deref(), Some("reconfigure"));
        assert_eq!(points[2].keys, None);
        assert!(points[2].label().contains("faults=reconfigure"), "{}", points[2].label());
        // The keyspace reconfigure window: keys/zipf AND faults columns.
        assert_eq!(points[3].faults.as_deref(), Some("reconfigure"));
        assert_eq!(points[3].keys, Some(4));
        assert_eq!(points[3].zipf, Some(1.10));
        assert!(points[3].label().contains("keys=4"), "{}", points[3].label());
        // Same scenario, different shape: distinct identities.
        assert_ne!(points[2].key(), points[3].key());
    }

    #[test]
    fn fault_window_points_never_match_fault_free_points() {
        // A reconfigure-window keyspace point must not silently compare
        // against the fault-free keyspace point with the same W x R.
        let chaos = parse_live_throughput(CHAOS_SAMPLE).unwrap();
        let mut fault_free = chaos.clone();
        for p in &mut fault_free {
            p.faults = None;
        }
        let (table, _) = delta_table(&fault_free, &chaos);
        assert_eq!(table.matches("| new point |").count(), chaos.len(), "{table}");
        // And a chaos baseline matches itself exactly.
        let (self_table, geomean) = delta_table(&chaos, &chaos);
        assert!(!self_table.contains("new point"), "{self_table}");
        assert!((geomean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parses_keyspace_rows_with_keys_and_zipf_columns() {
        let points = parse_live_throughput(KEYSPACE_SAMPLE).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].keys, Some(1));
        assert_eq!(points[0].zipf, Some(1.10));
        assert_eq!(points[1].keys, Some(64));
        assert_eq!(points[1].ops_per_sec, 30538.0);
        // The keyspace columns are part of a point's identity and label.
        assert_ne!(points[0].key(), points[1].key());
        assert!(points[1].label().contains("keys=64"), "{}", points[1].label());
        assert!(points[1].label().contains("zipf=1.1"), "{}", points[1].label());
    }

    #[test]
    fn keyspace_points_never_match_single_register_points() {
        let single = parse_live_throughput(SAMPLE).unwrap();
        let keyed = parse_live_throughput(KEYSPACE_SAMPLE).unwrap();
        // Same transport/send_path/protocol/WxR as `single[0]`, but with
        // keyspace columns: must render as a new point, not a delta.
        let (table, _) = delta_table(&single, &keyed);
        assert_eq!(table.matches("| new point |").count(), 2, "{table}");
        // And a keyspace baseline matches itself exactly.
        let (self_table, geomean) = delta_table(&keyed, &keyed);
        assert!(!self_table.contains("new point"), "{self_table}");
        assert!((geomean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_documents_without_sweep_points() {
        assert!(parse_live_throughput("{}").is_err());
        assert!(parse_live_throughput("{\"transport\": 3}").is_err());
    }

    #[test]
    fn delta_table_matches_points_and_reports_geomean() {
        let baseline = parse_live_throughput(SAMPLE).unwrap();
        let mut fresh = baseline.clone();
        fresh[0].ops_per_sec *= 1.10;
        fresh[1].ops_per_sec *= 0.90;
        fresh.push(SweepPoint {
            transport: "tcp".into(),
            send_path: "pipeline".into(),
            protocol: "W2R2 (LS97)".into(),
            writers: 4,
            readers: 4,
            ops_per_sec: 100.0,
            rd_p50_us: 5,
            keys: None,
            zipf: None,
            faults: None,
        });
        let (table, geomean) = delta_table(&baseline, &fresh);
        assert!(table.contains("+10.0%"), "{table}");
        assert!(table.contains("-10.0%"), "{table}");
        assert!(table.contains("| new point |"), "{table}");
        assert!((geomean - (1.10f64 * 0.90).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn zero_throughput_points_render_na_and_stay_out_of_the_geomean() {
        let baseline = parse_live_throughput(SAMPLE).unwrap();
        let mut fresh = baseline.clone();
        fresh[0].ops_per_sec *= 1.10;
        // A crashed baseline point must not divide-by-zero its ratio into
        // the geomean.
        let mut dead_baseline = baseline.clone();
        dead_baseline[1].ops_per_sec = 0.0;
        let (table, geomean) = delta_table(&dead_baseline, &fresh);
        assert!(table.contains("| n/a |"), "{table}");
        assert!((geomean - 1.10).abs() < 1e-9, "geomean {geomean} should only see the live point");
        // Same for a crashed fresh point.
        let mut dead_fresh = fresh.clone();
        dead_fresh[1].ops_per_sec = f64::NAN;
        let (table, geomean) = delta_table(&baseline, &dead_fresh);
        assert!(table.contains("| n/a |"), "{table}");
        assert!((geomean - 1.10).abs() < 1e-9);
    }

    #[test]
    fn unmeasured_baseline_points_are_counted_not_silently_dropped() {
        let baseline = parse_live_throughput(SAMPLE).unwrap();
        let fresh = vec![baseline[0].clone()];
        let (table, _) = delta_table(&baseline, &fresh);
        assert!(table.contains("1 baseline point(s) not re-measured"), "{table}");
        let (full_table, _) = delta_table(&baseline, &baseline.clone());
        assert!(!full_table.contains("not re-measured"), "{full_table}");
    }

    #[test]
    fn quick_sweeps_compare_against_full_baselines() {
        // --quick measures a subset of points; every quick point must still
        // match its counterpart in the committed full-sweep baseline.
        let baseline = parse_live_throughput(SAMPLE).unwrap();
        let fresh = vec![baseline[1].clone()];
        let (table, geomean) = delta_table(&baseline, &fresh);
        assert!(table.contains("8x8"));
        assert!(!table.contains("| new |"), "{table}");
        assert!((geomean - 1.0).abs() < 1e-9);
    }
}
