//! Shared helpers for the experiment binaries and benches.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figures;
//! see `EXPERIMENTS.md` at the workspace root for the index. This library
//! hosts the pieces they share: argument parsing ([`args`]), schedule
//! generators and verdict helpers. Clusters are constructed through the
//! `mwr-register` facade throughout.

#![warn(missing_docs)]

pub mod args;
pub mod report;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mwr_check::{check_atomicity, History, Verdict};
use mwr_core::{Protocol, ScheduledOp, SimCluster};
use mwr_register::Deployment;
use mwr_sim::{SimError, SimTime};
use mwr_types::{ClusterConfig, Value};

/// Generates a randomized concurrent schedule: every writer issues
/// `ops_per_client` uniquely-valued writes and every reader issues the same
/// number of reads, at uniformly random times in `[0, horizon)`.
///
/// Unique values keep the reads-from relation observable for the checker.
pub fn random_schedule(
    config: &ClusterConfig,
    ops_per_client: usize,
    horizon: u64,
    seed: u64,
) -> Vec<(SimTime, ScheduledOp)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut value = 0u64;
    for w in config.writer_ids() {
        for _ in 0..ops_per_client {
            value += 1;
            ops.push((
                SimTime::from_ticks(rng.gen_range(0..horizon)),
                ScheduledOp::Write { writer: w.index(), value: Value::new(value) },
            ));
        }
    }
    for r in config.reader_ids() {
        for _ in 0..ops_per_client {
            ops.push((
                SimTime::from_ticks(rng.gen_range(0..horizon)),
                ScheduledOp::Read { reader: r.index() },
            ));
        }
    }
    ops
}

/// The deterministic adversarial schedule that exhibits Theorem 1 against
/// the naive fast write: `w2` writes first, `w1` writes after `w2`
/// completes, then both readers read. The naive writer-local timestamps
/// order `w1`'s later write *below* `w2`'s, so the reads return the
/// overwritten value.
pub fn inversion_schedule() -> Vec<(SimTime, ScheduledOp)> {
    vec![
        (SimTime::ZERO, ScheduledOp::Write { writer: 1, value: Value::new(2) }),
        (SimTime::from_ticks(1_000), ScheduledOp::Write { writer: 0, value: Value::new(1) }),
        (SimTime::from_ticks(2_000), ScheduledOp::Read { reader: 0 }),
        (SimTime::from_ticks(3_000), ScheduledOp::Read { reader: 1 }),
    ]
}

/// Builds quorum replies for the admissibility benches: `values` distinct
/// tagged values spread across `quorum` snapshots with `witnesses`
/// registered clients each. As in any real protocol state, the value's own
/// writer is registered everywhere the value is stored (so something is
/// always admissible); the remaining witnesses vary per snapshot, which is
/// what makes the intersection search non-trivial.
///
/// Shared by the criterion `admissible` bench and the `admissible_smoke`
/// CI floor so the two measure identical shapes.
pub fn synthetic_replies(
    quorum: usize,
    values: usize,
    witnesses: usize,
) -> Vec<mwr_core::Snapshot> {
    use mwr_core::{Snapshot, ValueRecord};
    use mwr_types::{ClientId, Tag, TaggedValue, WriterId};
    (0..quorum)
        .map(|s| Snapshot {
            entries: (0..values)
                .map(|v| {
                    let mut updated: Vec<ClientId> = vec![ClientId::writer((v % 2) as u32)];
                    updated.extend((0..witnesses).map(|w| {
                        if (s + w) % 2 == 0 {
                            ClientId::reader(w as u32)
                        } else {
                            ClientId::reader((w + witnesses) as u32)
                        }
                    }));
                    updated.sort_unstable();
                    updated.dedup();
                    ValueRecord {
                        value: TaggedValue::new(
                            Tag::new(v as u64 + 1, WriterId::new((v % 2) as u32)),
                            Value::new(v as u64),
                        ),
                        updated,
                    }
                })
                .collect(),
        })
        .collect()
}

/// The verdict of running one schedule through a cluster (any protocol
/// family) and the checker.
///
/// # Errors
///
/// Propagates simulation errors; history assembly errors are reported as a
/// panic since generated schedules always run to quiescence.
pub fn run_and_check<C: SimCluster>(
    cluster: &C,
    seed: u64,
    schedule: &[(SimTime, ScheduledOp)],
) -> Result<Verdict, SimError> {
    let events = cluster.run_schedule(seed, schedule)?;
    let history = History::from_events(&events).expect("quiescent run yields a complete history");
    Ok(check_atomicity(&history))
}

/// Summary of a cell of the Table 1 experiment.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Runs executed.
    pub runs: usize,
    /// Runs in which the checker found a violation.
    pub violations: usize,
    /// A rendered witness from the first violating run, if any.
    pub witness: Option<String>,
}

/// Runs `runs` random schedules (plus the deterministic inversion schedule
/// for multi-writer protocols) and counts checker violations.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn probe_protocol(
    config: ClusterConfig,
    protocol: Protocol,
    runs: usize,
) -> Result<CellOutcome, SimError> {
    let cluster = Deployment::new(config)
        .protocol(protocol)
        .sim_cluster()
        .expect("core protocols always deploy on the simulator");
    let mut violations = 0;
    let mut witness = None;
    let mut record = |verdict: Verdict| {
        if let Verdict::Violation(v) = verdict {
            violations += 1;
            witness.get_or_insert_with(|| v.to_string());
        }
    };
    let use_inversion = config.writers() >= 2 && config.readers() >= 2;
    if use_inversion {
        record(run_and_check(&cluster, 0, &inversion_schedule())?);
    }
    for seed in 0..runs as u64 {
        let schedule = random_schedule(&config, 3, 600, seed * 7 + 1);
        record(run_and_check(&cluster, seed, &schedule)?);
    }
    let total = runs + usize::from(use_inversion);
    Ok(CellOutcome { runs: total, violations, witness })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schedules_are_deterministic_per_seed() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        assert_eq!(random_schedule(&config, 3, 100, 9), random_schedule(&config, 3, 100, 9));
        assert_ne!(random_schedule(&config, 3, 100, 9), random_schedule(&config, 3, 100, 10));
    }

    #[test]
    fn w2r2_survives_probing() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let outcome = probe_protocol(config, Protocol::W2R2, 10).unwrap();
        assert_eq!(outcome.violations, 0, "{:?}", outcome.witness);
    }

    #[test]
    fn w2r1_survives_probing_when_feasible() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        assert!(config.fast_read_feasible());
        let outcome = probe_protocol(config, Protocol::W2R1, 10).unwrap();
        assert_eq!(outcome.violations, 0, "{:?}", outcome.witness);
    }

    #[test]
    fn naive_fast_write_is_caught_by_the_inversion_schedule() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster =
            Deployment::new(config).protocol(Protocol::NaiveW1R2).sim_cluster().unwrap();
        let verdict = run_and_check(&cluster, 0, &inversion_schedule()).unwrap();
        assert!(!verdict.is_ok(), "Theorem 1 witness");
    }

    #[test]
    fn naive_fast_everything_is_caught_too() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let outcome = probe_protocol(config, Protocol::NaiveW1R1, 10).unwrap();
        assert!(outcome.violations > 0);
    }
}
