//! Experiment F2 — regenerates **Fig 2** (the latency/consistency Hasse
//! diagram): for every design point, measured operation latency under a
//! closed-loop workload next to its consistency verdict on the spectrum
//! atomic ⊃ regular ⊃ safe.

use mwr_check::{check_atomicity, check_regular, check_safe, History};
use mwr_core::Protocol;
use mwr_register::Deployment;
use mwr_sim::SimTime;
use mwr_types::ClusterConfig;
use mwr_workload::{run_closed_loop, TextTable, WorkloadSpec};

fn main() {
    println!("== Fig 2: algorithm schema — latency vs consistency ==\n");
    let spec = WorkloadSpec {
        duration: SimTime::from_ticks(6_000),
        think_time: SimTime::from_ticks(25),
        seed: 5,
    };

    let mut table = TextTable::new(vec![
        "protocol", "W rtts", "R rtts", "write p50", "read p50", "atomic", "regular", "safe",
    ]);

    for protocol in Protocol::ALL {
        let writers = if protocol.is_single_writer() { 1 } else { 2 };
        let config = ClusterConfig::new(5, 1, 2, writers).unwrap();
        let cluster = Deployment::new(config).protocol(protocol).sim_cluster().expect("core sim");
        let mut report = run_closed_loop(&cluster, spec).expect("workload");
        let history = History::from_events(&report.events).expect("complete history");
        let (w, r) = report.summaries();
        table.row(vec![
            protocol.name().to_string(),
            protocol.write_round_trips().to_string(),
            protocol.read_round_trips().to_string(),
            w.p50.to_string(),
            r.p50.to_string(),
            verdict(check_atomicity(&history).is_ok()),
            verdict(check_regular(&history).is_ok()),
            verdict(check_safe(&history).is_ok()),
        ]);
    }
    println!("{table}");
    println!("Shape to check against the paper's Hasse diagram:");
    println!("  latency:     W1R1 < W1R2 ≈ W2R1 < W2R2 (per-op, by round-trips)");
    println!("  consistency: the multi-writer fast-write points lose atomicity\n");
    println!("(One virtual tick ≈ one microsecond; absolute values are simulator-");
    println!("defined, only the ratios are meaningful.)");
}

fn verdict(ok: bool) -> String {
    if ok { "yes".into() } else { "NO".into() }
}
