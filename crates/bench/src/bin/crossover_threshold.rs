//! Experiment X1 — the feasibility crossover implied by Table 1's W2R1
//! row: fixing `S` and `t` and sweeping the number of readers `R`, the
//! paper's condition `R < S/t − 2` flips exactly once; the mechanized
//! engines and the implementation verdicts flip with it.

use mwr_bench::args::Args;
use mwr_bench::probe_protocol;
use mwr_chains::fastread::{fig9_outcome, Fig9Outcome};
use mwr_core::Protocol;
use mwr_types::ClusterConfig;
use mwr_workload::TextTable;

fn main() {
    let args = Args::parse();
    args.expect_known("crossover_threshold", &[], &["runs"]);
    let runs = args.get_u64("runs", 25) as usize;
    println!("== Crossover at R = S/t − 2 (W2R1 feasibility boundary) ==\n");

    for (s, t) in [(6usize, 1usize), (9, 2)] {
        println!("S = {s}, t = {t}  (boundary at R = {})", s / t - 2);
        let mut table = TextTable::new(vec![
            "R", "t(R+2) < S", "probe (checker)", "impossibility engine",
        ]);
        for r in 1..=(s / t) {
            let Ok(config) = ClusterConfig::new(s, t, r, 2) else { continue };
            let outcome = probe_protocol(config, Protocol::W2R1, runs).expect("simulation");
            let probe = if outcome.violations > 0 {
                format!("violations {}/{}", outcome.violations, outcome.runs)
            } else {
                format!("atomic in {} runs", outcome.runs)
            };
            let engine = match fig9_outcome(s, t, r) {
                Fig9Outcome::Impossible(_) => "contradiction derived".to_string(),
                Fig9Outcome::NotDerived => "no contradiction".to_string(),
                Fig9Outcome::Inapplicable(_) => {
                    if config.fast_read_feasible() {
                        "n/a (feasible)".to_string()
                    } else {
                        "[12] band".to_string()
                    }
                }
            };
            table.row(vec![
                r.to_string(),
                config.fast_read_feasible().to_string(),
                probe,
                engine,
            ]);
        }
        println!("{table}");
    }
    println!("Shape: feasibility is true strictly below the boundary and false at and");
    println!("above it; the constructive engine fires once S ≤ (R+1)t.");
}
