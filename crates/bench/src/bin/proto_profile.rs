//! Lockstep CPU attribution for the register protocols.
//!
//! The 1-core CI box cannot run a sampling profiler (the container blocks
//! profiling timers), so this bin answers "where do the cycles go" by
//! construction instead: it drives the real [`RegisterServer`] and
//! [`RegisterClient`] automata single-threaded through detached
//! [`Context`]s, delivering every message by hand and accumulating
//! per-component, per-message-kind wall time. No transport, no threads,
//! no scheduler — the measured time is pure protocol CPU, directly
//! comparable across protocols.
//!
//! Each round invokes one write on every writer and one read on every
//! reader, then pumps the message queue to quiescence (every round-trip
//! completes; contention comes from the interleaved bookkeeping, which is
//! what dominates the live 8×8 sweep too).

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use mwr_bench::args::Args;
use mwr_core::{ClientEvent, FastWire, Msg, Protocol, RegisterClient, RegisterServer};
use mwr_sim::{Automaton, Context, SimTime};
use mwr_types::{ClusterConfig, ProcessId, ReaderId, Value, WriterId};
use mwr_workload::TextTable;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SERVERS: usize = 11;
const FAULTS: usize = 1;

/// Coarse message-kind label for the attribution table.
fn kind(msg: &Msg) -> &'static str {
    match msg {
        Msg::Query { .. } => "Query",
        Msg::Update { .. } => "Update",
        Msg::ReadFast { .. } => "ReadFast",
        Msg::ReadFastDelta { .. } => "ReadFastDelta",
        Msg::ReadFastRuns { .. } => "ReadFastRuns",
        Msg::QueryAck { .. } => "QueryAck",
        Msg::UpdateAck { .. } => "UpdateAck",
        Msg::ReadFastAck { .. } => "ReadFastAck",
        Msg::ReadFastDeltaAck { .. } => "ReadFastDeltaAck",
        Msg::ReadFastRunsAck { .. } => "ReadFastRunsAck",
        _ => "other",
    }
}

/// One destination's accumulated handling cost.
#[derive(Default)]
struct Cost {
    time: Duration,
    msgs: u64,
}

/// Sub-step attribution inside the server's fast-read handler, gathered by
/// replaying the handler's exact sequence through the public
/// `ServerState` API (`--detail`).
#[derive(Default)]
struct FastReadDetail {
    record_floor: Duration,
    new_values: Duration,
    catch_up: Duration,
    register_latest: Duration,
    delta_since: Duration,
    reply_regs: u64,
    /// Version span `(version - from)` of each reply: how many versioned
    /// events (registrations + additions) the delta window covered,
    /// including ones filtered out of the reply by GC.
    window: u64,
    msgs: u64,
}

fn run(protocol: Protocol, clients: usize, rounds: usize, detail: bool) {
    let config =
        ClusterConfig::new(SERVERS, FAULTS, clients, clients).expect("valid profile config");
    let mut servers: Vec<RegisterServer> =
        (0..SERVERS).map(|_| RegisterServer::with_gc(2 * clients)).collect();
    let mut writers: Vec<RegisterClient> = (0..clients)
        .map(|i| RegisterClient::writer(WriterId::new(i as u32), config, protocol.write_mode()))
        .collect();
    let mut readers: Vec<RegisterClient> = (0..clients)
        .map(|i| {
            RegisterClient::reader_with_wire(
                ReaderId::new(i as u32),
                config,
                protocol.read_mode(),
                FastWire::default(),
            )
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(7);
    let mut next_timer = 0u64;
    // (server time, client time) per message kind, plus counts.
    let mut by_kind: std::collections::BTreeMap<&'static str, Cost> =
        std::collections::BTreeMap::new();
    let mut server_total = Duration::ZERO;
    let mut client_total = Duration::ZERO;
    let mut completed = 0u64;
    let mut fast_detail = FastReadDetail::default();
    let mut queue: VecDeque<(ProcessId, ProcessId, Msg)> = VecDeque::new();

    let started = Instant::now();
    for round in 0..rounds {
        // Invoke one op per client; their first-round broadcasts seed the
        // queue, then everything pumps to quiescence.
        for (i, w) in writers.iter_mut().enumerate() {
            let from = ProcessId::writer(i as u32);
            let mut ctx =
                Context::detached(SimTime::ZERO, from, &mut rng, &mut next_timer);
            w.on_external(Msg::InvokeWrite(Value::new((round * clients + i) as u64)), &mut ctx);
            for (to, msg) in ctx.take_sends() {
                queue.push_back((from, to, msg));
            }
        }
        for (i, r) in readers.iter_mut().enumerate() {
            let from = ProcessId::reader(i as u32);
            let mut ctx =
                Context::detached(SimTime::ZERO, from, &mut rng, &mut next_timer);
            r.on_external(Msg::InvokeRead, &mut ctx);
            for (to, msg) in ctx.take_sends() {
                queue.push_back((from, to, msg));
            }
        }
        while let Some((from, to, msg)) = queue.pop_front() {
            let label = kind(&msg);
            let mut ctx = Context::detached(SimTime::ZERO, to, &mut rng, &mut next_timer);
            let start = Instant::now();
            let is_server = if let Some(s) = to.as_server() {
                let server = &mut servers[s.index() as usize];
                if detail {
                    if let Msg::ReadFastRuns { handle, acked, floor, new_values } = &msg {
                        // Replay the handler's exact sequence through the
                        // public API, timing each sub-step. Keeps state
                        // identical to `handle` (epoch stays 0 here).
                        let client = from.as_client().expect("fast read from client");
                        let state = server.state_mut();
                        state.note_contact(client);
                        let acked = if *acked < state.reset_floor() { 0 } else { *acked };
                        let t0 = Instant::now();
                        state.record_floor(client, *floor);
                        let t1 = Instant::now();
                        for val in new_values {
                            state.update(*val, client);
                        }
                        let t2 = Instant::now();
                        state.catch_up_registrations(client, acked);
                        let t3 = Instant::now();
                        state.register_on_latest(client);
                        let t4 = Instant::now();
                        let delta = state.delta_since(acked);
                        let t5 = Instant::now();
                        fast_detail.record_floor += t1 - t0;
                        fast_detail.new_values += t2 - t1;
                        fast_detail.catch_up += t3 - t2;
                        fast_detail.register_latest += t4 - t3;
                        fast_detail.delta_since += t5 - t4;
                        fast_detail.reply_regs +=
                            delta.entries.iter().map(|r| r.updated.len() as u64).sum::<u64>();
                        fast_detail.window += delta.version - delta.from;
                        fast_detail.msgs += 1;
                        ctx.send(from, Msg::ReadFastRunsAck { handle: *handle, delta });
                    } else {
                        server.on_message(from, msg, &mut ctx);
                    }
                } else {
                    server.on_message(from, msg, &mut ctx);
                }
                true
            } else {
                let id = to.as_client().expect("client id");
                let client = match id.as_reader() {
                    Some(r) => &mut readers[r.index() as usize],
                    None => &mut writers[id.index() as usize],
                };
                client.on_message(from, msg, &mut ctx);
                false
            };
            let spent = start.elapsed();
            let cost = by_kind.entry(label).or_default();
            cost.time += spent;
            cost.msgs += 1;
            if is_server {
                server_total += spent;
            } else {
                client_total += spent;
            }
            completed += ctx
                .take_notes()
                .iter()
                .filter(|n| matches!(n, ClientEvent::Completed { .. }))
                .count() as u64;
            for (dest, out) in ctx.take_sends() {
                queue.push_back((to, dest, out));
            }
        }
    }
    let wall = started.elapsed();

    println!(
        "\n== {} — {clients}x{clients} clients, {rounds} lockstep rounds, \
         {completed} ops, {:.0} ms wall ==",
        protocol.name(),
        wall.as_secs_f64() * 1e3,
    );
    println!(
        "servers {:.0} ms, clients {:.0} ms",
        server_total.as_secs_f64() * 1e3,
        client_total.as_secs_f64() * 1e3,
    );
    let mut table = TextTable::new(vec!["message", "count", "total ms", "ns/msg"]);
    let mut kinds: Vec<_> = by_kind.iter().collect();
    kinds.sort_by_key(|(_, c)| std::cmp::Reverse(c.time));
    for (label, cost) in kinds {
        table.row(vec![
            (*label).to_string(),
            cost.msgs.to_string(),
            format!("{:.1}", cost.time.as_secs_f64() * 1e3),
            format!("{:.0}", cost.time.as_secs_f64() * 1e9 / cost.msgs.max(1) as f64),
        ]);
    }
    println!("{table}");

    if fast_detail.msgs > 0 {
        let mut detail_table = TextTable::new(vec!["fast-read step", "total ms", "ns/msg"]);
        let per = |d: Duration| format!("{:.0}", d.as_secs_f64() * 1e9 / fast_detail.msgs as f64);
        let ms = |d: Duration| format!("{:.1}", d.as_secs_f64() * 1e3);
        for (label, d) in [
            ("record_floor", fast_detail.record_floor),
            ("new_values", fast_detail.new_values),
            ("catch_up", fast_detail.catch_up),
            ("register_latest", fast_detail.register_latest),
            ("delta_since", fast_detail.delta_since),
        ] {
            detail_table.row(vec![label.to_string(), ms(d), per(d)]);
        }
        println!("{detail_table}");
        println!(
            "avg registrations per delta reply: {:.1} (avg version window {:.1})",
            fast_detail.reply_regs as f64 / fast_detail.msgs as f64,
            fast_detail.window as f64 / fast_detail.msgs as f64,
        );
    }
}

fn main() {
    let args = Args::parse();
    args.expect_known("proto_profile", &["detail"], &["clients", "rounds"]);
    let clients = args.get_u64("clients", 8) as usize;
    let rounds = args.get_u64("rounds", 400) as usize;
    let detail = args.flag("detail");
    for protocol in [Protocol::W2R1, Protocol::W2R2] {
        run(protocol, clients, rounds, detail);
    }
}
