//! Experiment F9 — regenerates **Fig 9** (§5): the fast-read (W2R1) lower
//! bound, swept across `(S, t, R)` and compared against the paper's
//! necessary-and-sufficient condition `R < S/t − 2`.

use mwr_chains::fastread::{fig9_outcome, Fig9Outcome};
use mwr_types::ClusterConfig;
use mwr_workload::TextTable;

fn main() {
    println!("== Fig 9: fast-read impossibility when R ≥ S/t − 2 ==\n");

    let mut table = TextTable::new(vec![
        "S", "t", "R", "paper (R < S/t − 2)", "engine verdict",
    ]);
    for (s, t) in [(3usize, 1usize), (4, 1), (5, 1), (6, 1), (6, 2), (8, 2), (9, 2)] {
        for r in 1..=4usize {
            let Ok(config) = ClusterConfig::new(s, t, r, 1) else { continue };
            let paper = if config.fast_read_feasible() { "possible" } else { "impossible" };
            let engine = match fig9_outcome(s, t, r) {
                Fig9Outcome::Impossible(c) => format!("impossible — {c}"),
                Fig9Outcome::NotDerived => "no contradiction derived".into(),
                Fig9Outcome::Inapplicable(_) => {
                    if config.fast_read_feasible() {
                        "construction n/a (feasible side)".into()
                    } else {
                        "band covered by [12] (see DESIGN.md)".into()
                    }
                }
            };
            table.row(vec![
                s.to_string(),
                t.to_string(),
                r.to_string(),
                paper.into(),
                truncate(&engine, 64),
            ]);
        }
    }
    println!("{table}");

    println!("WkR1 lift (paper §5.1: k consecutive write round-trips preceding all reads):\n");
    let mut table = TextTable::new(vec!["S", "t", "R", "write RTTs k", "outcome invariant"]);
    for (s, t, r) in [(4usize, 1usize, 3usize), (6, 2, 2), (5, 1, 2)] {
        let base = format!("{:?}", fig9_outcome(s, t, r));
        let mut invariant = true;
        for k in 1..=5 {
            invariant &= format!("{:?}", mwr_chains::wkr1_outcome(s, t, r, k)) == base;
        }
        table.row(vec![
            s.to_string(),
            t.to_string(),
            r.to_string(),
            "1..=5".into(),
            invariant.to_string(),
        ]);
    }
    println!("{table}");

    println!("The block construction derives the contradiction whenever S ≤ (R+1)·t;");
    println!("the band (R+1)·t < S ≤ (R+2)·t follows Dutta et al. [12] (reader reuse,");
    println!("Fig 9's repeated R1) — the engine models it but the certificate is not");
    println!("hard-coded. Feasible configurations never yield a contradiction, matching");
    println!("the W2R1 implementation shipped in mwr-core.");
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n).collect();
        format!("{cut}…")
    }
}
