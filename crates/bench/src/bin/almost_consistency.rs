//! Experiment X3 — quantified inconsistency of tunable fast registers.
//!
//! The paper's future work (§7) asks: *fix fast implementations first, then
//! quantify how much data inconsistency is introduced when strictly
//! guaranteeing atomicity is impossible*. Its introduction grounds the
//! question in practice (§1): quorum stores like Cassandra let operations
//! finish in one round-trip at the price of weak consistency.
//!
//! This experiment sweeps the tunable-register grid of `mwr-almost`
//! (write-tagging × consistency levels × read repair) against the paper's
//! atomic protocols, under increasing write contention, and reports for
//! each configuration:
//!
//! - round-trips per operation (the latency currency of the paper),
//! - measured read/write p50 latency,
//! - the strongest Fig 2 consistency class the runs satisfied,
//! - the staleness quantification: % stale reads, max staleness (⇒ a lower
//!   bound on attainable `k`-atomicity), and new/old inversions.
//!
//! Expected shape: every configuration with a one-round-trip operation
//! trades some anomaly budget for latency — exactly what Theorem 1 and the
//! fast-read bound prove unavoidable — while the paper's W2R1 stays atomic
//! with one-round-trip reads by paying two-round-trip writes *and* the
//! `R < S/t − 2` constraint.

use mwr_almost::{ConsistencyClass, ConsistencyProfile, TunableSpec};
use mwr_check::History;
use mwr_core::Protocol;
use mwr_register::{Deployment, Spec};
use mwr_sim::{DelayModel, SimTime};
use mwr_types::ClusterConfig;
use mwr_workload::{run_closed_loop_customized, TextTable, WorkloadSpec};

/// A row candidate: either a tunable spec or one of the paper's protocols.
enum Candidate {
    Tunable(TunableSpec),
    Paper(Protocol),
}

impl Candidate {
    fn label(&self) -> String {
        match self {
            Candidate::Tunable(spec) => spec.label(),
            Candidate::Paper(p) => p.name().to_string(),
        }
    }

    fn round_trips(&self) -> (usize, usize) {
        match self {
            Candidate::Tunable(spec) => (spec.write_round_trips(), spec.read_round_trips()),
            Candidate::Paper(p) => (p.write_round_trips(), p.read_round_trips()),
        }
    }

    fn spec(&self) -> Spec {
        match self {
            Candidate::Tunable(t) => Spec::Tunable(*t),
            Candidate::Paper(p) => Spec::Core(*p),
        }
    }
}

struct Aggregate {
    reads: usize,
    stale: usize,
    max_staleness: usize,
    inversions: usize,
    write_order: usize,
    weakest: ConsistencyClass,
    read_p50: SimTime,
    write_p50: SimTime,
}

fn measure(
    candidate: &Candidate,
    config: ClusterConfig,
    think_time: SimTime,
    seeds: &[u64],
) -> Aggregate {
    let delay = DelayModel::Uniform {
        lo: SimTime::from_ticks(3),
        hi: SimTime::from_ticks(30),
    };
    let mut agg = Aggregate {
        reads: 0,
        stale: 0,
        max_staleness: 0,
        inversions: 0,
        write_order: 0,
        weakest: ConsistencyClass::Atomic,
        read_p50: SimTime::ZERO,
        write_p50: SimTime::ZERO,
    };
    for &seed in seeds {
        let spec = WorkloadSpec { duration: SimTime::from_ticks(1_500), think_time, seed };
        // Both families run through the one facade-built blueprint: the
        // driver no longer cares which kind of client it is driving.
        let cluster = Deployment::new(config)
            .protocol(candidate.spec())
            .sim_cluster()
            .expect("sim deployment");
        let mut report = run_closed_loop_customized(&cluster, spec, |sim| {
            sim.network_mut().set_default_delay(delay);
        })
        .expect("closed loop");
        let history =
            History::from_events(&report.events).expect("quiescent run yields complete history");
        let profile = ConsistencyProfile::measure(&history);
        agg.reads += profile.staleness.reads();
        agg.stale += profile.staleness.stale_reads();
        agg.max_staleness = agg.max_staleness.max(profile.staleness.max_staleness());
        agg.inversions += profile.staleness.inversions();
        agg.write_order += profile.staleness.write_order_violations();
        agg.weakest = agg.weakest.min(profile.class);
        let (w, r) = report.summaries();
        agg.read_p50 = agg.read_p50.max(r.p50);
        agg.write_p50 = agg.write_p50.max(w.p50);
    }
    agg
}

fn main() {
    let config = ClusterConfig::new(5, 1, 2, 2).expect("valid config");
    let seeds: Vec<u64> = (1..=4).collect();

    let candidates = [
        Candidate::Tunable(TunableSpec::fastest()),
        Candidate::Tunable(TunableSpec::fastest_with_repair()),
        Candidate::Tunable(TunableSpec::quorum_lww()),
        Candidate::Tunable(TunableSpec {
            read_repair: true,
            ..TunableSpec::quorum_lww()
        }),
        Candidate::Tunable(TunableSpec::strong()),
        Candidate::Paper(Protocol::W2R1),
        Candidate::Paper(Protocol::W2R2),
    ];

    println!("== X3: inconsistency of tunable fast registers (paper §7 future work) ==");
    println!(
        "S = {}, t = {}, R = {}, W = {}; uniform link delay 3..30 ticks; {} seeds/config\n",
        config.servers(),
        config.max_faults(),
        config.readers(),
        config.writers(),
        seeds.len()
    );

    for (contention, think) in [("light", 300u64), ("medium", 60), ("heavy", 10)] {
        println!("-- contention: {contention} (think time {think} ticks) --");
        let mut table = TextTable::new(vec![
            "configuration",
            "wRTT",
            "rRTT",
            "rd p50",
            "wr p50",
            "class",
            "stale%",
            "maxStale",
            "invrs",
            "wOrd",
        ]);
        for candidate in &candidates {
            let agg = measure(candidate, config, SimTime::from_ticks(think), &seeds);
            let (w_rtt, r_rtt) = candidate.round_trips();
            let stale_pct = if agg.reads == 0 {
                0.0
            } else {
                100.0 * agg.stale as f64 / agg.reads as f64
            };
            table.row(vec![
                candidate.label(),
                w_rtt.to_string(),
                r_rtt.to_string(),
                agg.read_p50.ticks().to_string(),
                agg.write_p50.ticks().to_string(),
                agg.weakest.name().to_string(),
                format!("{stale_pct:.1}"),
                agg.max_staleness.to_string(),
                agg.inversions.to_string(),
                agg.write_order.to_string(),
            ]);
        }
        println!("{table}");
    }

    println!("Shape: one-round-trip operations without the paper's machinery surface");
    println!("stale reads and inversions that grow with contention; read repair and");
    println!("majority levels shrink but cannot eliminate them (Theorem 1); the");
    println!("paper's W2R1 keeps reads at one round-trip *and* stays atomic, at the");
    println!("cost of two-round-trip writes and the R < S/t − 2 bound.");
}
