//! Experiment T1 — regenerates **Table 1** (overview of contributions):
//! the verdict for every design point `WxRy`, empirically.
//!
//! For each protocol and configuration the harness runs seeded random
//! concurrent schedules (plus a deterministic writer-inversion schedule for
//! multi-writer protocols) through the simulator and the atomicity checker,
//! then compares the observed verdict against the theory column. Where
//! impossibility is an *existential* statement over adversarial schedules
//! (W2R1 beyond the feasibility bound), the mechanized certificates of
//! `mwr-chains` carry the claim and the table says so.

use mwr_bench::args::Args;
use mwr_bench::probe_protocol;
use mwr_core::Protocol;
use mwr_types::ClusterConfig;
use mwr_workload::TextTable;

fn main() {
    let args = Args::parse();
    args.expect_known("table1_design_space", &[], &["runs"]);
    let runs = args.get_u64("runs", 40) as usize;
    println!("== Table 1: fast implementations of multi-writer atomic registers ==\n");

    let configs = [
        ClusterConfig::new(5, 1, 2, 2).unwrap(), // fast reads feasible
        ClusterConfig::new(4, 1, 2, 2).unwrap(), // boundary: R = S/t − 2
        ClusterConfig::new(7, 2, 2, 2).unwrap(), // t = 2, infeasible (2·4 ≥ 7)
        ClusterConfig::new(9, 2, 2, 2).unwrap(), // t = 2, feasible (2·4 < 9)
    ];

    let mut table = TextTable::new(vec![
        "config", "protocol", "W rtts", "R rtts", "theory", "observed", "witness",
    ]);

    for config in configs {
        for protocol in Protocol::ALL {
            let config = if protocol.is_single_writer() {
                ClusterConfig::new(config.servers(), config.max_faults(), config.readers(), 1)
                    .unwrap()
            } else {
                config
            };
            let outcome = probe_protocol(config, protocol, runs).expect("simulation");
            let theory = if protocol.expected_atomic(&config) { "atomic" } else { "impossible" };
            let observed = if outcome.violations > 0 {
                format!("violations {}/{}", outcome.violations, outcome.runs)
            } else if protocol.expected_atomic(&config) {
                format!("atomic in {} runs", outcome.runs)
            } else {
                format!("no violation in {} runs (existential; see chains certificates)", outcome.runs)
            };
            table.row(vec![
                config.to_string(),
                protocol.name().to_string(),
                protocol.write_round_trips().to_string(),
                protocol.read_round_trips().to_string(),
                theory.to_string(),
                observed,
                outcome.witness.map(|w| truncate(&w, 48)).unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    println!("{table}");
    println!("Impossibility rows are backed mechanically:");
    println!("  W1R2 (Theorem 1)  → cargo run -p mwr-bench --bin fig3_chain_argument");
    println!("  W2R1 lower bound  → cargo run -p mwr-bench --bin fig9_fast_read");
}

fn truncate(s: &str, n: usize) -> String {
    let flat = s.replace('\n', " ");
    if flat.chars().count() <= n {
        flat
    } else {
        let cut: String = flat.chars().take(n).collect();
        format!("{cut}…")
    }
}
