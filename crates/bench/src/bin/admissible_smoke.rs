//! Experiment A1 — admissibility fast-path smoke & CI floor.
//!
//! The criterion `admissible` bench draws the full latency curves; this bin
//! is the cheap, assertable version for CI: it times the two production
//! paths of return-value selection —
//!
//! - **per-read build**: `WitnessIndex::from_views` over a quorum of
//!   borrowed snapshots plus one selection walk (the full-info wire's
//!   per-read cost), and
//! - **incremental**: one selection walk over a standing index (the delta
//!   wire's steady-state cost, where merges amortize index maintenance),
//!
//! plus the server's delta-path round (register + catch-up + assemble
//! `DeltaSnapshot`), across cluster sizes and candidate-value counts.
//!
//! With `--assert-admissible-floor` it exits non-zero if any point exceeds
//! `--max-ns` nanoseconds per operation, or if growing the candidate set
//! 8× (8 → 64 values) grows selection cost by more than `--max-growth`×.
//! A quadratic regression in the index (e.g. re-building masks per
//! candidate × degree, the pre-incremental behavior) blows both bounds;
//! run-to-run noise on a loaded single-core box does not.

use std::time::Instant;

use mwr_bench::args::Args;
use mwr_bench::synthetic_replies;
use mwr_core::{ServerState, SnapshotSource, WitnessIndex};
use mwr_types::ClientId;

/// Median-of-3 timing of `f`, in ns per iteration.
fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut samples = [0f64; 3];
    for s in &mut samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        *s = t0.elapsed().as_nanos() as f64 / iters as f64;
    }
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    samples[1]
}

fn main() {
    let args = Args::parse();
    args.expect_known(
        "admissible_smoke",
        &["assert-admissible-floor"],
        &["max-ns", "max-growth", "iters"],
    );
    let assert_floor = args.flag("assert-admissible-floor");
    let max_ns = args.get_u64("max-ns", 250_000) as f64;
    let max_growth = args.get_u64("max-growth", 24) as f64;
    let iters = args.get_u64("iters", 2_000) as u32;

    println!("== A1: admissibility fast-path smoke (ns/op, median of 3 runs x {iters} iters) ==\n");
    println!(
        "{:<14} {:>7} {:>16} {:>14} {:>14}",
        "cluster", "values", "per-read build", "incremental", "server delta"
    );

    let mut failed = false;
    // (servers, faults, readers) shaped like the criterion bench.
    for (servers, t, readers) in [(5usize, 1usize, 2usize), (13, 3, 2), (25, 4, 2)] {
        let quorum = servers - t;
        let mut growth: Vec<(f64, f64)> = Vec::new();
        for values in [8usize, 64] {
            let snaps = synthetic_replies(quorum, values, readers + 2);

            let per_read = time_ns(iters, || {
                let (index, mask) =
                    WitnessIndex::from_views(snaps.iter().map(SnapshotSource::view));
                let v = index.selector(mask, servers, t, readers + 1).select_return_value();
                std::hint::black_box(v);
            });

            let (index, mask) = WitnessIndex::from_views(snaps.iter().map(SnapshotSource::view));
            let incremental = time_ns(iters, || {
                let v = index.selector(mask, servers, t, readers + 1).select_return_value();
                std::hint::black_box(v);
            });

            // The server's whole delta round for a reader that acked the
            // state the other clients produced.
            let mut server = ServerState::new();
            for snap in &snaps {
                for rec in &snap.entries {
                    for &c in &rec.updated {
                        server.update(rec.value, c);
                    }
                }
            }
            let reader = ClientId::reader(90);
            // The round mutates the server, so each iteration works on a
            // clone; timing the clone alone and subtracting isolates the
            // register + catch-up + assemble cost the column reports.
            let clone_ns = time_ns(iters, || {
                std::hint::black_box(server.clone());
            });
            let server_delta = (time_ns(iters, || {
                let mut s = server.clone();
                let acked = s.version();
                s.catch_up_registrations(reader, acked);
                s.register_on_latest(reader);
                std::hint::black_box(s.delta_since(acked));
            }) - clone_ns)
                .max(0.0);

            println!(
                "S{servers} t{t} R{readers}    {values:>7} {per_read:>13.0}ns {incremental:>11.0}ns {server_delta:>11.0}ns"
            );
            growth.push((per_read, incremental));
            for (label, ns) in [("per-read", per_read), ("incremental", incremental)] {
                if ns > max_ns {
                    eprintln!(
                        "FAIL: S{servers} t{t} values={values} {label} selection took {ns:.0}ns \
                         (> --max-ns {max_ns:.0})"
                    );
                    failed = true;
                }
            }
        }
        let (build8, inc8) = growth[0];
        let (build64, inc64) = growth[1];
        for (label, small, big) in [("per-read", build8, build64), ("incremental", inc8, inc64)] {
            let ratio = big / small.max(1.0);
            if ratio > max_growth {
                eprintln!(
                    "FAIL: S{servers} t{t} {label} selection grew {ratio:.1}x from 8 to 64 \
                     candidate values (> --max-growth {max_growth:.0}x) — quadratic regression?"
                );
                failed = true;
            }
        }
    }

    println!("\nShape: selection cost must scale with live state, not candidates x degrees;");
    println!("the incremental column is what every delta-wire read pays after merges.");

    if assert_floor {
        if failed {
            std::process::exit(1);
        }
        println!("admissibility floor assertion passed: all points under {max_ns:.0}ns and {max_growth:.0}x growth");
    }
}
