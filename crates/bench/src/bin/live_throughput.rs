//! Experiment T1 — open-loop throughput on the live runtime.
//!
//! `live_latency` measures one operation at a time (closed loop); this bin
//! measures the other half of the practicality story (Nicolaou &
//! Georgiou): sustained ops/sec and latency-*under-load* as the client
//! population scales. It sweeps writer × reader counts over both live
//! transports for W2R1 (fast reads) and W2R2 (two-round reads), driving
//! every client open-loop — back-to-back operations, load fixed by the
//! population, not by a think-time schedule.
//!
//! On TCP every sweep point runs three times: through the shared
//! readiness-based reader (`shared`, the default receive path — one poll
//! loop drains every accepted socket), through the per-peer writer
//! pipelines with thread-per-connection readers (`pipeline`,
//! `TcpTuning::shared_reader = false`), and through the pre-pipeline
//! legacy send path (`legacy`, `TcpTuning::legacy_send`), so both
//! transport reworks are measured before/after by the same binary. The
//! most contended point's pipeline/legacy ratio stays the historical
//! headline; shared rows additionally report the poll wake-per-frame
//! ratio, and the W2R1-vs-W2R2 contended shared-reader ratio is the
//! paper-claim headline.
//!
//! The cluster is S = 11, t = 1: large enough that W2R1's fast-read
//! condition `R < S/t − 2 = 9` still holds at the sweep's maximum R = 8.
//!
//! With `--audit` every sweep point additionally carries the streaming
//! linearizability auditor (`--audit-sample`, default 0.1 of reads; writes
//! are always sampled) and the run fails on any violation. The unfiltered
//! run always measures the auditor's overhead — the most contended
//! in-memory point driven twice, bare and audited — and reports it in the
//! output and the JSON artifact.
//!
//! Emits `BENCH_live_throughput.json`. With `--assert-floor`, exits
//! non-zero if any pipeline/channel sweep point completes fewer than
//! `--floor` ops/sec (default 50) — the CI liveness-under-load gate.
//!
//! With `--keys N[,M..] --zipf s` the bin runs the **keyspace sweep**
//! instead: each point deploys a sharded multi-register keyspace
//! ([`Keyspace`]) on the same 11 servers and drives it open-loop with
//! Zipf(`s`)-skewed key popularity. `--keys 1` degenerates to the
//! single-register service (group = whole cluster, W2R1) — the parity
//! points against the main sweep — while multi-key points shard into
//! groups of 5 (where W2R1's fast-read bound fails at R ≥ 3, so reads
//! adapt: W2Ra). Emits `BENCH_keyspace.json` in the sweep-line shape plus
//! `keys`/`zipf` columns, and honors `--audit` with one streaming auditor
//! per touched register.
//!
//! With `--faults rolling-restart|churn-storm|reconfigure`
//! (comma-separable) the bin runs the named audited chaos scenario(s)
//! instead of the sweep: a deterministic [`FaultPlan`] is armed on the
//! deployment and driven with `run_chaos` while stable clients measure
//! throughput *through* the faults. Rolling restart crashes and rejoins
//! every TCP server once (quorum state transfer on the live wire); churn
//! storm floods the in-memory cluster with hundreds of short-lived clients
//! that join, read, and depart floor-safely; reconfigure swaps two live
//! TCP servers for two fresh ones mid-traffic through the joint-quorum
//! handover, and additionally measures a fault-free *steady-state twin* of
//! the same deployment — the scenario fails unless throughput through the
//! reconfiguration window holds at least 50% of steady state. Combining
//! `--keys N[,M..]` with `--faults` adds one keyspace chaos row per
//! scenario × key count: the same plans driven against the sharded
//! Zipf-keyed service (per-shard state transfer, per-shard joint-quorum
//! handover). Emits `BENCH_chaos.json` in the same sweep-line shape
//! (`send_path` = scenario, plus a `faults` column and, on keyspace rows,
//! `keys`/`zipf` columns) so `bench_delta` renders chaos rows too, and
//! exits non-zero on any auditor violation, failed operation, unhealed
//! fault, unrecovered server, or breached reconfigure-window floor.

use std::fmt::Write as _;
use std::time::Duration;

use mwr_bench::args::Args;
use mwr_core::Protocol;
use mwr_keyspace::{Keyspace, KeyspaceHandle};
use mwr_register::{
    AuditConfig, AuditReport, Backend, Deployment, FaultPlan, LiveHandle, RetryPolicy, TcpTuning,
};
use mwr_runtime::{EndpointFactory, ReaderStats};
use mwr_types::{ClusterConfig, KeyspaceConfig};
use mwr_workload::{TextTable, ThroughputReport};

const SERVERS: usize = 11;
const FAULTS: usize = 1;

/// One measured sweep point.
struct Row {
    transport: &'static str,
    send_path: &'static str,
    protocol: Protocol,
    writers: usize,
    readers: usize,
    ops: usize,
    ops_per_sec: f64,
    wr_p50_us: u64,
    wr_p99_us: u64,
    rd_p50_us: u64,
    rd_p99_us: u64,
    audit: Option<AuditReport>,
    /// Deployment-wide shared-reader counters, on `shared` TCP rows only:
    /// the wake-per-frame ratio is the syscall economy the readiness
    /// reader buys over thread-per-connection wakeups.
    reader: Option<ReaderStats>,
}

impl Row {
    #[allow(clippy::too_many_arguments)]
    fn from_report(
        transport: &'static str,
        send_path: &'static str,
        protocol: Protocol,
        writers: usize,
        readers: usize,
        mut report: ThroughputReport,
        audit: Option<AuditReport>,
        reader: Option<ReaderStats>,
    ) -> Row {
        Row {
            transport,
            send_path,
            protocol,
            writers,
            readers,
            ops: report.ops(),
            ops_per_sec: report.ops_per_sec(),
            wr_p50_us: report.writes.percentile(50.0).ticks(),
            wr_p99_us: report.writes.percentile(99.0).ticks(),
            rd_p50_us: report.reads.percentile(50.0).ticks(),
            rd_p99_us: report.reads.percentile(99.0).ticks(),
            audit,
            reader,
        }
    }

    /// Poll wake-ups per decoded frame across the whole deployment; < 1.0
    /// means one `poll` wake drained multiple frames.
    fn wakes_per_frame(&self) -> Option<f64> {
        let r = self.reader?;
        (r.frames > 0).then(|| r.wakes as f64 / r.frames as f64)
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.transport.to_string(),
            self.send_path.to_string(),
            self.protocol.name().to_string(),
            format!("{}x{}", self.writers, self.readers),
            self.ops.to_string(),
            format!("{:.0}", self.ops_per_sec),
            self.wr_p50_us.to_string(),
            self.wr_p99_us.to_string(),
            self.rd_p50_us.to_string(),
            self.rd_p99_us.to_string(),
            self.wakes_per_frame().map_or_else(|| "-".into(), |w| format!("{w:.3}")),
        ]
    }
}

/// Deploys, drives open-loop, shuts down; generic over the transport.
fn drive_on<F: EndpointFactory>(
    handle: LiveHandle<F>,
    duration: Duration,
) -> (ThroughputReport, Option<AuditReport>) {
    let report = handle.run_open_loop(duration).expect("open-loop drive");
    let (_handled, audit) = handle.shutdown_audited();
    (report, audit)
}

fn measure_point(
    transport: &'static str,
    send_path: &'static str,
    protocol: Protocol,
    writers: usize,
    readers: usize,
    duration: Duration,
    audit: Option<AuditConfig>,
) -> Row {
    let config = ClusterConfig::new(SERVERS, FAULTS, readers, writers).expect("valid sweep config");
    let mut deployment = Deployment::new(config).protocol(protocol);
    if let Some(cfg) = audit {
        deployment = deployment.audit(cfg);
    }
    let mut reader = None;
    let (report, audit) = match send_path {
        "channel" => drive_on(
            deployment.backend(Backend::InMemory).in_memory().expect("in-memory cluster"),
            duration,
        ),
        // The default tuning: shared readiness-based reader. Snapshot the
        // deployment-wide reader counters before shutdown so this row
        // carries its own traffic's wake-per-frame ratio.
        "shared" => {
            let handle = deployment.backend(Backend::Tcp).tcp().expect("tcp cluster");
            let report = handle.run_open_loop(duration).expect("open-loop drive");
            reader = Some(handle.cluster().factory().reader_totals());
            let (_handled, audit) = handle.shutdown_audited();
            (report, audit)
        }
        // Thread-per-connection readers with the per-peer writer
        // pipelines: the pre-shared-reader receive path.
        "pipeline" => drive_on(
            deployment
                .backend(Backend::Tcp)
                .tcp_tuning(TcpTuning { shared_reader: false, ..TcpTuning::default() })
                .tcp()
                .expect("tcp cluster (per-connection readers)"),
            duration,
        ),
        "legacy" => drive_on(
            deployment
                .backend(Backend::Tcp)
                .tcp_tuning(TcpTuning { legacy_send: true, ..TcpTuning::default() })
                .tcp()
                .expect("tcp cluster (legacy send)"),
            duration,
        ),
        other => unreachable!("unknown send path {other}"),
    };
    Row::from_report(transport, send_path, protocol, writers, readers, report, audit, reader)
}

/// The audit-overhead pair: the most contended in-memory point driven
/// bare and then audited at `rate`, same duration.
struct AuditOverhead {
    rate: f64,
    base_ops_per_sec: f64,
    audited_ops_per_sec: f64,
    report: AuditReport,
}

impl AuditOverhead {
    fn overhead_pct(&self) -> f64 {
        (1.0 - self.audited_ops_per_sec / self.base_ops_per_sec.max(1e-9)) * 100.0
    }
}

fn measure_audit_overhead(
    protocol: Protocol,
    clients: usize,
    duration: Duration,
    rate: f64,
) -> AuditOverhead {
    let bare = measure_point("in-memory", "channel", protocol, clients, clients, duration, None);
    let audited = measure_point(
        "in-memory",
        "channel",
        protocol,
        clients,
        clients,
        duration,
        Some(AuditConfig::sampled(rate)),
    );
    let report = audited.audit.expect("audited point carries a report");
    AuditOverhead {
        rate,
        base_ops_per_sec: bare.ops_per_sec,
        audited_ops_per_sec: audited.ops_per_sec,
        report,
    }
}

/// One completed chaos scenario, with the throughput numbers flattened at
/// construction (percentile extraction needs the report mutable).
struct ChaosRow {
    scenario: &'static str,
    transport: &'static str,
    protocol: Protocol,
    writers: usize,
    readers: usize,
    servers: usize,
    /// `Some` on keyspace chaos rows: the Zipf-keyed register count.
    keys: Option<usize>,
    /// `Some` on keyspace chaos rows: the Zipf skew.
    zipf: Option<f64>,
    /// Plan-specific expectation: servers each crashed+rejoined once
    /// (rolling restart), churn clients each joined+departed once, or
    /// joint-quorum handovers committed (reconfigure).
    expected_cycles: u32,
    ops: usize,
    ops_per_sec: f64,
    wr_p50_us: u64,
    wr_p99_us: u64,
    rd_p50_us: u64,
    rd_p99_us: u64,
    /// Fault-free twin of the same deployment (reconfigure only): the
    /// chaos window must hold ≥ [`RECONFIG_WINDOW_FLOOR`] of this.
    steady_ops_per_sec: Option<f64>,
    report: mwr_register::ChaosReport,
    audit: Option<AuditReport>,
    /// Keyspace chaos rows: `(registers audited, ops audited, all ok)`.
    key_audit: Option<(usize, u64, bool)>,
}

const CHAOS_SERVERS: usize = 3;

/// Reconfigure scenarios swap 2 of 5 servers: S = 5, t = 1 keeps both the
/// old and new quorums live through the joint window.
const RECONFIG_SERVERS: usize = 5;

/// Minimum fraction of fault-free steady-state throughput the reconfigure
/// window must sustain.
const RECONFIG_WINDOW_FLOOR: f64 = 0.5;

/// Runs the armed fault plan and flattens the report; generic over the
/// transport.
fn drive_chaos<F: EndpointFactory>(
    mut cluster: LiveHandle<F>,
    duration: Duration,
    scenario: &'static str,
    transport: &'static str,
    servers: usize,
    expected_cycles: u32,
) -> ChaosRow {
    let mut report = cluster.run_chaos(duration).expect("chaos drive");
    let (_handled, audit) = cluster.shutdown_audited();
    ChaosRow {
        scenario,
        transport,
        protocol: Protocol::W2R1,
        writers: 2,
        readers: 2,
        servers,
        keys: None,
        zipf: None,
        expected_cycles,
        ops: report.throughput.ops(),
        ops_per_sec: report.throughput.ops_per_sec(),
        wr_p50_us: report.throughput.writes.percentile(50.0).ticks(),
        wr_p99_us: report.throughput.writes.percentile(99.0).ticks(),
        rd_p50_us: report.throughput.reads.percentile(50.0).ticks(),
        rd_p99_us: report.throughput.reads.percentile(99.0).ticks(),
        steady_ops_per_sec: None,
        report,
        audit,
        key_audit: None,
    }
}

/// Deploys the named scenario, drives it under the fault plan, and
/// returns the measured row. Exits with usage on an unknown name.
fn run_fault_scenario(kind: &str, quick: bool, audit: Option<AuditConfig>) -> ChaosRow {
    let config = ClusterConfig::new(CHAOS_SERVERS, 1, 2, 2).expect("chaos cluster config");
    match kind {
        "rolling-restart" => {
            // The fault-window client configuration: a round whose frames
            // died with a crashed (or freshly re-bound) server times out
            // fast, and the retry's re-broadcast reconnects to the
            // incarnation's new address.
            let mut deployment = Deployment::new(config)
                .protocol(Protocol::W2R1)
                .backend(Backend::Tcp)
                .timeout(Duration::from_millis(400))
                .retry(RetryPolicy { attempts: 10, backoff: Duration::from_millis(10) })
                .inject(FaultPlan::rolling_restart(CHAOS_SERVERS as u32, 150));
            if let Some(cfg) = audit {
                deployment = deployment.audit(cfg);
            }
            let cluster = deployment.tcp().expect("tcp chaos cluster");
            let duration = Duration::from_millis(if quick { 2_000 } else { 4_000 });
            drive_chaos(
                cluster,
                duration,
                "rolling-restart",
                "tcp",
                CHAOS_SERVERS,
                CHAOS_SERVERS as u32,
            )
        }
        "churn-storm" => {
            let clients: u32 = if quick { 200 } else { 500 };
            let mut deployment = Deployment::new(config)
                .protocol(Protocol::W2R1)
                .backend(Backend::InMemory)
                .inject(FaultPlan::churn_storm(clients, 2, 20));
            if let Some(cfg) = audit {
                deployment = deployment.audit(cfg);
            }
            let cluster = deployment.in_memory().expect("in-memory chaos cluster");
            let duration = Duration::from_millis(if quick { 1_000 } else { 2_000 });
            drive_chaos(cluster, duration, "churn-storm", "in-memory", CHAOS_SERVERS, clients)
        }
        "reconfigure" => {
            // Swap 2 of 5 live TCP servers mid-traffic: announce the joint
            // epoch, quorum-transfer state to the joiners, commit, tear
            // down the removed pair — stable clients keep serving through
            // the whole window (a round that straddles the handover
            // refreshes its endpoint set mid-flight).
            let config =
                ClusterConfig::new(RECONFIG_SERVERS, 1, 2, 2).expect("reconfig cluster config");
            let duration = Duration::from_millis(if quick { 2_000 } else { 4_000 });
            let build = |plan: Option<FaultPlan>| {
                let mut deployment = Deployment::new(config)
                    .protocol(Protocol::W2R1)
                    .backend(Backend::Tcp)
                    .timeout(Duration::from_millis(400))
                    .retry(RetryPolicy { attempts: 10, backoff: Duration::from_millis(10) });
                if let Some(plan) = plan {
                    deployment = deployment.inject(plan);
                }
                deployment
            };
            // The fault-free twin first: same shape, same duration, no
            // plan — the denominator of the window-throughput floor.
            let twin = build(None).tcp().expect("tcp steady twin");
            let steady = twin.run_open_loop(duration).expect("steady twin drive").ops_per_sec();
            twin.shutdown();
            let mut deployment = build(Some(FaultPlan::reconfigure(2, 2, 150)));
            if let Some(cfg) = audit {
                deployment = deployment.audit(cfg);
            }
            let cluster = deployment.tcp().expect("tcp reconfig cluster");
            let mut row =
                drive_chaos(cluster, duration, "reconfigure", "tcp", RECONFIG_SERVERS, 1);
            row.steady_ops_per_sec = Some(steady);
            row
        }
        other => {
            eprintln!(
                "--faults expects rolling-restart|churn-storm|reconfigure \
                 (comma-separable), got {other:?}"
            );
            std::process::exit(2);
        }
    }
}

/// Runs the armed fault plan against a sharded keyspace and flattens the
/// report plus the per-register audit verdicts; generic over the
/// transport.
fn drive_keyspace_chaos<F: EndpointFactory>(
    mut handle: KeyspaceHandle<F>,
    keys: usize,
    zipf: f64,
    duration: Duration,
    scenario: &'static str,
    transport: &'static str,
    expected_cycles: u32,
) -> ChaosRow {
    let mut report = handle.run_chaos(keys, zipf, duration, 7).expect("keyspace chaos drive");
    let (_handled, reports) = handle.shutdown_audited();
    let key_audit = (!reports.is_empty()).then(|| {
        (
            reports.len(),
            reports.values().map(|a| a.stats.audited).sum(),
            reports.values().all(|a| a.verdict.is_ok()),
        )
    });
    ChaosRow {
        scenario,
        transport,
        protocol: Protocol::W2Ra,
        writers: 2,
        readers: 2,
        servers: RECONFIG_SERVERS,
        keys: Some(keys),
        zipf: Some(zipf),
        expected_cycles,
        ops: report.throughput.ops(),
        ops_per_sec: report.throughput.ops_per_sec(),
        wr_p50_us: report.throughput.writes.percentile(50.0).ticks(),
        wr_p99_us: report.throughput.writes.percentile(99.0).ticks(),
        rd_p50_us: report.throughput.reads.percentile(50.0).ticks(),
        rd_p99_us: report.throughput.reads.percentile(99.0).ticks(),
        steady_ops_per_sec: None,
        report,
        audit: None,
        key_audit,
    }
}

/// Deploys the named scenario against the sharded keyspace (S = 5, t = 1,
/// groups of 3, 8 shards) and drives it under the same fault plan:
/// per-shard quorum state transfer on rejoin, per-shard joint-quorum
/// handover on reconfigure, Zipf-keyed traffic throughout. Unknown names
/// were already rejected by [`run_fault_scenario`], which runs first.
fn run_keyspace_fault_scenario(
    kind: &str,
    keys: usize,
    zipf: f64,
    quick: bool,
    audit: Option<AuditConfig>,
) -> ChaosRow {
    let config =
        KeyspaceConfig::new(RECONFIG_SERVERS, 1, 3, 8, 2, 2).expect("keyspace chaos config");
    let blueprint = |plan: Option<FaultPlan>, audited: bool| {
        let mut b = Keyspace::new(config)
            .protocol(Protocol::W2Ra)
            .timeout(Duration::from_millis(400))
            .retry(RetryPolicy { attempts: 10, backoff: Duration::from_millis(10) });
        if let Some(plan) = plan {
            b = b.inject(plan);
        }
        if let (Some(cfg), true) = (audit, audited) {
            b = b.audit(cfg);
        }
        b
    };
    match kind {
        "rolling-restart" => {
            // A shorter stride than the register scenario: five servers
            // must each crash and rejoin inside the window, and every
            // rejoin pays a per-shard fetch quorum.
            let plan = FaultPlan::rolling_restart(RECONFIG_SERVERS as u32, 100);
            let handle = blueprint(Some(plan), true).tcp().expect("tcp keyspace chaos");
            let duration = Duration::from_millis(if quick { 2_000 } else { 4_000 });
            drive_keyspace_chaos(
                handle,
                keys,
                zipf,
                duration,
                "rolling-restart",
                "tcp",
                RECONFIG_SERVERS as u32,
            )
        }
        "churn-storm" => {
            let clients: u32 = if quick { 200 } else { 500 };
            let plan = FaultPlan::churn_storm(clients, 2, 20);
            let handle = blueprint(Some(plan), true).in_memory().expect("in-memory keyspace chaos");
            let duration = Duration::from_millis(if quick { 1_000 } else { 2_000 });
            drive_keyspace_chaos(handle, keys, zipf, duration, "churn-storm", "in-memory", clients)
        }
        "reconfigure" => {
            let duration = Duration::from_millis(if quick { 2_000 } else { 4_000 });
            // Fault-free steady-state twin, as in the register scenario.
            let twin = blueprint(None, false).tcp().expect("tcp keyspace steady twin");
            let steady =
                twin.run_open_loop(keys, zipf, duration, 7).expect("steady twin drive").ops_per_sec();
            twin.shutdown();
            let plan = FaultPlan::reconfigure(2, 2, 150);
            let handle = blueprint(Some(plan), true).tcp().expect("tcp keyspace reconfig");
            let mut row =
                drive_keyspace_chaos(handle, keys, zipf, duration, "reconfigure", "tcp", 1);
            row.steady_ops_per_sec = Some(steady);
            row
        }
        other => unreachable!("unvalidated keyspace fault scenario {other}"),
    }
}

/// Everything wrong with a finished scenario: empty means it passed.
fn chaos_failures(row: &ChaosRow) -> Vec<String> {
    let r = &row.report;
    let mut fails = Vec::new();
    if !r.healed() {
        fails.push(format!(
            "unhealed faults: {} rejoin failure(s), {} skipped step(s), {} failed op(s), \
             {} of {} churn clients departed",
            r.rejoin_failures, r.steps_skipped, r.failed_ops, r.churn_departed, r.churn_joined,
        ));
    }
    if r.live_servers.len() != row.servers {
        fails.push(format!(
            "unrecovered server(s): {:?} live of {}",
            r.live_servers, row.servers
        ));
    }
    let cycles_ok = match row.scenario {
        "rolling-restart" => r.crashes == row.expected_cycles && r.rejoins == row.expected_cycles,
        "reconfigure" => r.reconfigs == row.expected_cycles,
        _ => r.churn_joined == row.expected_cycles,
    };
    if !cycles_ok {
        fails.push(format!(
            "plan under-ran: {} crashes / {} rejoins / {} reconfigs / {} churn joins, \
             expected {} cycles",
            r.crashes, r.rejoins, r.reconfigs, r.churn_joined, row.expected_cycles,
        ));
    }
    if let Some(steady) = row.steady_ops_per_sec {
        if row.ops_per_sec < RECONFIG_WINDOW_FLOOR * steady {
            fails.push(format!(
                "reconfigure window held {:.0} ops/s, below {:.0}% of the {steady:.0} ops/s \
                 fault-free steady state",
                row.ops_per_sec,
                RECONFIG_WINDOW_FLOOR * 100.0,
            ));
        }
    }
    if let Some(a) = &row.audit {
        if !a.verdict.is_ok() {
            fails.push(format!("AUDIT VIOLATION: {a}"));
        }
    }
    if let Some((registers, _, ok)) = row.key_audit {
        if !ok {
            fails.push(format!(
                "AUDIT VIOLATION: a per-register auditor (of {registers}) rejected its history"
            ));
        }
    }
    fails
}

/// `BENCH_chaos.json`: the scenarios in the sweep-line shape
/// `bench_delta` parses (`send_path` = scenario, `faults` = scenario, and
/// keyspace chaos rows carry `keys`/`zipf` identity columns), plus the
/// chaos counters and — on reconfigure rows — the fault-free steady-state
/// twin's throughput.
fn chaos_to_json(rows: &[ChaosRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"experiment\": \"live_throughput_chaos\",\n  \"sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let r = &row.report;
        let _ = write!(
            s,
            "    {{\"transport\": \"{}\", \"send_path\": \"{}\", \"protocol\": \"{}\", \
             \"writers\": {}, \"readers\": {}",
            row.transport,
            row.scenario,
            row.protocol.name(),
            row.writers,
            row.readers,
        );
        if let (Some(keys), Some(zipf)) = (row.keys, row.zipf) {
            let _ = write!(s, ", \"keys\": {keys}, \"zipf\": {zipf:.2}");
        }
        let _ = write!(
            s,
            ", \"ops\": {}, \"ops_per_sec\": {:.1}, \"wr_p50_us\": {}, \"wr_p99_us\": {}, \
             \"rd_p50_us\": {}, \"rd_p99_us\": {}, \"faults\": \"{}\", \"crashes\": {}, \
             \"rejoins\": {}, \"reconfigs\": {}, \"reconfig_failures\": {}, \
             \"churn_joined\": {}, \"churn_departed\": {}, \"churn_reads\": {}, \
             \"failed_ops\": {}, \"steps_skipped\": {}, \"live_servers\": {}",
            row.ops,
            row.ops_per_sec,
            row.wr_p50_us,
            row.wr_p99_us,
            row.rd_p50_us,
            row.rd_p99_us,
            row.scenario,
            r.crashes,
            r.rejoins,
            r.reconfigs,
            r.reconfig_failures,
            r.churn_joined,
            r.churn_departed,
            r.churn_reads,
            r.failed_ops,
            r.steps_skipped,
            r.live_servers.len(),
        );
        if let Some(steady) = row.steady_ops_per_sec {
            let _ = write!(s, ", \"steady_ops_per_sec\": {steady:.1}");
        }
        if let Some(a) = &row.audit {
            let _ = write!(
                s,
                ", \"ops_audited\": {}, \"audit_ok\": {}",
                a.stats.audited,
                a.verdict.is_ok(),
            );
        }
        if let Some((registers, audited, ok)) = row.key_audit {
            let _ = write!(
                s,
                ", \"registers_audited\": {registers}, \"ops_audited\": {audited}, \
                 \"audit_ok\": {ok}"
            );
        }
        s.push('}');
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `--faults` entry point: run each named scenario (plus, with
/// `--keys`, its keyspace variant per key count), print the table, write
/// `BENCH_chaos.json`, and exit non-zero if any scenario failed.
fn run_chaos_mode(
    kinds: &str,
    key_counts: Option<&[usize]>,
    zipf: f64,
    quick: bool,
    audit: Option<AuditConfig>,
) -> ! {
    let mut rows: Vec<ChaosRow> = Vec::new();
    for kind in kinds.split(',').map(str::trim).filter(|k| !k.is_empty()) {
        rows.push(run_fault_scenario(kind, quick, audit));
        for &keys in key_counts.unwrap_or_default() {
            rows.push(run_keyspace_fault_scenario(kind, keys, zipf, quick, audit));
        }
    }
    if rows.is_empty() {
        eprintln!("--faults expects at least one scenario name");
        std::process::exit(2);
    }

    let mut table = TextTable::new(vec![
        "scenario", "transport", "keys", "ops", "ops/s", "steady", "wr p99µs", "rd p99µs",
        "crash/rejoin", "reconf", "churn join/depart", "failed", "live",
    ]);
    for row in &rows {
        let r = &row.report;
        table.row(vec![
            row.scenario.to_string(),
            row.transport.to_string(),
            row.keys.map_or_else(|| "-".into(), |k| k.to_string()),
            row.ops.to_string(),
            format!("{:.0}", row.ops_per_sec),
            row.steady_ops_per_sec.map_or_else(|| "-".into(), |s| format!("{s:.0}")),
            row.wr_p99_us.to_string(),
            row.rd_p99_us.to_string(),
            format!("{}/{}", r.crashes, r.rejoins),
            format!("{}/{}", r.reconfigs, r.reconfig_failures),
            format!("{}/{}", r.churn_joined, r.churn_departed),
            r.failed_ops.to_string(),
            format!("{}/{}", r.live_servers.len(), row.servers),
        ]);
    }
    println!("== chaos: audited fault scenarios (t=1, stable 2x2 clients) ==\n");
    println!("{table}");
    for row in &rows {
        if let Some(a) = &row.audit {
            println!("{}: {}", row.scenario, a);
        }
        if let Some((registers, audited, ok)) = row.key_audit {
            println!(
                "{} keys={}: {audited} ops audited across {registers} register-auditor(s), \
                 verdicts {}",
                row.scenario,
                row.keys.unwrap_or(0),
                if ok { "ok" } else { "VIOLATED" },
            );
        }
    }

    std::fs::write("BENCH_chaos.json", chaos_to_json(&rows)).expect("write BENCH_chaos.json");
    println!("wrote BENCH_chaos.json");

    let mut failed = false;
    for row in &rows {
        for fail in chaos_failures(row) {
            eprintln!("FAIL [{}]: {fail}", row.scenario);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("chaos gate passed: every fault healed, every server recovered, audit clean");
    std::process::exit(0);
}

/// Shards in every keyspace deployment: 16 over 11 servers gives each
/// server membership in several overlapping groups.
const KEYSPACE_SHARDS: usize = 16;

/// Group size for multi-key points: g = 5, t = 1 keeps per-shard majority
/// quorums at 4-of-5 while fanning each operation to less than half the
/// cluster.
const KEYSPACE_GROUP: usize = 5;

/// One measured keyspace sweep point.
struct KeyspaceRow {
    transport: &'static str,
    send_path: &'static str,
    protocol: Protocol,
    keys: usize,
    zipf: f64,
    writers: usize,
    readers: usize,
    ops: usize,
    ops_per_sec: f64,
    wr_p50_us: u64,
    wr_p99_us: u64,
    rd_p50_us: u64,
    rd_p99_us: u64,
    /// `(registers audited, ops audited, all verdicts ok)` under `--audit`.
    audit: Option<(usize, u64, bool)>,
}

/// Drives the deployed keyspace open-loop and collects the per-register
/// audit verdicts; generic over the transport.
fn drive_keyspace<F: EndpointFactory>(
    handle: KeyspaceHandle<F>,
    keys: usize,
    zipf: f64,
    duration: Duration,
) -> (ThroughputReport, Option<(usize, u64, bool)>) {
    let report = handle.run_open_loop(keys, zipf, duration, 7).expect("keyspace drive");
    let (_handled, reports) = handle.shutdown_audited();
    let audit = (!reports.is_empty()).then(|| {
        (
            reports.len(),
            reports.values().map(|a| a.stats.audited).sum(),
            reports.values().all(|a| a.verdict.is_ok()),
        )
    });
    (report, audit)
}

fn measure_keyspace_point(
    transport: &'static str,
    keys: usize,
    zipf: f64,
    writers: usize,
    readers: usize,
    duration: Duration,
    audit: Option<AuditConfig>,
) -> KeyspaceRow {
    // One key degenerates to the single-register service: the group is the
    // whole cluster and W2R1's fast-read bound t(R + 2) < S holds up to
    // R = 8 at S = 11 — these are the parity points against the main
    // sweep. Multi-key points shard into groups of 5, where that bound
    // fails at R ≥ 3, so reads adapt per snapshot (W2Ra).
    let (group, protocol) = if keys == 1 {
        (SERVERS, Protocol::W2R1)
    } else {
        (KEYSPACE_GROUP, Protocol::W2Ra)
    };
    let config = KeyspaceConfig::new(SERVERS, FAULTS, group, KEYSPACE_SHARDS, readers, writers)
        .expect("valid keyspace sweep config");
    let mut blueprint = Keyspace::new(config).protocol(protocol);
    if let Some(cfg) = audit {
        blueprint = blueprint.audit(cfg);
    }
    let (send_path, (mut report, audit)) = match transport {
        "in-memory" => (
            "channel",
            drive_keyspace(blueprint.in_memory().expect("in-memory keyspace"), keys, zipf, duration),
        ),
        // Default tuning — the shared readiness-based reader.
        "tcp" => (
            "shared",
            drive_keyspace(blueprint.tcp().expect("tcp keyspace"), keys, zipf, duration),
        ),
        other => unreachable!("unknown keyspace transport {other}"),
    };
    KeyspaceRow {
        transport,
        send_path,
        protocol,
        keys,
        zipf,
        writers,
        readers,
        ops: report.ops(),
        ops_per_sec: report.ops_per_sec(),
        wr_p50_us: report.writes.percentile(50.0).ticks(),
        wr_p99_us: report.writes.percentile(99.0).ticks(),
        rd_p50_us: report.reads.percentile(50.0).ticks(),
        rd_p99_us: report.reads.percentile(99.0).ticks(),
        audit,
    }
}

/// `BENCH_keyspace.json`: the sweep-line shape `bench_delta` parses, plus
/// `keys`/`zipf` columns on every row.
fn keyspace_to_json(duration: Duration, zipf: f64, rows: &[KeyspaceRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"experiment\": \"live_throughput_keyspace\",\n");
    let _ = writeln!(s, "  \"duration_ms\": {},", duration.as_millis());
    let _ = writeln!(s, "  \"servers\": {SERVERS},");
    let _ = writeln!(s, "  \"shards\": {KEYSPACE_SHARDS},");
    let _ = writeln!(s, "  \"group_size\": {KEYSPACE_GROUP},");
    let _ = writeln!(s, "  \"zipf\": {zipf:.2},");
    s.push_str("  \"sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"transport\": \"{}\", \"send_path\": \"{}\", \"protocol\": \"{}\", \
             \"writers\": {}, \"readers\": {}, \"keys\": {}, \"zipf\": {:.2}, \"ops\": {}, \
             \"ops_per_sec\": {:.1}, \"wr_p50_us\": {}, \"wr_p99_us\": {}, \"rd_p50_us\": {}, \
             \"rd_p99_us\": {}",
            row.transport,
            row.send_path,
            row.protocol.name(),
            row.writers,
            row.readers,
            row.keys,
            row.zipf,
            row.ops,
            row.ops_per_sec,
            row.wr_p50_us,
            row.wr_p99_us,
            row.rd_p50_us,
            row.rd_p99_us,
        );
        if let Some((registers, audited, ok)) = &row.audit {
            let _ = write!(
                s,
                ", \"registers_audited\": {registers}, \"ops_audited\": {audited}, \
                 \"audit_ok\": {ok}"
            );
        }
        s.push('}');
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `--keys` entry point: sweep the keyspace, print the table and the
/// sharding headline, write `BENCH_keyspace.json`, and exit non-zero on
/// any audit violation or floor breach.
fn run_keyspace_mode(
    key_counts: &[usize],
    zipf: f64,
    quick: bool,
    duration: Duration,
    audit: Option<AuditConfig>,
    floor: Option<f64>,
) -> ! {
    let points: &[(usize, usize)] =
        if quick { &[(4, 4)] } else { &[(1, 1), (2, 2), (4, 4), (8, 8)] };
    println!(
        "== T1k: open-loop keyspace throughput (S={SERVERS} t={FAULTS}, {KEYSPACE_SHARDS} \
         shards, g={KEYSPACE_GROUP} multi-key / g={SERVERS} single-key, zipf {zipf}, \
         {} ms/point) ==\n",
        duration.as_millis()
    );

    let mut rows: Vec<KeyspaceRow> = Vec::new();
    for &keys in key_counts {
        for &(w, r) in points {
            rows.push(measure_keyspace_point("in-memory", keys, zipf, w, r, duration, audit));
            rows.push(measure_keyspace_point("tcp", keys, zipf, w, r, duration, audit));
        }
    }

    let mut table = TextTable::new(vec![
        "transport", "send path", "protocol", "keys", "WxR", "ops", "ops/s", "wr p50µs", "wr p99",
        "rd p50µs", "rd p99",
    ]);
    for row in &rows {
        table.row(vec![
            row.transport.to_string(),
            row.send_path.to_string(),
            row.protocol.name().to_string(),
            row.keys.to_string(),
            format!("{}x{}", row.writers, row.readers),
            row.ops.to_string(),
            format!("{:.0}", row.ops_per_sec),
            row.wr_p50_us.to_string(),
            row.wr_p99_us.to_string(),
            row.rd_p50_us.to_string(),
            row.rd_p99_us.to_string(),
        ]);
    }
    println!("{table}");

    // Headlines: what sharding buys — the most contended in-memory
    // multi-key point against its single-key twin, and the best multi-key
    // in-memory point against the single-key most-contended figure (on a
    // core-starved box the contended points are scheduler-bound, so the
    // best point is where the smaller quorums actually show).
    let (max_w, max_r) = *points.last().expect("non-empty point list");
    let at = |keys: usize, w: usize, r: usize| {
        rows.iter()
            .find(|row| {
                row.transport == "in-memory" && row.keys == keys && row.writers == w && row.readers == r
            })
            .map(|row| row.ops_per_sec)
    };
    let single_contended = at(1, max_w, max_r);
    for &keys in key_counts.iter().filter(|&&k| k > 1) {
        if let (Some(multi), Some(single)) = (at(keys, max_w, max_r), single_contended) {
            println!(
                "sharding headline (in-memory {max_w}x{max_r}): {keys} keys {multi:.0} ops/s \
                 vs 1 key {single:.0} ops/s — {:.2}x aggregate",
                multi / single.max(1e-9),
            );
        }
        let best = points
            .iter()
            .filter_map(|&(w, r)| at(keys, w, r).map(|ops| (ops, w, r)))
            .max_by(|a, b| a.0.total_cmp(&b.0));
        if let Some((ops, w, r)) = best {
            match single_contended {
                Some(single) => println!(
                    "sharding best (in-memory): {keys} keys {ops:.0} ops/s at {w}x{r} — \
                     {:.2}x the 1-key {max_w}x{max_r} figure ({single:.0} ops/s)",
                    ops / single.max(1e-9),
                ),
                None => println!("sharding best (in-memory): {keys} keys {ops:.0} ops/s at {w}x{r}"),
            }
        }
    }

    if audit.is_some() {
        let registers: usize = rows.iter().filter_map(|r| r.audit.map(|(n, _, _)| n)).sum();
        let audited: u64 = rows.iter().filter_map(|r| r.audit.map(|(_, n, _)| n)).sum();
        println!(
            "audit: {audited} ops audited across {registers} register-auditor(s) over {} points",
            rows.len()
        );
    }

    std::fs::write("BENCH_keyspace.json", keyspace_to_json(duration, zipf, &rows))
        .expect("write BENCH_keyspace.json");
    println!("wrote BENCH_keyspace.json");

    let mut failed = false;
    for row in &rows {
        if let Some((_, _, ok)) = row.audit {
            if !ok {
                eprintln!(
                    "AUDIT VIOLATION: {} keys={} {}x{}",
                    row.transport, row.keys, row.writers, row.readers
                );
                failed = true;
            }
        }
        if let Some(floor) = floor {
            if row.ops_per_sec < floor {
                eprintln!(
                    "FAIL: {} keys={} {}x{} completed {:.0} ops/s (< floor {floor:.0})",
                    row.transport, row.keys, row.writers, row.readers, row.ops_per_sec,
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    if floor.is_some() {
        println!("keyspace floor assertion passed: every sweep point clears the floor");
    }
    std::process::exit(0);
}

/// The contended shared-reader W2R1-vs-W2R2 comparison — the paper-claim
/// headline (fast one-round reads should win under full contention).
struct ProtocolHeadline {
    writers: usize,
    readers: usize,
    w2r1_ops_per_sec: f64,
    w2r2_ops_per_sec: f64,
    ratio: f64,
}

/// Hand-rolled JSON (the workspace vendors no serde_json).
fn to_json(
    duration: Duration,
    rows: &[Row],
    headline: &[(Protocol, f64, f64, f64)],
    geomean: f64,
    shared_geomean: Option<f64>,
    protocol_headline: Option<&ProtocolHeadline>,
    audit: Option<&AuditOverhead>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"experiment\": \"live_throughput\",\n");
    let _ = writeln!(s, "  \"duration_ms\": {},", duration.as_millis());
    let _ = writeln!(s, "  \"servers\": {SERVERS},");
    let _ = writeln!(s, "  \"geomean_pipeline_over_legacy\": {geomean:.2},");
    if let Some(g) = shared_geomean {
        let _ = writeln!(s, "  \"geomean_shared_over_pipeline\": {g:.2},");
    }
    if let Some(p) = protocol_headline {
        let _ = writeln!(
            s,
            "  \"contended_shared_w2r1_over_w2r2\": {{\"writers\": {}, \"readers\": {}, \
             \"w2r1_ops_per_sec\": {:.1}, \"w2r2_ops_per_sec\": {:.1}, \"ratio\": {:.2}}},",
            p.writers, p.readers, p.w2r1_ops_per_sec, p.w2r2_ops_per_sec, p.ratio,
        );
    }
    if let Some(a) = audit {
        let _ = writeln!(
            s,
            "  \"audit\": {{\"sample_rate\": {:.2}, \"base_ops_per_sec\": {:.1}, \
             \"audited_ops_per_sec\": {:.1}, \"overhead_pct\": {:.1}, \"ops_audited\": {}, \
             \"truncated\": {}, \"window_high_water\": {}, \"violations\": {}}},",
            a.rate,
            a.base_ops_per_sec,
            a.audited_ops_per_sec,
            a.overhead_pct(),
            a.report.stats.audited,
            a.report.stats.truncated,
            a.report.stats.window_high_water,
            usize::from(!a.report.verdict.is_ok()),
        );
    }
    s.push_str("  \"contended_tcp\": [\n");
    for (i, (protocol, pipeline, legacy, speedup)) in headline.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"protocol\": \"{}\", \"pipeline_ops_per_sec\": {:.1}, \
             \"legacy_ops_per_sec\": {:.1}, \"speedup\": {:.2}}}",
            protocol.name(),
            pipeline,
            legacy,
            speedup,
        );
        s.push_str(if i + 1 < headline.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"transport\": \"{}\", \"send_path\": \"{}\", \"protocol\": \"{}\", \
             \"writers\": {}, \"readers\": {}, \"ops\": {}, \"ops_per_sec\": {:.1}, \
             \"wr_p50_us\": {}, \"wr_p99_us\": {}, \"rd_p50_us\": {}, \"rd_p99_us\": {}",
            row.transport,
            row.send_path,
            row.protocol.name(),
            row.writers,
            row.readers,
            row.ops,
            row.ops_per_sec,
            row.wr_p50_us,
            row.wr_p99_us,
            row.rd_p50_us,
            row.rd_p99_us,
        );
        if let Some(r) = &row.reader {
            let _ = write!(
                s,
                ", \"reader_wakes\": {}, \"reader_frames\": {}",
                r.wakes, r.frames,
            );
            if let Some(w) = row.wakes_per_frame() {
                let _ = write!(s, ", \"wakes_per_frame\": {w:.4}");
            }
        }
        if let Some(a) = &row.audit {
            let _ = write!(
                s,
                ", \"ops_audited\": {}, \"audit_window_hwm\": {}, \"audit_ok\": {}",
                a.stats.audited,
                a.stats.window_high_water,
                a.verdict.is_ok(),
            );
        }
        s.push('}');
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args = Args::parse();
    args.expect_known(
        "live_throughput",
        &["quick", "assert-floor", "legacy-send", "audit"],
        &[
            "duration-ms", "floor", "protocol", "transport", "send-path", "clients",
            "audit-sample", "faults", "keys", "zipf", "out",
        ],
    );
    let quick = args.flag("quick");
    // `--keys` parses up front: alone it selects the keyspace sweep, and
    // combined with `--faults` it adds keyspace chaos rows per scenario.
    let key_counts: Option<Vec<usize>> = args.get("keys").map(|list| {
        let counts: Vec<usize> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse()
                    .unwrap_or_else(|_| panic!("--keys expects a comma list of counts, got {s:?}"))
            })
            .collect();
        assert!(!counts.is_empty(), "--keys expects at least one count");
        assert!(counts.iter().all(|&k| k > 0), "--keys counts must be positive");
        counts
    });
    let zipf: f64 = args
        .get("zipf")
        .map_or(1.1, |s| s.parse().expect("--zipf expects a non-negative float"));
    assert!(zipf >= 0.0 && zipf.is_finite(), "--zipf expects a non-negative float");
    if let Some(kinds) = args.get("faults") {
        // Chaos mode replaces the sweep entirely. The auditor defaults to
        // sampling everything here: a fault window is exactly where a
        // stale read would hide, and the op volume is modest.
        let rate = args
            .get("audit-sample")
            .map_or(1.0, |s| s.parse().expect("--audit-sample expects a rate in (0, 1]"));
        let audit = args
            .flag("audit")
            .then(|| AuditConfig { sample_rate: rate, ..AuditConfig::default() });
        run_chaos_mode(kinds, key_counts.as_deref(), zipf, quick, audit);
    }
    if let Some(key_counts) = &key_counts {
        // Keyspace mode replaces the sweep entirely: a comma list of key
        // counts (e.g. `--keys 1,64`) lets one run emit the single-key
        // parity points and the sharded multi-key points side by side.
        let rate = args
            .get("audit-sample")
            .map_or(1.0, |s| s.parse().expect("--audit-sample expects a rate in (0, 1]"));
        let audit = args
            .flag("audit")
            .then(|| AuditConfig { sample_rate: rate, ..AuditConfig::default() });
        // Longer windows than the main sweep: a fresh keyspace point pays a
        // TCP connection storm (every client endpoint × every group member)
        // before steady state, and short windows measure only the storm.
        let duration =
            Duration::from_millis(args.get_u64("duration-ms", if quick { 500 } else { 3_000 }));
        let floor = args.flag("assert-floor").then(|| args.get_u64("floor", 50) as f64);
        run_keyspace_mode(key_counts, zipf, quick, duration, audit, floor);
    }
    let assert_floor = args.flag("assert-floor");
    let legacy_only = args.flag("legacy-send");
    let audit_sweep = args.flag("audit");
    let audit_rate = args
        .get("audit-sample")
        .map_or(0.1, |s| s.parse().expect("--audit-sample expects a rate in (0, 1]"));
    let sweep_audit =
        audit_sweep.then(|| AuditConfig { sample_rate: audit_rate, ..AuditConfig::default() });
    let duration =
        Duration::from_millis(args.get_u64("duration-ms", if quick { 120 } else { 250 }));
    let floor = args.get_u64("floor", 50) as f64;
    // Optional sweep filters for focused (re)measurement; the committed
    // artifact is always produced by the unfiltered sweep.
    let protocols: Vec<Protocol> = match args.get("protocol") {
        None => vec![Protocol::W2R1, Protocol::W2R2],
        Some(p) => vec![p.parse().expect("--protocol W2R1|W2R2")],
    };
    let transport_filter = args.get("transport").map(str::to_owned);
    if let Some(t) = transport_filter.as_deref() {
        assert!(
            matches!(t, "in-memory" | "tcp"),
            "--transport must be in-memory or tcp, got {t}"
        );
    }
    // `--send-path` narrows the sweep to one receive/send path — the CI
    // transport-matrix cells measure one (transport, path) pair each.
    let send_path_filter: Option<&'static str> = args.get("send-path").map(|p| match p {
        "channel" => "channel",
        "shared" => "shared",
        "pipeline" => "pipeline",
        "legacy" => "legacy",
        other => {
            eprintln!("--send-path must be channel|shared|pipeline|legacy, got {other}");
            std::process::exit(2);
        }
    });
    let out_path = args.get("out").map(str::to_owned);

    // `--clients a,b,..` overrides the W×R grid — focused re-measurement
    // of one contention level without sweeping the whole square.
    let client_override: Option<Vec<usize>> = args.get("clients").map(|list| {
        let counts: Vec<usize> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse()
                    .unwrap_or_else(|_| panic!("--clients expects a comma list of counts, got {s:?}"))
            })
            .collect();
        assert!(!counts.is_empty(), "--clients expects at least one count");
        assert!(counts.iter().all(|&c| c > 0), "--clients counts must be positive");
        counts
    });
    let client_counts: &[usize] = match &client_override {
        Some(counts) => counts,
        None if quick => &[1, 4],
        None => &[1, 2, 4, 8],
    };
    let max_clients = *client_counts.last().expect("non-empty sweep");
    let all_tcp_paths: &[&'static str] =
        if legacy_only { &["legacy"] } else { &["shared", "pipeline", "legacy"] };
    let tcp_paths: Vec<&'static str> = all_tcp_paths
        .iter()
        .copied()
        .filter(|p| send_path_filter.is_none_or(|f| f == *p))
        .collect();
    let run_in_memory = send_path_filter.is_none_or(|f| f == "channel");

    println!(
        "== T1: open-loop live throughput (S={SERVERS} t={FAULTS}, \
         W x R in {client_counts:?}^2, {} ms/point) ==\n",
        duration.as_millis()
    );

    let mut rows: Vec<Row> = Vec::new();
    for &protocol in &protocols {
        for &writers in client_counts {
            for &readers in client_counts {
                if transport_filter.as_deref() != Some("tcp") && run_in_memory {
                    rows.push(measure_point(
                        "in-memory", "channel", protocol, writers, readers, duration, sweep_audit,
                    ));
                }
                if transport_filter.as_deref() != Some("in-memory") {
                    for path in &tcp_paths {
                        rows.push(measure_point(
                            "tcp", path, protocol, writers, readers, duration, sweep_audit,
                        ));
                    }
                }
            }
        }
    }

    let mut table = TextTable::new(vec![
        "transport", "send path", "protocol", "WxR", "ops", "ops/s", "wr p50µs", "wr p99",
        "rd p50µs", "rd p99", "wk/frm",
    ]);
    for row in &rows {
        table.row(row.cells());
    }
    println!("{table}");

    if audit_sweep {
        let audited: u64 = rows.iter().filter_map(|r| r.audit.as_ref()).map(|a| a.stats.audited).sum();
        let hwm = rows
            .iter()
            .filter_map(|r| r.audit.as_ref())
            .map(|a| a.stats.window_high_water)
            .max()
            .unwrap_or(0);
        let violations: Vec<&Row> = rows
            .iter()
            .filter(|r| r.audit.as_ref().is_some_and(|a| !a.verdict.is_ok()))
            .collect();
        println!(
            "audit (sample rate {audit_rate}): {audited} ops audited across {} points, \
             max window high-water {hwm}, {} violation(s)",
            rows.len(),
            violations.len(),
        );
        for row in &violations {
            eprintln!(
                "AUDIT VIOLATION: {} {} {} {}x{}: {}",
                row.transport,
                row.send_path,
                row.protocol.name(),
                row.writers,
                row.readers,
                row.audit
                    .as_ref()
                    .and_then(|a| a.verdict.violation())
                    .expect("filtered on violating rows"),
            );
        }
        if !violations.is_empty() {
            std::process::exit(1);
        }
    }

    // Headline: the most contended TCP point per protocol, pipeline vs
    // legacy, plus the geometric-mean speedup over every matched TCP point
    // (a single point is noisy on a loaded box; the geomean is the stable
    // summary).
    let point = |protocol: Protocol, path: &str, w: usize, r: usize| {
        rows.iter()
            .find(|row| {
                row.transport == "tcp"
                    && row.send_path == path
                    && row.protocol == protocol
                    && row.writers == w
                    && row.readers == r
            })
            .map(|row| row.ops_per_sec)
    };
    let mut log_sum = 0.0f64;
    let mut matched = 0usize;
    for protocol in [Protocol::W2R1, Protocol::W2R2] {
        for &w in client_counts {
            for &r in client_counts {
                if let (Some(pipeline), Some(legacy)) = (
                    point(protocol, "pipeline", w, r),
                    point(protocol, "legacy", w, r),
                ) {
                    log_sum += (pipeline / legacy.max(1e-9)).ln();
                    matched += 1;
                }
            }
        }
    }
    let geomean = if matched > 0 { (log_sum / matched as f64).exp() } else { 1.0 };
    if matched > 0 {
        println!("geomean pipeline/legacy speedup over {matched} tcp sweep points: {geomean:.2}x");
    }
    let mut headline = Vec::new();
    for protocol in [Protocol::W2R1, Protocol::W2R2] {
        if let (Some(pipeline), Some(legacy)) = (
            point(protocol, "pipeline", max_clients, max_clients),
            point(protocol, "legacy", max_clients, max_clients),
        ) {
            let speedup = pipeline / legacy.max(1e-9);
            println!(
                "contended tcp ({}x{} clients, {}): pipeline {:.0} ops/s vs legacy {:.0} ops/s \
                 — {:.2}x",
                max_clients,
                max_clients,
                protocol.name(),
                pipeline,
                legacy,
                speedup,
            );
            headline.push((protocol, pipeline, legacy, speedup));
        }
    }

    // The shared reader's own before/after: geomean over every TCP point
    // measured on both receive paths, plus the deployment-wide
    // wake-per-frame ratio (frames decoded per poll wake is the syscall
    // economy the readiness reader exists for).
    let mut shared_log_sum = 0.0f64;
    let mut shared_matched = 0usize;
    for protocol in [Protocol::W2R1, Protocol::W2R2] {
        for &w in client_counts {
            for &r in client_counts {
                if let (Some(shared), Some(pipeline)) = (
                    point(protocol, "shared", w, r),
                    point(protocol, "pipeline", w, r),
                ) {
                    shared_log_sum += (shared / pipeline.max(1e-9)).ln();
                    shared_matched += 1;
                }
            }
        }
    }
    let shared_geomean =
        (shared_matched > 0).then(|| (shared_log_sum / shared_matched as f64).exp());
    if let Some(g) = shared_geomean {
        println!(
            "geomean shared-reader/per-connection speedup over {shared_matched} tcp sweep \
             points: {g:.2}x"
        );
    }
    let (total_wakes, total_frames) = rows
        .iter()
        .filter_map(|row| row.reader.as_ref())
        .fold((0u64, 0u64), |(w, f), r| (w + r.wakes, f + r.frames));
    if total_frames > 0 {
        println!(
            "shared reader: {total_frames} frames decoded in {total_wakes} poll wakes \
             ({:.3} wakes/frame)",
            total_wakes as f64 / total_frames as f64,
        );
    }

    // The paper-claim headline: W2R1's one-round fast reads vs W2R2's
    // two-round reads under full contention, both on the shared reader.
    let protocol_headline = match (
        point(Protocol::W2R1, "shared", max_clients, max_clients),
        point(Protocol::W2R2, "shared", max_clients, max_clients),
    ) {
        (Some(w2r1), Some(w2r2)) => {
            let ratio = w2r1 / w2r2.max(1e-9);
            println!(
                "contended shared tcp ({max_clients}x{max_clients} clients): W2R1 {w2r1:.0} \
                 ops/s vs W2R2 {w2r2:.0} ops/s — {ratio:.2}x"
            );
            Some(ProtocolHeadline {
                writers: max_clients,
                readers: max_clients,
                w2r1_ops_per_sec: w2r1,
                w2r2_ops_per_sec: w2r2,
                ratio,
            })
        }
        _ => None,
    };

    let unfiltered = protocols.len() == 2
        && transport_filter.is_none()
        && send_path_filter.is_none()
        && client_override.is_none();
    let overhead = if unfiltered {
        // The auditor's cost, measured where it hurts most: the most
        // contended in-memory point (TCP points are transport-bound and
        // would understate it), bare vs audited at the sample rate.
        let overhead =
            measure_audit_overhead(Protocol::W2R1, max_clients, duration, audit_rate);
        assert!(
            overhead.report.verdict.is_ok(),
            "audited overhead run found a violation: {}",
            overhead.report
        );
        println!(
            "audit overhead (in-memory {max_clients}x{max_clients}, sample rate {:.2}): \
             {:.0} ops/s bare vs {:.0} ops/s audited ({:+.1}%), {}",
            overhead.rate,
            overhead.base_ops_per_sec,
            overhead.audited_ops_per_sec,
            -overhead.overhead_pct(),
            overhead.report,
        );
        Some(overhead)
    } else {
        None
    };
    // `--out` writes the (possibly filtered) sweep wherever the caller
    // asks — the CI matrix cells each upload their own artifact. The
    // committed `BENCH_live_throughput.json` is only ever produced by the
    // unfiltered sweep.
    let default_artifact = unfiltered.then(|| "BENCH_live_throughput.json".to_owned());
    if let Some(path) = out_path.or(default_artifact) {
        let json = to_json(
            duration,
            &rows,
            &headline,
            geomean,
            shared_geomean,
            protocol_headline.as_ref(),
            overhead.as_ref(),
        );
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    } else {
        println!("filtered sweep: BENCH_live_throughput.json left untouched");
    }

    println!("\nShape: closed-loop latency hides what happens when clients pile up;");
    println!("sweeping the population shows it. The per-peer writer pipelines keep");
    println!("ops/sec scaling with clients — broadcasts fan out as parallel enqueues");
    println!("and frames coalesce into single writes — where the legacy path's");
    println!("endpoint-wide lock and two-syscalls-per-message flatten the curve.");

    if assert_floor {
        let mut failed = false;
        for row in rows.iter().filter(|r| r.send_path != "legacy") {
            if row.ops_per_sec < floor {
                eprintln!(
                    "FAIL: {} {} {} {}x{} completed {:.0} ops/s (< floor {floor:.0})",
                    row.transport,
                    row.send_path,
                    row.protocol.name(),
                    row.writers,
                    row.readers,
                    row.ops_per_sec,
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("throughput floor assertion passed: every sweep point clears {floor:.0} ops/s");
    }
}
