//! Experiment X4 — Byzantine resilience (the paper's §5 closing remark).
//!
//! Three parts:
//!
//! 1. **Behavior grid** — every reply-corrupting behavior against the
//!    crash-tolerant W2R2 (which expects only crashes) and against the
//!    masking-quorum clients of `mwr-byz`. Expected shape: the
//!    crash-tolerant protocol survives silence and *omission* (a liar that
//!    only hides is outvoted by `S − t − 1` honest replies) but is broken
//!    by *forgery*; the vouched clients survive everything within
//!    `S ≥ 4b + 1`.
//! 2. **Fast-read boundary map** — sweeping `(S, R)` at `b = 1` and
//!    checking the vouched one-round-trip read against the conjectured
//!    frontier `2b(R + 3) < S` (the natural generalization of the paper's
//!    `t(R + 2) < S`; deriving the exact Byzantine frontier is the future
//!    work §5 names).
//! 3. **The price of masking** — read/write latency of Byzantine-proof
//!    quorums vs the crash-only baseline.

use mwr_byz::{ByzBehavior, ByzConfig, ByzReadMode};
use mwr_check::{check_atomicity, History};
use mwr_core::{ClientEvent, OpResult, Protocol, ScheduledOp};
use mwr_register::{Backend, Deployment};
use mwr_sim::{SimTime, Simulation};
use mwr_types::{ClusterConfig, Value};
use mwr_workload::{run_closed_loop, TextTable, WorkloadSpec};

/// A concurrent schedule with `rounds` write/read pairs, cycling through
/// `readers` readers and two writers.
fn schedule(rounds: u64, spacing: u64, readers: u64) -> Vec<(SimTime, ScheduledOp)> {
    let mut ops = Vec::new();
    for i in 0..rounds {
        ops.push((
            SimTime::from_ticks(i * spacing),
            ScheduledOp::Write { writer: (i % 2) as u32, value: Value::new(i + 1) },
        ));
        ops.push((
            SimTime::from_ticks(i * spacing + spacing / 2),
            ScheduledOp::Read { reader: (i % readers) as u32 },
        ));
    }
    ops
}

/// Runs `seeds` schedules and counts atomicity violations and forged reads.
fn probe(
    run: impl Fn(u64) -> Vec<(SimTime, ClientEvent)>,
    seeds: std::ops::RangeInclusive<u64>,
) -> (usize, usize, usize) {
    let mut runs = 0;
    let mut violations = 0;
    let mut forged_reads = 0;
    for seed in seeds {
        let events = run(seed);
        runs += 1;
        let history = History::from_events(&events).expect("quiescent run");
        if !check_atomicity(&history).is_ok() {
            violations += 1;
        }
        forged_reads += events
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e,
                    ClientEvent::Completed { result: OpResult::Read(tv), .. }
                        if tv.value().get() > 1_000
                )
            })
            .count();
    }
    (runs, violations, forged_reads)
}

fn part1_behavior_grid() {
    println!("-- Part 1: behavior grid (S = 5, b = 1 = t, R = 2, W = 2, 20 seeds) --");
    let byz_config = ByzConfig::new(5, 1, 2, 2).expect("valid");
    let crash_config = ClusterConfig::new(5, 1, 2, 2).expect("valid");
    let sched = schedule(5, 40, 2);
    let mut table = TextTable::new(vec![
        "server behavior",
        "W2R2 crash-tolerant",
        "Byz W2R2 (vouched)",
        "Byz W2R1 (vouched fast)",
    ]);
    for behavior in ByzBehavior::ADVERSARIAL {
        let verdict = |(runs, violations, forged): (usize, usize, usize)| {
            if violations == 0 && forged == 0 {
                format!("atomic in {runs} runs")
            } else {
                format!("{violations}/{runs} violations, {forged} forged reads")
            }
        };
        // The crash-tolerant baseline meets the adversary: a standard W2R2
        // cluster whose server 0 is Byzantine instead of honest.
        let crash = probe(
            |seed| {
                // A hand-assembled hybrid (one Byzantine automaton inside
                // an honest W2R2 cluster) — deliberately not a supported
                // deployment, so it is built from automata directly.
                let mut sim: Simulation<_, _> = Simulation::new(seed);
                sim.add_process(
                    mwr_types::ProcessId::server(0),
                    mwr_byz::ByzRegisterServer::new(behavior),
                );
                for s in crash_config.server_ids().skip(1) {
                    sim.add_process(s.into(), mwr_core::RegisterServer::new());
                }
                for w in crash_config.writer_ids() {
                    sim.add_process(
                        w.into(),
                        mwr_core::RegisterClient::writer(
                            w,
                            crash_config,
                            Protocol::W2R2.write_mode(),
                        ),
                    );
                }
                for r in crash_config.reader_ids() {
                    sim.add_process(
                        r.into(),
                        mwr_core::RegisterClient::reader(
                            r,
                            crash_config,
                            Protocol::W2R2.read_mode(),
                        ),
                    );
                }
                for (at, op) in &sched {
                    op.schedule_into(&mut sim, *at).expect("schedule");
                }
                sim.run_until_quiescent().expect("quiescent");
                sim.drain_notifications()
            },
            1..=20,
        );
        let slow = probe(
            |seed| {
                Deployment::byz(byz_config, ByzReadMode::Slow, behavior)
                    .backend(Backend::Sim { seed })
                    .sim()
                    .expect("byz sim deployment")
                    .run_schedule(&sched)
                    .expect("run")
            },
            1..=20,
        );
        let fast = probe(
            |seed| {
                Deployment::byz(byz_config, ByzReadMode::Fast, behavior)
                    .backend(Backend::Sim { seed })
                    .sim()
                    .expect("byz sim deployment")
                    .run_schedule(&sched)
                    .expect("run")
            },
            1..=20,
        );
        table.row(vec![
            behavior.name().to_string(),
            verdict(crash),
            verdict(slow),
            verdict(fast),
        ]);
    }
    println!("{table}");
}

fn part2_fast_read_boundary() {
    println!("-- Part 2: vouched fast-read boundary map (b = 1, W = 2) --");
    println!("   conjecture: feasible iff 2b(R + 3) < S");
    println!("   adversarial probe: 4 behaviors x 15 seeds, jittered links, dense interleaving\n");
    let mut table = TextTable::new(vec!["S", "R", "conjecture", "measured"]);
    let behaviors = [
        ByzBehavior::Mute, // closest to the crash adversary of the paper's impossibility
        ByzBehavior::StaleReplier,
        ByzBehavior::Equivocator,
        ByzBehavior::TagInflater { boost: 100_000 },
    ];
    for s in [5usize, 7, 9, 11, 13, 15] {
        for r in [1usize, 2, 3, 4] {
            let Ok(config) = ByzConfig::new(s, 1, r, 2) else { continue };
            let sched = schedule(8, 12, r as u64);
            let mut violations = 0;
            let mut runs = 0;
            for behavior in behaviors {
                let (n, v, f) = probe(
                    |seed| {
                        let mut handle = Deployment::byz(config, ByzReadMode::Fast, behavior)
                            .backend(Backend::Sim { seed })
                            .sim()
                            .expect("byz sim deployment");
                        handle.sim_mut().network_mut().set_default_delay(
                            mwr_sim::DelayModel::Uniform {
                                lo: SimTime::from_ticks(1),
                                hi: SimTime::from_ticks(40),
                            },
                        );
                        handle.run_schedule(&sched).expect("run")
                    },
                    1..=15,
                );
                runs += n;
                violations += v + f;
            }
            let measured = if violations == 0 {
                format!("atomic in {runs} runs")
            } else {
                format!("{violations}/{runs} violations")
            };
            table.row(vec![
                s.to_string(),
                r.to_string(),
                config.fast_read_conjecture().to_string(),
                measured,
            ]);
        }
    }
    println!("{table}");
    println!("Reading the map: violations may only appear where the conjecture is");
    println!("false; 'atomic in N runs' above the frontier is evidence, not proof --");
    println!("deriving the exact Byzantine frontier is the paper's named future work.\n");
}

/// A surgical, hold-crafted execution (in the style of the paper's
/// impossibility constructions) exhibiting a concrete violation of the
/// vouched fast read below the conjectured frontier.
fn part2b_constructed_witness() {
    println!("-- Part 2b: constructed below-frontier witness (S = 5, b = 1, R = 2) --");
    let config = ByzConfig::new(5, 1, 2, 2).expect("valid");
    assert!(!config.fast_read_conjecture());
    let mut handle = Deployment::byz(config, ByzReadMode::Fast, ByzBehavior::StaleReplier)
        .backend(Backend::Sim { seed: 1 })
        .sim()
        .expect("byz sim deployment");
    let sim = handle.sim_mut();
    sim.network_mut().hold_between(mwr_types::ProcessId::reader(0), mwr_types::ProcessId::server(1));
    sim.network_mut().hold_between(mwr_types::ProcessId::reader(1), mwr_types::ProcessId::server(4));
    for srv in [1u32, 2] {
        sim.schedule_hold(
            SimTime::from_ticks(21),
            mwr_sim::LinkSelector::directed(mwr_types::ProcessId::writer(1), mwr_types::ProcessId::server(srv)),
        );
    }
    let events = handle
        .run_schedule(&[
            (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(1) }),
            (SimTime::from_ticks(20), ScheduledOp::Write { writer: 1, value: Value::new(2) }),
            (SimTime::from_ticks(30), ScheduledOp::Read { reader: 0 }),
            (SimTime::from_ticks(40), ScheduledOp::Read { reader: 1 }),
        ])
        .expect("run");
    let reads: Vec<u64> = events
        .iter()
        .filter_map(|(_, e)| match e {
            ClientEvent::Completed { result: OpResult::Read(tv), .. } => Some(tv.value().get()),
            _ => None,
        })
        .collect();
    let history = History::from_events_with_open_ops(&events).expect("history");
    let verdict = check_atomicity(&history);
    println!("   w0 writes 1 (complete); w1 writes 2 (in flight on two servers);");
    println!("   r0 reads {} (vouched by both holders), then r1 reads {} (one voucher: rejected)", reads[0], reads[1]);
    println!("   checker verdict: {}\n", if verdict.is_ok() { "atomic (!?)" } else { "VIOLATION — new/old inversion, as constructed" });
}


fn part3_masking_price() {
    println!("-- Part 3: the price of masking (S = 9, closed loop, honest servers) --");
    let mut table = TextTable::new(vec!["protocol", "quorum", "rd p50", "wr p50"]);
    let spec = WorkloadSpec {
        duration: SimTime::from_ticks(3_000),
        think_time: SimTime::from_ticks(40),
        seed: 5,
    };
    // Crash-tolerant baseline: t = 2 → quorum 7.
    let crash_config = ClusterConfig::new(9, 2, 2, 2).expect("valid");
    let cluster = Deployment::new(crash_config)
        .protocol(Protocol::W2R2)
        .sim_cluster()
        .expect("core sim");
    let mut report = run_closed_loop(&cluster, spec).expect("run");
    let (w, r) = report.summaries();
    table.row(vec![
        "W2R2 (crash, t=2)".to_string(),
        crash_config.quorum_size().to_string(),
        r.p50.ticks().to_string(),
        w.p50.ticks().to_string(),
    ]);
    // Byzantine: b = 2 → same quorum size, but vouching and safe maxima.
    let byz_config = ByzConfig::new(9, 2, 2, 2).expect("valid");
    for (label, mode) in [("Byz W2R2 (b=2)", ByzReadMode::Slow), ("Byz W2R1 (b=2)", ByzReadMode::Fast)] {
        // The generic driver gets the scheduling population from the
        // blueprint itself (SimCluster::client_config) — no hand-derived
        // scheduling config anymore.
        let cluster = Deployment::byz(byz_config, mode, ByzBehavior::Honest)
            .sim_cluster()
            .expect("byz sim deployment");
        let mut report = run_closed_loop(&cluster, spec).expect("run");
        let (w, r) = report.summaries();
        table.row(vec![
            label.to_string(),
            byz_config.quorum_size().to_string(),
            r.p50.ticks().to_string(),
            w.p50.ticks().to_string(),
        ]);
    }
    println!("{table}");
    println!("With threshold quorums the masking price is paid in *message count*");
    println!("and vouching logic, not round-trips: latency matches the crash case,");
    println!("and the vouched fast read keeps its one-round-trip advantage.");
}

fn main() {
    println!("== X4: Byzantine resilience (paper §5 closing remark) ==\n");
    part1_behavior_grid();
    part2_fast_read_boundary();
    part2b_constructed_witness();
    part3_masking_price();
}
