//! Experiment X5 — adaptive reads: semifast behaviour in the multi-writer
//! world (paper §6).
//!
//! Georgiou et al.'s *semifast* implementations make most reads fast and
//! only a bounded number slow; the paper notes that semifast MWMR
//! implementations are impossible. `Protocol::W2Ra` realizes the adaptive
//! compromise that *is* possible: reads take one round-trip whenever the
//! observed maximum is safely admissible and pay a write-back round
//! otherwise — with no bound on how often (that unboundedness is exactly
//! what the impossibility predicts).
//!
//! The experiment measures, against W2R2 and W2R1:
//!
//! 1. the fast-read fraction as write contention rises (the impossibility
//!    made quantitative), and
//! 2. the fast-read fraction across the feasibility boundary `R = S/t − 2`,
//!    where Algorithm 1 stops being an option and the adaptive fallback is
//!    the only sound way to keep sub-2-round-trip reads;
//! 3. read latency, showing adaptive reads interpolate between W2R1 (all
//!    fast) and W2R2 (all slow) while staying atomic everywhere.

use mwr_check::{check_atomicity, History};
use mwr_core::{ClientEvent, OpKind, Protocol};
use mwr_register::Deployment;
use mwr_sim::{DelayModel, SimTime};
use mwr_types::ClusterConfig;
use mwr_workload::{run_closed_loop_customized, TextTable, WorkloadSpec};

struct Outcome {
    fast_reads: usize,
    slow_reads: usize,
    read_p50: SimTime,
    atomic: bool,
}

fn measure(config: ClusterConfig, protocol: Protocol, think: u64, seeds: &[u64]) -> Outcome {
    let delay = DelayModel::Uniform { lo: SimTime::from_ticks(2), hi: SimTime::from_ticks(25) };
    let mut fast = 0usize;
    let mut slow = 0usize;
    let mut p50 = SimTime::ZERO;
    let mut atomic = true;
    for &seed in seeds {
        let cluster = Deployment::new(config).protocol(protocol).sim_cluster().expect("core sim");
        let spec = WorkloadSpec {
            duration: SimTime::from_ticks(1_500),
            think_time: SimTime::from_ticks(think),
            seed,
        };
        let mut report = run_closed_loop_customized(&cluster, spec, |sim| {
            sim.network_mut().set_default_delay(delay);
        })
        .expect("closed loop");
        let mut read_ops = std::collections::BTreeSet::new();
        let mut slow_ops = std::collections::BTreeSet::new();
        for (_, e) in &report.events {
            match e {
                ClientEvent::Invoked { op, kind: OpKind::Read } => {
                    read_ops.insert(*op);
                }
                ClientEvent::SecondRound { op } if read_ops.contains(op) => {
                    slow_ops.insert(*op);
                }
                _ => {}
            }
        }
        fast += read_ops.len() - slow_ops.len();
        slow += slow_ops.len();
        let (_, r) = report.summaries();
        p50 = p50.max(r.p50);
        let history = History::from_events(&report.events).expect("complete");
        atomic &= check_atomicity(&history).is_ok();
    }
    Outcome { fast_reads: fast, slow_reads: slow, read_p50: p50, atomic }
}

fn fast_pct(o: &Outcome) -> f64 {
    let total = o.fast_reads + o.slow_reads;
    if total == 0 {
        100.0
    } else {
        100.0 * o.fast_reads as f64 / total as f64
    }
}

fn main() {
    let seeds: Vec<u64> = (1..=4).collect();
    println!("== X5: adaptive reads — semifast behaviour in the MWMR world (paper §6) ==\n");

    println!("-- Part 1: fast-read fraction vs contention (S = 5, t = 1, R = 2, W = 2) --");
    let config = ClusterConfig::new(5, 1, 2, 2).expect("valid");
    let mut table =
        TextTable::new(vec!["contention", "protocol", "fast%", "rd p50", "atomic"]);
    for (label, think) in [("light", 300u64), ("medium", 60), ("heavy", 10)] {
        for protocol in [Protocol::W2R2, Protocol::W2R1, Protocol::W2Ra] {
            let o = measure(config, protocol, think, &seeds);
            let fastpct = match protocol {
                Protocol::W2R2 => "0.0 (by design)".to_string(),
                Protocol::W2R1 => "100.0 (by design)".to_string(),
                _ => format!("{:.1}", fast_pct(&o)),
            };
            table.row(vec![
                label.to_string(),
                protocol.name().to_string(),
                fastpct,
                o.read_p50.ticks().to_string(),
                o.atomic.to_string(),
            ]);
        }
    }
    println!("{table}");

    println!("-- Part 2: across the feasibility boundary (S = 5, t = 1, boundary R = 3) --");
    println!("   W2R1 is only sound below the boundary; W2Ra is sound everywhere.\n");
    let mut table = TextTable::new(vec!["R", "feasible", "W2Ra fast%", "W2Ra rd p50", "atomic"]);
    for r in [1usize, 2, 3, 4, 5] {
        let Ok(config) = ClusterConfig::new(5, 1, r, 2) else { continue };
        let o = measure(config, Protocol::W2Ra, 40, &seeds);
        table.row(vec![
            r.to_string(),
            config.fast_read_feasible().to_string(),
            format!("{:.1}", fast_pct(&o)),
            o.read_p50.ticks().to_string(),
            o.atomic.to_string(),
        ]);
    }
    println!("{table}");
    println!("Shape: the fast fraction is governed by write contention (reads seeing a");
    println!("settled maximum go fast); the safe degree cap min(R + 1, (S − t − 1)/t)");
    println!("stops growing at the boundary, so unlike Algorithm 1 nothing breaks past");
    println!("it — atomicity holds in every cell. The fallback buys that generality");
    println!("with second round-trips, unboundedly many under contention, exactly as");
    println!("the semifast MWMR impossibility (paper §6) requires.");
}
