//! Experiment X2 — the latency story motivating the paper (§1): one
//! round-trip vs two, swept over cluster size and a geo-replication delay
//! matrix. W2R1's fast read halves read latency relative to W2R2 at equal
//! consistency, which is exactly the value of the paper's algorithm.

use mwr_core::{Protocol, SimCluster};
use mwr_register::{AnySimCluster, Deployment};
use mwr_sim::{DelayModel, GeoMatrix, SimTime};
use mwr_types::{ClusterConfig, ProcessId};
use mwr_workload::{TextTable, WorkloadSpec};

fn spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        duration: SimTime::from_ticks(20_000),
        think_time: SimTime::from_ticks(40),
        seed,
    }
}

fn main() {
    println!("== Latency sweeps: W2R1 vs W2R2 ==\n");

    println!("-- sweep over cluster size S (t = 1, uniform 50–150 tick links) --");
    let mut table = TextTable::new(vec![
        "S", "W2R2 read p50", "W2R1 read p50", "speedup", "write p50 (both)",
    ]);
    for s in [3usize, 5, 7, 9] {
        let config = ClusterConfig::new(s, 1, 2, 2).unwrap();
        let mut p50 = Vec::new();
        let mut wp50 = SimTime::ZERO;
        for protocol in [Protocol::W2R2, Protocol::W2R1] {
            let cluster =
                Deployment::new(config).protocol(protocol).sim_cluster().expect("core sim");
            let mut sim_spec = spec(9);
            sim_spec.seed = 9;
            let mut report = run_with_delays(&cluster, sim_spec);
            let (w, r) = report.summaries();
            p50.push(r.p50);
            wp50 = w.p50;
        }
        table.row(vec![
            s.to_string(),
            p50[0].to_string(),
            p50[1].to_string(),
            format!("{:.2}x", p50[0].ticks() as f64 / p50[1].ticks().max(1) as f64),
            wp50.to_string(),
        ]);
    }
    println!("{table}");

    println!("-- geo-replication: 3 regions, 5 servers, client in region 0 --");
    let mut table = TextTable::new(vec!["protocol", "read p50", "read p99", "write p50"]);
    for protocol in [Protocol::W2R2, Protocol::W2R1] {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster =
            Deployment::new(config).protocol(protocol).sim_cluster().expect("core sim");
        let mut report = run_geo(&cluster, spec(21));
        let (w, r) = report.summaries();
        table.row(vec![
            protocol.name().to_string(),
            r.p50.to_string(),
            r.p99.to_string(),
            w.p50.to_string(),
        ]);
    }
    println!("{table}");
    println!("Expected shape: read p50 halves under W2R1 (one round-trip), write");
    println!("latency unchanged (both protocols use the two-round write).");
}

fn run_with_delays(cluster: &AnySimCluster, spec: WorkloadSpec) -> mwr_workload::WorkloadReport {
    // run_closed_loop builds its own simulation; model uniform delays by
    // wrapping through the cluster's default path with a patched network.
    run_closed_loop_with(cluster, spec, |sim| {
        sim.network_mut().set_default_delay(DelayModel::Uniform {
            lo: SimTime::from_ticks(50),
            hi: SimTime::from_ticks(150),
        });
    })
}

fn run_geo(cluster: &AnySimCluster, spec: WorkloadSpec) -> mwr_workload::WorkloadReport {
    run_closed_loop_with(cluster, spec, |sim| {
        let mut geo = GeoMatrix::new(vec![
            vec![SimTime::from_ticks(2), SimTime::from_ticks(40), SimTime::from_ticks(120)],
            vec![SimTime::from_ticks(40), SimTime::from_ticks(2), SimTime::from_ticks(80)],
            vec![SimTime::from_ticks(120), SimTime::from_ticks(80), SimTime::from_ticks(2)],
        ]);
        let config = cluster.client_config();
        let mut processes = Vec::new();
        for (i, s) in config.server_ids().enumerate() {
            geo.place(ProcessId::Server(s), i % 3);
            processes.push(ProcessId::Server(s));
        }
        for r in config.reader_ids() {
            geo.place(r.into(), 0);
            processes.push(r.into());
        }
        for w in config.writer_ids() {
            geo.place(w.into(), 0);
            processes.push(w.into());
        }
        sim.network_mut().apply_geo_matrix(&geo, &processes, SimTime::from_ticks(5));
    })
}

/// `run_closed_loop` with a network-customization hook. Mirrors
/// `mwr_workload::run_closed_loop` but lets the experiment patch delays.
fn run_closed_loop_with(
    cluster: &AnySimCluster,
    spec: WorkloadSpec,
    customize: impl FnOnce(&mut mwr_sim::Simulation<mwr_core::Msg, mwr_core::ClientEvent>),
) -> mwr_workload::WorkloadReport {
    mwr_workload::run_closed_loop_customized(cluster, spec, customize)
        .expect("workload run")
}
