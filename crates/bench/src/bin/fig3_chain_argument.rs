//! Experiment F3 — regenerates **Fig 3** (and Figs 4–7): the three-phase
//! chain argument behind Theorem 1, verified link by link, plus concrete
//! refutations of example fast-write strategies.

use mwr_chains::{
    refute_strategy, verify_w1r2_impossibility, verify_w1rk_impossibility, AlwaysOne,
    FirstServerRules, MajorityLastWrite, W1R2Strategy,
};
use mwr_workload::TextTable;

fn main() {
    println!("== Fig 3: chain argument for the W1R2 impossibility (Theorem 1) ==\n");

    let mut table = TextTable::new(vec!["S", "cases (i1 × x)", "links verified", "verdict"]);
    for servers in 3..=8 {
        let cert = verify_w1r2_impossibility(servers).expect("certificate");
        table.row(vec![
            servers.to_string(),
            cert.cases.len().to_string(),
            cert.total_links().to_string(),
            "all cases contradict".into(),
        ]);
    }
    println!("{table}");

    let cert = verify_w1r2_impossibility(3).expect("certificate");
    println!("Certificate detail for S = 3:\n{cert}");

    println!("Lifting to W1Rk (paper §3: rounds 2‥k combined as one):\n");
    let mut table = TextTable::new(vec!["S", "k", "cases", "lifted links", "verdict"]);
    for servers in [3usize, 5] {
        for rounds in 2..=5u8 {
            let cert = verify_w1rk_impossibility(servers, rounds).expect("lifted certificate");
            table.row(vec![
                servers.to_string(),
                rounds.to_string(),
                cert.cases.len().to_string(),
                cert.total_links().to_string(),
                "all cases contradict".into(),
            ]);
        }
    }
    println!("{table}");

    println!("Concrete strategies walked through the chains:\n");
    let strategies: Vec<Box<dyn W1R2Strategy>> = vec![
        Box::new(MajorityLastWrite),
        Box::new(FirstServerRules),
        Box::new(AlwaysOne),
    ];
    for strategy in &strategies {
        let refutation = refute_strategy(4, strategy.as_ref());
        println!("{refutation}");
    }
}
