//! Experiment F8 — regenerates **Fig 8**: the sieve construction that
//! eliminates servers blindly affected by a read's first round-trip and
//! shows the chain argument survives on the remainder.

use std::collections::BTreeSet;

use mwr_chains::sieve::sieve_chain;
use mwr_workload::TextTable;

fn main() {
    println!("== Fig 8: eliminating servers affected by R2(1) ==\n");

    // The paper's picture: Σ2 = s1..sx unaffected, Σ1 = s_{x+1}..sS flipped.
    let servers = 6;
    let mut table =
        TextTable::new(vec!["|Σ1|", "Σ2 survivors", "chain steps", "chains apply?"]);
    for affected in 0..servers {
        let sigma1: BTreeSet<usize> = (servers - affected..servers).collect();
        let report = sieve_chain(servers, &sigma1);
        table.row(vec![
            sigma1.len().to_string(),
            report.sigma2.len().to_string(),
            (report.chain.len() - 1).to_string(),
            if report.viable {
                format!(
                    "yes — certificate on S' = {} verifies",
                    report.surviving_certificate().map(|c| c.servers).unwrap()
                )
            } else {
                "Σ2 < 3: correctness of Σ2 alone already contradicted".into()
            },
        ]);
    }
    println!("{table}");

    let report = sieve_chain(servers, &BTreeSet::from([4, 5]));
    println!("Sieved chain detail (S = 6, Σ1 = {{s5, s6}}):\n{report}");
}
