//! Experiment L1 — wall-clock operation latency *and payload growth* on the
//! live runtime.
//!
//! The simulator binaries measure cost in round-trips (the paper's
//! currency); this one measures microseconds and wire bytes on real
//! threads, over both transports: in-memory channels and loopback TCP.
//!
//! Two sections:
//!
//! 1. **Latency table** — for each protocol in the design space, concurrent
//!    writer/reader threads against a live cluster; per-operation latency
//!    percentiles plus average fast-read payload bytes. W2R1 appears twice:
//!    on the paper's full-info wire and on the bounded-state delta wire.
//! 2. **Payload growth** — a single writer/reader pair alternating write
//!    and read for many operations; per-read payload bytes and latency in
//!    the first and last windows. Full-info payloads grow linearly with
//!    history; the delta wire with acknowledged-floor GC stays flat, which
//!    is what lets W2R1's one-round-trip advantage survive long runs.
//!
//! With `--audit` every latency-table deployment also carries the
//! streaming linearizability auditor at sample rate 1.0 (closed-loop
//! traffic is cheap to audit in full); the run fails on any violation and
//! the per-row audit counters are mirrored into the JSON.
//!
//! Emits `BENCH_live_latency.json`. With `--assert-bounded`, exits non-zero
//! if the delta wire's bytes-per-fast-read grew materially across the run —
//! the CI regression gate for the bounded-state fast path.

use std::fmt::Write as _;
use std::thread;
use std::time::{Duration, Instant};

use mwr_bench::args::Args;
use mwr_core::{FastWire, Protocol};
use mwr_register::{AuditConfig, AuditReport, Backend, Deployment, LiveHandle};
use mwr_runtime::EndpointFactory;
use mwr_types::{ClusterConfig, Value};
use mwr_workload::TextTable;

const OPS_PER_CLIENT: usize = 200;
const GROWTH_OPS: usize = 600;
const WINDOW: usize = 100;

/// Latency percentiles in microseconds over a set of samples.
fn percentiles(mut samples: Vec<Duration>) -> (u128, u128, u128) {
    samples.sort_unstable();
    let pick = |q: f64| -> u128 {
        if samples.is_empty() {
            return 0;
        }
        let idx = ((samples.len() - 1) as f64 * q).round() as usize;
        samples[idx].as_micros()
    };
    (pick(0.50), pick(0.95), pick(0.99))
}

struct Measured {
    write: Vec<Duration>,
    read: Vec<Duration>,
    read_bytes: Vec<u64>,
    write_attempts: usize,
    read_attempts: usize,
}

/// Runs `writers`+`readers` concurrent client threads; returns latencies of
/// the *successful* operations plus attempt counts, so a partially failing
/// transport cannot masquerade as a fast one. Readers also report the wire
/// bytes each successful read moved (0 for slow reads).
fn drive<W, R>(writers: Vec<W>, readers: Vec<R>) -> Measured
where
    W: FnMut(Value) -> bool + Send + 'static,
    R: FnMut() -> Option<u64> + Send + 'static,
{
    enum Outcome {
        Writes(Vec<Duration>),
        Reads(Vec<(Duration, u64)>),
    }
    let mut handles = Vec::new();
    for (w, mut do_write) in writers.into_iter().enumerate() {
        handles.push(thread::spawn(move || {
            let mut lat = Vec::with_capacity(OPS_PER_CLIENT);
            for i in 0..OPS_PER_CLIENT {
                let value = Value::new((w * OPS_PER_CLIENT + i + 1) as u64);
                let t0 = Instant::now();
                if do_write(value) {
                    lat.push(t0.elapsed());
                }
            }
            Outcome::Writes(lat)
        }));
    }
    for mut do_read in readers {
        handles.push(thread::spawn(move || {
            let mut lat = Vec::with_capacity(OPS_PER_CLIENT);
            for _ in 0..OPS_PER_CLIENT {
                let t0 = Instant::now();
                if let Some(bytes) = do_read() {
                    lat.push((t0.elapsed(), bytes));
                }
            }
            Outcome::Reads(lat)
        }));
    }
    let mut measured = Measured {
        write: Vec::new(),
        read: Vec::new(),
        read_bytes: Vec::new(),
        write_attempts: 0,
        read_attempts: 0,
    };
    for h in handles {
        match h.join().expect("client thread") {
            Outcome::Writes(lat) => {
                measured.write_attempts += OPS_PER_CLIENT;
                measured.write.extend(lat);
            }
            Outcome::Reads(lat) => {
                measured.read_attempts += OPS_PER_CLIENT;
                measured.read.extend(lat.iter().map(|(d, _)| *d));
                measured.read_bytes.extend(lat.iter().map(|(_, b)| *b));
            }
        }
    }
    measured
}

const COLUMNS: [&str; 9] = [
    "protocol", "ok", "wr p50µs", "wr p95", "wr p99", "rd p50µs", "rd p95", "rd p99", "rd B/op",
];

/// One latency-table row, shared by both transports and mirrored into the
/// JSON report.
struct Row {
    label: String,
    ok: String,
    wr: (u128, u128, u128),
    rd: (u128, u128, u128),
    rd_bytes_avg: u64,
    audit: Option<AuditReport>,
}

impl Row {
    fn cells(&self) -> Vec<String> {
        vec![
            self.label.clone(),
            self.ok.clone(),
            self.wr.0.to_string(),
            self.wr.1.to_string(),
            self.wr.2.to_string(),
            self.rd.0.to_string(),
            self.rd.1.to_string(),
            self.rd.2.to_string(),
            self.rd_bytes_avg.to_string(),
        ]
    }
}

/// Drives one protocol's clients and computes the shared row.
fn measure_row<W, R>(label: &str, writers: Vec<W>, readers: Vec<R>) -> Row
where
    W: FnMut(Value) -> bool + Send + 'static,
    R: FnMut() -> Option<u64> + Send + 'static,
{
    let m = drive(writers, readers);
    let ok = m.write.len() + m.read.len();
    let attempts = m.write_attempts + m.read_attempts;
    let rd_bytes_avg = if m.read_bytes.is_empty() {
        0
    } else {
        m.read_bytes.iter().sum::<u64>() / m.read_bytes.len() as u64
    };
    Row {
        label: label.to_string(),
        ok: format!("{ok}/{attempts}"),
        wr: percentiles(m.write),
        rd: percentiles(m.read),
        rd_bytes_avg,
        audit: None,
    }
}

fn protocols(config: &ClusterConfig) -> Vec<Protocol> {
    Protocol::ALL
        .into_iter()
        .filter(|p| !p.is_single_writer() || config.writers() == 1)
        // The naive fast-write protocols are unsafe by design (Theorem 1);
        // latency comparisons against them would flatter the wrong thing.
        .filter(|p| p.expected_atomic(config))
        .collect()
}

/// Rows to measure per transport: every endorsed protocol on its default
/// wire, plus W2R1 pinned to full-info for the before/after comparison.
fn row_plan(config: &ClusterConfig) -> Vec<(Protocol, FastWire, String)> {
    let mut plan = Vec::new();
    for protocol in protocols(config) {
        let label = if protocol == Protocol::W2R1 {
            format!("{} delta+runs", protocol.name())
        } else {
            protocol.name().to_string()
        };
        plan.push((protocol, FastWire::default(), label));
        if protocol == Protocol::W2R1 {
            plan.push((protocol, FastWire::FullInfo, format!("{} full-info", protocol.name())));
        }
    }
    plan
}

/// One window of the growth experiment.
#[derive(Debug, Clone, Copy)]
struct GrowthWindow {
    lat_p50_us: u128,
    bytes_avg: u64,
}

/// One growth-experiment run: `GROWTH_OPS` alternating write/read pairs.
#[derive(Debug)]
struct Growth {
    transport: &'static str,
    wire: &'static str,
    first: GrowthWindow,
    last: GrowthWindow,
}

impl Growth {
    fn bytes_ratio(&self) -> f64 {
        self.last.bytes_avg as f64 / self.first.bytes_avg.max(1) as f64
    }

    fn latency_ratio(&self) -> f64 {
        self.last.lat_p50_us as f64 / self.first.lat_p50_us.max(1) as f64
    }
}

fn window(samples: &[(Duration, u64)]) -> GrowthWindow {
    let (p50, _, _) = percentiles(samples.iter().map(|(d, _)| *d).collect());
    let bytes_avg = samples.iter().map(|(_, b)| *b).sum::<u64>() / samples.len().max(1) as u64;
    GrowthWindow { lat_p50_us: p50, bytes_avg }
}

/// Alternates write/read on a dedicated S=5, t=1, R=1, W=1 cluster so the
/// GC population is exactly the two driving clients and every operation
/// advances a floor.
fn growth_run(
    transport: &'static str,
    wire: FastWire,
    mut write: impl FnMut(Value) -> bool,
    mut read: impl FnMut() -> Option<u64>,
) -> Growth {
    let mut samples: Vec<(Duration, u64)> = Vec::with_capacity(GROWTH_OPS);
    for i in 0..GROWTH_OPS {
        assert!(write(Value::new(i as u64 + 1)), "growth write {i} failed");
        let t0 = Instant::now();
        let bytes = read().expect("growth read failed");
        samples.push((t0.elapsed(), bytes));
    }
    Growth {
        transport,
        wire: match wire {
            FastWire::FullInfo => "full-info",
            FastWire::Delta => "delta+gc",
            FastWire::Runs => "delta+runs",
        },
        first: window(&samples[..WINDOW]),
        last: window(&samples[GROWTH_OPS - WINDOW..]),
    }
}

/// Runs one growth experiment on an already-deployed live handle; works
/// identically for both transports because the handle is generic.
fn growth_on<F: EndpointFactory>(
    handle: LiveHandle<F>,
    transport: &'static str,
    wire: FastWire,
) -> Growth {
    let mut w = handle.writer(0).expect("writer endpoint");
    let mut r = handle.reader(0).expect("reader endpoint").with_measure_payload(true);
    let growth = growth_run(
        transport,
        wire,
        move |v| w.write(v).is_ok(),
        move || r.read().ok().map(|_| r.last_read_payload_bytes()),
    );
    handle.shutdown();
    growth
}

fn growth_experiments() -> Vec<Growth> {
    let config = ClusterConfig::new(5, 1, 1, 1).expect("valid growth config");
    let mut out = Vec::new();
    for wire in [FastWire::FullInfo, FastWire::Delta, FastWire::Runs] {
        let deployment = Deployment::new(config).protocol(Protocol::W2R1).fast_wire(wire);
        out.push(growth_on(
            deployment.backend(Backend::InMemory).in_memory().expect("in-memory cluster"),
            "in-memory",
            wire,
        ));
        out.push(growth_on(
            deployment.backend(Backend::Tcp).tcp().expect("tcp cluster"),
            "tcp",
            wire,
        ));
    }
    out
}

/// Hand-rolled JSON (the workspace vendors no serde_json).
fn to_json(table: &[(&str, Vec<Row>)], growth: &[Growth]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"experiment\": \"live_latency\",\n");
    let _ = writeln!(s, "  \"ops_per_client\": {OPS_PER_CLIENT},");
    let _ = writeln!(s, "  \"growth_ops\": {GROWTH_OPS},");
    s.push_str("  \"growth\": [\n");
    for (i, g) in growth.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"transport\": \"{}\", \"wire\": \"{}\", \"first_p50_us\": {}, \"last_p50_us\": {}, \"first_bytes_avg\": {}, \"last_bytes_avg\": {}, \"bytes_ratio\": {:.2}, \"latency_ratio\": {:.2}}}",
            g.transport,
            g.wire,
            g.first.lat_p50_us,
            g.last.lat_p50_us,
            g.first.bytes_avg,
            g.last.bytes_avg,
            g.bytes_ratio(),
            g.latency_ratio(),
        );
        s.push_str(if i + 1 < growth.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"latency\": [\n");
    let total: usize = table.iter().map(|(_, rows)| rows.len()).sum();
    let mut emitted = 0;
    for (transport, rows) in table {
        for row in rows {
            emitted += 1;
            let _ = write!(
                s,
                "    {{\"transport\": \"{}\", \"protocol\": \"{}\", \"ok\": \"{}\", \"wr_p50_us\": {}, \"wr_p95_us\": {}, \"wr_p99_us\": {}, \"rd_p50_us\": {}, \"rd_p95_us\": {}, \"rd_p99_us\": {}, \"rd_bytes_avg\": {}",
                transport,
                row.label,
                row.ok,
                row.wr.0,
                row.wr.1,
                row.wr.2,
                row.rd.0,
                row.rd.1,
                row.rd.2,
                row.rd_bytes_avg,
            );
            if let Some(audit) = &row.audit {
                let _ = write!(
                    s,
                    ", \"ops_audited\": {}, \"audit_window_hwm\": {}, \"audit_ok\": {}",
                    audit.stats.audited,
                    audit.stats.window_high_water,
                    audit.verdict.is_ok(),
                );
            }
            s.push('}');
            s.push_str(if emitted < total { ",\n" } else { "\n" });
        }
    }
    s.push_str("  ]\n}\n");
    s
}

/// Measures one latency-table row on an already-deployed live handle;
/// generic over the transport.
fn row_on<F: EndpointFactory>(handle: LiveHandle<F>, label: &str) -> Row {
    let config = handle.config();
    let writers = (0..config.writers() as u32)
        .map(|w| {
            let mut client = handle.writer(w).expect("writer endpoint");
            move |v: Value| client.write(v).is_ok()
        })
        .collect();
    let readers = (0..config.readers() as u32)
        .map(|r| {
            let mut client = handle.reader(r).expect("reader endpoint").with_measure_payload(true);
            move || client.read().ok().map(|_| client.last_read_payload_bytes())
        })
        .collect();
    let mut row = measure_row(label, writers, readers);
    let (_handled, audit) = handle.shutdown_audited();
    row.audit = audit;
    row
}

fn main() {
    let args = Args::parse();
    args.expect_known("live_latency", &["assert-bounded", "audit"], &[]);
    let assert_bounded = args.flag("assert-bounded");
    let audit = args.flag("audit");
    let config = ClusterConfig::new(5, 1, 2, 2).expect("valid config");
    println!("== L1: live wall-clock latency (S=5 t=1 R=2 W=2, {OPS_PER_CLIENT} ops/client) ==\n");

    let mut table_json: Vec<(&str, Vec<Row>)> = Vec::new();
    for (transport, backend) in [("in-memory", Backend::InMemory), ("tcp", Backend::Tcp)] {
        println!("-- transport: {transport} --");
        let mut table = TextTable::new(COLUMNS.to_vec());
        let mut rows = Vec::new();
        for (protocol, wire, label) in row_plan(&config) {
            let mut deployment =
                Deployment::new(config).protocol(protocol).fast_wire(wire).backend(backend);
            if audit {
                deployment = deployment.audit(AuditConfig::default());
            }
            let row = match backend {
                Backend::InMemory => {
                    row_on(deployment.in_memory().expect("in-memory cluster"), &label)
                }
                Backend::Tcp => row_on(deployment.tcp().expect("tcp cluster"), &label),
                Backend::Sim { .. } => unreachable!("live transports only"),
            };
            table.row(row.cells());
            rows.push(row);
        }
        println!("{table}");
        table_json.push((transport, rows));
    }

    if audit {
        let reports: Vec<&AuditReport> = table_json
            .iter()
            .flat_map(|(_, rows)| rows.iter().filter_map(|r| r.audit.as_ref()))
            .collect();
        let audited: u64 = reports.iter().map(|r| r.stats.audited).sum();
        let hwm = reports.iter().map(|r| r.stats.window_high_water).max().unwrap_or(0);
        let violations = reports.iter().filter(|r| !r.verdict.is_ok()).count();
        println!(
            "audit (every op): {audited} ops audited across {} rows, \
             max window high-water {hwm}, {violations} violation(s)\n",
            reports.len(),
        );
        if violations > 0 {
            for (transport, rows) in &table_json {
                for row in rows {
                    if let Some(v) = row.audit.as_ref().and_then(|a| a.verdict.violation()) {
                        eprintln!("VIOLATION [{transport} {}]: {v}", row.label);
                    }
                }
            }
            std::process::exit(1);
        }
    }

    println!(
        "-- payload growth: W2R1, {GROWTH_OPS} write+read pairs (S=5 t=1 R=1 W=1), \
         first vs last {WINDOW} reads --"
    );
    let growth = growth_experiments();
    let mut gt = TextTable::new(vec![
        "transport", "wire", "1st p50µs", "last p50µs", "1st B/read", "last B/read", "B ratio",
    ]);
    for g in &growth {
        gt.row(vec![
            g.transport.to_string(),
            g.wire.to_string(),
            g.first.lat_p50_us.to_string(),
            g.last.lat_p50_us.to_string(),
            g.first.bytes_avg.to_string(),
            g.last.bytes_avg.to_string(),
            format!("{:.2}", g.bytes_ratio()),
        ]);
    }
    println!("{gt}");

    let json = to_json(&table_json, &growth);
    std::fs::write("BENCH_live_latency.json", &json).expect("write BENCH_live_latency.json");
    println!("wrote BENCH_live_latency.json");

    println!("\nShape: full-info fast reads ship the whole valQueue out and whole");
    println!("snapshots back, so bytes/read grows linearly with history and the");
    println!("wall-clock latency grows with it. The delta wire with acknowledged-");
    println!("floor GC moves O(new information) per read: bytes/read and latency");
    println!("stay flat, and the 1-vs-2 round-trip advantage survives long runs.");

    if assert_bounded {
        let mut failed = false;
        for g in growth.iter().filter(|g| g.wire == "delta+gc") {
            // Flat means "does not keep growing with history": allow noise
            // but fail on anything resembling linear growth (full-info
            // measures ~5-6x over this run length).
            if g.bytes_ratio() > 1.5 {
                eprintln!(
                    "FAIL: delta fast-read payload grew {}x on {} ({} -> {} bytes)",
                    g.bytes_ratio(),
                    g.transport,
                    g.first.bytes_avg,
                    g.last.bytes_avg,
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("payload-growth assertion passed: delta fast reads stay bounded");
    }
}
