//! Experiment L1 — wall-clock operation latency on the *live* runtime.
//!
//! The simulator binaries measure cost in round-trips (the paper's
//! currency); this one measures microseconds on real threads, over both
//! transports: in-memory channels and loopback TCP. For each protocol in
//! the design space it runs concurrent writer/reader threads against a
//! live cluster and reports per-operation latency percentiles.
//!
//! What it surfaces (and the paper's cost model abstracts away): W2R1's
//! fast read is one round-trip but carries *full-information* payloads —
//! the reader forwards its accumulated `val_queue` and every server
//! returns its whole registered-value snapshot — so its wire cost grows
//! with history length, while W2R2's two round-trips exchange only
//! constant-size tag/value pairs. On real hardware the payload effect
//! dominates the round-trip effect as the run gets longer; bounding server
//! state (`RegisterServer::prune_below`) and the reader's `val_queue` is
//! the optimization that would let the round-trip advantage show, and this
//! binary is the regression harness for it.

use std::thread;
use std::time::{Duration, Instant};

use mwr_core::Protocol;
use mwr_runtime::{LiveCluster, TcpCluster};
use mwr_types::{ClusterConfig, Value};
use mwr_workload::TextTable;

const OPS_PER_CLIENT: usize = 200;

/// Latency percentiles in microseconds over a set of samples.
fn percentiles(mut samples: Vec<Duration>) -> (u128, u128, u128) {
    samples.sort_unstable();
    let pick = |q: f64| -> u128 {
        if samples.is_empty() {
            return 0;
        }
        let idx = ((samples.len() - 1) as f64 * q).round() as usize;
        samples[idx].as_micros()
    };
    (pick(0.50), pick(0.95), pick(0.99))
}

struct Measured {
    write: Vec<Duration>,
    read: Vec<Duration>,
    write_attempts: usize,
    read_attempts: usize,
}

/// Runs `writers`+`readers` concurrent client threads; returns latencies of
/// the *successful* operations plus attempt counts, so a partially failing
/// transport cannot masquerade as a fast one.
fn drive<W, R>(writers: Vec<W>, readers: Vec<R>) -> Measured
where
    W: FnMut(Value) -> bool + Send + 'static,
    R: FnMut() -> bool + Send + 'static,
{
    let mut handles = Vec::new();
    for (w, mut do_write) in writers.into_iter().enumerate() {
        handles.push(thread::spawn(move || {
            let mut lat = Vec::with_capacity(OPS_PER_CLIENT);
            for i in 0..OPS_PER_CLIENT {
                let value = Value::new((w * OPS_PER_CLIENT + i + 1) as u64);
                let t0 = Instant::now();
                if do_write(value) {
                    lat.push(t0.elapsed());
                }
            }
            (true, lat)
        }));
    }
    for mut do_read in readers {
        handles.push(thread::spawn(move || {
            let mut lat = Vec::with_capacity(OPS_PER_CLIENT);
            for _ in 0..OPS_PER_CLIENT {
                let t0 = Instant::now();
                if do_read() {
                    lat.push(t0.elapsed());
                }
            }
            (false, lat)
        }));
    }
    let mut measured =
        Measured { write: Vec::new(), read: Vec::new(), write_attempts: 0, read_attempts: 0 };
    for h in handles {
        let (is_write, lat) = h.join().expect("client thread");
        if is_write {
            measured.write_attempts += OPS_PER_CLIENT;
            measured.write.extend(lat);
        } else {
            measured.read_attempts += OPS_PER_CLIENT;
            measured.read.extend(lat);
        }
    }
    measured
}

const COLUMNS: [&str; 8] =
    ["protocol", "ok", "wr p50µs", "wr p95", "wr p99", "rd p50µs", "rd p95", "rd p99"];

/// Drives one protocol's clients and formats the shared table row. Used by
/// both transports so the columns can never drift apart.
fn measure_row<W, R>(protocol: Protocol, writers: Vec<W>, readers: Vec<R>) -> Vec<String>
where
    W: FnMut(Value) -> bool + Send + 'static,
    R: FnMut() -> bool + Send + 'static,
{
    let m = drive(writers, readers);
    let ok = m.write.len() + m.read.len();
    let attempts = m.write_attempts + m.read_attempts;
    let (wp50, wp95, wp99) = percentiles(m.write);
    let (rp50, rp95, rp99) = percentiles(m.read);
    vec![
        protocol.name().to_string(),
        format!("{ok}/{attempts}"),
        wp50.to_string(),
        wp95.to_string(),
        wp99.to_string(),
        rp50.to_string(),
        rp95.to_string(),
        rp99.to_string(),
    ]
}

fn protocols(config: &ClusterConfig) -> Vec<Protocol> {
    Protocol::ALL
        .into_iter()
        .filter(|p| !p.is_single_writer() || config.writers() == 1)
        // The naive fast-write protocols are unsafe by design (Theorem 1);
        // latency comparisons against them would flatter the wrong thing.
        .filter(|p| p.expected_atomic(config))
        .collect()
}

fn main() {
    let config = ClusterConfig::new(5, 1, 2, 2).expect("valid config");
    println!("== L1: live wall-clock latency (S=5 t=1 R=2 W=2, {OPS_PER_CLIENT} ops/client) ==\n");

    println!("-- transport: in-memory channels --");
    let mut table = TextTable::new(COLUMNS.to_vec());
    for protocol in protocols(&config) {
        let cluster = LiveCluster::start(config, protocol);
        let writers = (0..config.writers() as u32)
            .map(|w| {
                let mut client = cluster.writer(w);
                move |v: Value| client.write(v).is_ok()
            })
            .collect();
        let readers = (0..config.readers() as u32)
            .map(|r| {
                let mut client = cluster.reader(r);
                move || client.read().is_ok()
            })
            .collect();
        table.row(measure_row(protocol, writers, readers));
        cluster.shutdown();
    }
    println!("{table}");

    println!("-- transport: loopback TCP --");
    let mut table = TextTable::new(COLUMNS.to_vec());
    for protocol in protocols(&config) {
        let cluster = TcpCluster::start(config, protocol).expect("tcp cluster");
        let writers = (0..config.writers() as u32)
            .map(|w| {
                let mut client = cluster.writer(w).expect("writer endpoint");
                move |v: Value| client.write(v).is_ok()
            })
            .collect();
        let readers = (0..config.readers() as u32)
            .map(|r| {
                let mut client = cluster.reader(r).expect("reader endpoint");
                move || client.read().is_ok()
            })
            .collect();
        table.row(measure_row(protocol, writers, readers));
        cluster.shutdown();
    }
    println!("{table}");

    println!("Shape: W2R2's constant-size messages make its two round-trips cheap;");
    println!("W2R1's single fast-read round-trip ships full-information payloads");
    println!("(val_queue out, whole snapshots back) that grow with history, so its");
    println!("wall-clock read latency exceeds the round-trip ratio the simulator");
    println!("reports. Bounding server/reader state is the open fast-path win.");
}
