//! CI helper: render the perf-regression delta table between two
//! `BENCH_live_throughput.json` reports.
//!
//! The CI perf job snapshots the committed artifact, re-runs
//! `live_throughput --quick`, and calls this bin to write a markdown table
//! of per-sweep-point throughput deltas to `$GITHUB_STEP_SUMMARY`. The
//! table is the *trend* signal; the hard pass/fail gate stays
//! `live_throughput --assert-floor` (noise-tolerant on the ±10–20%
//! run-to-run variance of the 1-core CI box). With `--fail-below R` the
//! bin additionally exits non-zero if the geomean fresh/baseline ratio
//! over matched points drops under `R` percent — off by default.

use mwr_bench::args::Args;
use mwr_bench::report::{delta_table, parse_live_throughput};

fn main() {
    let args = Args::parse();
    args.expect_known(
        "bench_delta",
        &[],
        &["baseline", "fresh", "markdown", "fail-below"],
    );
    let baseline_path = args.get("baseline").unwrap_or("BENCH_live_throughput.baseline.json");
    let fresh_path = args.get("fresh").unwrap_or("BENCH_live_throughput.json");

    let read = |path: &str| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let baseline = parse_live_throughput(&read(baseline_path))
        .unwrap_or_else(|e| panic!("{baseline_path}: {e}"));
    let fresh = parse_live_throughput(&read(fresh_path))
        .unwrap_or_else(|e| panic!("{fresh_path}: {e}"));

    let (table, geomean) = delta_table(&baseline, &fresh);
    let doc = format!(
        "## live_throughput: fresh vs committed baseline\n\n\
         baseline `{baseline_path}` · fresh `{fresh_path}`\n\n{table}"
    );
    match args.get("markdown") {
        Some(path) => {
            std::fs::write(path, &doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("wrote delta table to {path} (geomean {geomean:.3}x)");
        }
        None => println!("{doc}"),
    }

    if let Some(pct) = args.get("fail-below") {
        let pct: f64 = pct.parse().expect("--fail-below takes a percentage, e.g. 50");
        if geomean * 100.0 < pct {
            eprintln!(
                "FAIL: geomean throughput ratio {:.1}% is below --fail-below {pct}%",
                geomean * 100.0
            );
            std::process::exit(1);
        }
    }
}
