//! Micro-benchmarks for the extension layers: Byzantine vouching, the
//! adaptive degree cap selection, and staleness analysis — the ablation
//! costs attached to the features beyond the paper's core algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mwr_almost::StalenessReport;
use mwr_byz::{safe_max_tag, vouched_snapshots};
use mwr_check::History;
use mwr_core::{Admissibility, Protocol, Snapshot, ValueRecord};
use mwr_register::Deployment;
use mwr_types::{ClientId, ClusterConfig, Tag, TaggedValue, Value, WriterId};
use mwr_workload::{run_closed_loop, WorkloadSpec};

fn snapshots(servers: usize, values: usize, witnesses: usize) -> Vec<Snapshot> {
    (0..servers)
        .map(|s| Snapshot {
            entries: (0..values)
                .map(|v| ValueRecord {
                    value: TaggedValue::new(
                        Tag::new(v as u64 + 1, WriterId::new(((v + s) % 3) as u32)),
                        Value::new(v as u64),
                    ),
                    updated: (0..witnesses).map(|w| ClientId::reader(w as u32)).collect(),
                })
                .collect(),
        })
        .collect()
}

fn bench_vouching(c: &mut Criterion) {
    let mut group = c.benchmark_group("byz_vouching");
    group.sample_size(20);
    for (servers, values) in [(7usize, 8usize), (13, 16), (25, 32)] {
        let snaps = snapshots(servers, values, 3);
        group.bench_with_input(
            BenchmarkId::new("vouched_snapshots", format!("S{servers}xV{values}")),
            &snaps,
            |b, snaps| b.iter(|| vouched_snapshots(std::hint::black_box(snaps), 3)),
        );
    }
    let tags: Vec<Tag> = (0..64).map(|i| Tag::new(i % 11, WriterId::new((i % 5) as u32))).collect();
    group.bench_function("safe_max_tag/64", |b| {
        b.iter(|| safe_max_tag(std::hint::black_box(&tags), 2))
    });
    group.finish();
}

fn bench_adaptive_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_selection");
    group.sample_size(20);
    for values in [4usize, 16, 64] {
        let snaps = snapshots(4, values, 3);
        group.bench_with_input(
            BenchmarkId::new("degree_of_max", values),
            &snaps,
            |b, snaps| {
                b.iter(|| {
                    let cap = mwr_core::adaptive_degree_cap(5, 1, 2);
                    let adm = Admissibility::new(std::hint::black_box(snaps), 5, 1, cap);
                    let max = adm.candidates_descending().into_iter().next().unwrap();
                    adm.degree(max)
                })
            },
        );
    }
    group.finish();
}

fn bench_staleness_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("staleness_analysis");
    group.sample_size(10);
    // A realistic history from a closed-loop run.
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = Deployment::new(config).protocol(Protocol::W2R1).sim_cluster().unwrap();
    for ticks in [2_000u64, 8_000] {
        let report = run_closed_loop(
            &cluster,
            WorkloadSpec {
                duration: mwr_sim::SimTime::from_ticks(ticks),
                think_time: mwr_sim::SimTime::from_ticks(10),
                seed: 5,
            },
        )
        .unwrap();
        let history = History::from_events(&report.events).unwrap();
        group.bench_with_input(
            BenchmarkId::new("analyze", history.len()),
            &history,
            |b, h| b.iter(|| StalenessReport::analyze(std::hint::black_box(h))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_vouching, bench_adaptive_selection, bench_staleness_analysis);
criterion_main!(benches);
