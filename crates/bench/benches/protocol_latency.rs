//! Criterion bench: operation cost per protocol (experiment F2 backing).
//!
//! Measures complete simulated runs of a fixed schedule for every protocol
//! in the design space. Wall-clock here tracks simulator work, which is
//! proportional to messages — i.e. to round-trips, the paper's cost metric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mwr_core::{Protocol, ScheduledOp, SimCluster};
use mwr_register::Deployment;
use mwr_sim::SimTime;
use mwr_types::{ClusterConfig, Value};

fn schedule() -> Vec<(SimTime, ScheduledOp)> {
    let mut ops = Vec::new();
    for i in 0..10u64 {
        ops.push((
            SimTime::from_ticks(i * 40),
            ScheduledOp::Write { writer: (i % 2) as u32, value: Value::new(i + 1) },
        ));
        ops.push((SimTime::from_ticks(i * 40 + 20), ScheduledOp::Read { reader: (i % 2) as u32 }));
    }
    ops
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_run");
    let schedule = schedule();
    for protocol in Protocol::ALL {
        let writers = if protocol.is_single_writer() { 1 } else { 2 };
        let config = ClusterConfig::new(5, 1, 2, writers).unwrap();
        let cluster = Deployment::new(config).protocol(protocol).sim_cluster().unwrap();
        let sched: Vec<_> = schedule
            .iter()
            .filter(|(_, op)| match op {
                ScheduledOp::Write { writer, .. } => (*writer as usize) < writers,
                ScheduledOp::Read { .. } => true,
            })
            .cloned()
            .collect();
        group.bench_function(BenchmarkId::from_parameter(protocol.name()), |b| {
            b.iter(|| cluster.run_schedule(7, &sched).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_protocols
}
criterion_main!(benches);
