//! Criterion bench: cost of the mechanized impossibility certificates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mwr_chains::fastread::fig9_outcome;
use mwr_chains::{refute_strategy, verify_w1r2_impossibility, MajorityLastWrite};

fn bench_certificates(c: &mut Criterion) {
    let mut group = c.benchmark_group("w1r2_certificate");
    for servers in [3usize, 5, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(servers), &servers, |b, &s| {
            b.iter(|| verify_w1r2_impossibility(s).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("strategy_refutation");
    for servers in [3usize, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(servers), &servers, |b, &s| {
            b.iter(|| refute_strategy(s, &MajorityLastWrite))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig9_engine");
    for (s, t, r) in [(4usize, 1usize, 3usize), (6, 2, 2), (8, 2, 3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("S{s}_t{t}_R{r}")),
            &(s, t, r),
            |b, &(s, t, r)| b.iter(|| fig9_outcome(s, t, r)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_certificates
}
criterion_main!(benches);
