//! Criterion bench: atomicity checker scaling (graph vs exhaustive search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mwr_bench::random_schedule;
use mwr_check::{check_atomicity, search_atomicity, History};
use mwr_core::{Protocol, SimCluster};
use mwr_register::Deployment;
use mwr_types::ClusterConfig;

fn history_of(ops_per_client: usize) -> History {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = Deployment::new(config).protocol(Protocol::W2R1).sim_cluster().unwrap();
    let schedule = random_schedule(&config, ops_per_client, 1_000, 42);
    let events = cluster.run_schedule(11, &schedule).unwrap();
    History::from_events(&events).unwrap()
}

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("atomicity_checkers");
    for ops in [2usize, 5, 10, 20] {
        let history = history_of(ops);
        group.bench_with_input(
            BenchmarkId::new("graph", history.len()),
            &history,
            |b, h| b.iter(|| check_atomicity(h)),
        );
        if history.len() <= 32 {
            group.bench_with_input(
                BenchmarkId::new("search", history.len()),
                &history,
                |b, h| b.iter(|| search_atomicity(h)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_checkers
}
criterion_main!(benches);
