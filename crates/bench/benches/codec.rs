//! Criterion bench: wire-codec encode/decode throughput for the protocol
//! messages the live transport moves, so codec regressions are visible
//! independent of sockets and threads.
//!
//! The interesting contrast is the fast read's two wire formats: a
//! full-info `ReadFastAck` ships the server's whole store (O(history)
//! payload), a `ReadFastDelta`/`ReadFastDeltaAck` pair ships O(new
//! information). The small fixed-size messages (`Update`/`UpdateAck`) are
//! the per-operation floor every protocol pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bytes::BytesMut;
use mwr_core::{DeltaSnapshot, Msg, OpHandle, OpId, Snapshot, ValueRecord};
use mwr_types::codec::Wire;
use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};

fn handle() -> OpHandle {
    OpHandle { op: OpId { client: ClientId::reader(0), seq: 42 }, phase: 1 }
}

fn tv(ts: u64, v: u64) -> TaggedValue {
    TaggedValue::new(Tag::new(ts, WriterId::new((ts % 2) as u32)), Value::new(v))
}

/// A store of `entries` values, each registered by `witnesses` clients —
/// the payload shape a long-running full-info server reports.
fn records(entries: usize, witnesses: usize) -> Vec<ValueRecord> {
    (0..entries)
        .map(|i| ValueRecord {
            value: tv(i as u64 + 1, i as u64),
            updated: (0..witnesses).map(|w| ClientId::reader(w as u32)).collect(),
        })
        .collect()
}

/// The messages the transport moves, from the per-op floor to the
/// O(history) full-info snapshot against its O(new) delta replacement.
fn messages(entries: usize) -> Vec<(&'static str, Msg)> {
    vec![
        ("update", Msg::Update { handle: handle(), value: tv(7, 7), floor: tv(3, 3) }),
        ("update_ack", Msg::UpdateAck { handle: handle() }),
        (
            "read_fast_ack_full",
            Msg::ReadFastAck { handle: handle(), snapshot: Snapshot { entries: records(entries, 4) } },
        ),
        (
            "read_fast_delta",
            Msg::ReadFastDelta { handle: handle(), acked: 17, floor: tv(3, 3), new_values: vec![tv(9, 9)] },
        ),
        (
            "read_fast_delta_ack",
            Msg::ReadFastDeltaAck {
                handle: handle(),
                delta: DeltaSnapshot {
                    from: 17,
                    version: 21,
                    latest: tv(9, 9),
                    pruned: tv(2, 2),
                    // A delta carries only the newly registered pairs.
                    entries: records(2, 1),
                },
            },
        ),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_encode");
    for (name, msg) in messages(64) {
        let mut buf = BytesMut::with_capacity(msg.encoded_len());
        group.bench_with_input(BenchmarkId::from_parameter(name), &msg, |b, msg| {
            b.iter(|| {
                buf.clear();
                msg.encode(&mut buf);
                buf.len()
            })
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_decode");
    for (name, msg) in messages(64) {
        let bytes = msg.to_bytes();
        group.bench_with_input(BenchmarkId::from_parameter(name), &bytes, |b, bytes| {
            b.iter(|| {
                let mut cursor: &[u8] = bytes;
                Msg::decode(&mut cursor).expect("decode")
            })
        });
    }
    group.finish();
}

/// Full-info ack encode cost as the store grows — the O(history) curve the
/// delta wire flattens.
fn bench_full_info_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_full_info_growth");
    for entries in [16usize, 64, 256] {
        let msg = Msg::ReadFastAck {
            handle: handle(),
            snapshot: Snapshot { entries: records(entries, 4) },
        };
        let mut buf = BytesMut::with_capacity(msg.encoded_len());
        group.bench_with_input(BenchmarkId::from_parameter(entries), &msg, |b, msg| {
            b.iter(|| {
                buf.clear();
                msg.encode(&mut buf);
                buf.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_full_info_growth);
criterion_main!(benches);
