//! Criterion bench: the `admissible(·)` predicate (ablation of the fast
//! read's extra decision cost over a plain max-tag slow read), for both
//! evaluators:
//!
//! - `admissible_select` — the naive reference ([`Admissibility`]), which
//!   rebuilds witness bitmasks per (candidate, degree) probe;
//! - `witness_build_select` — `WitnessIndex::from_views` + one selection
//!   walk (the full-info wire's per-read cost);
//! - `witness_incremental_select` — selection over a standing index (the
//!   delta wire's steady-state cost, with index maintenance amortized into
//!   merges).
//!
//! `admissible_smoke --assert-admissible-floor` is the CI-gated subset of
//! these curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mwr_bench::synthetic_replies;
use mwr_core::{Admissibility, Snapshot, SnapshotSource, WitnessIndex};

fn bench_admissible(c: &mut Criterion) {
    let shapes = [(5usize, 1usize, 2usize), (9, 2, 2), (13, 3, 2), (25, 4, 2)];

    let mut group = c.benchmark_group("admissible_select");
    for (servers, t, readers) in shapes {
        let quorum = servers - t;
        let snaps = synthetic_replies(quorum, 8, readers + 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("S{servers}_t{t}")),
            &snaps,
            |b, snaps| {
                b.iter(|| {
                    Admissibility::new(snaps, servers, t, readers + 1).select_return_value()
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("witness_build_select");
    for (servers, t, readers) in shapes {
        let quorum = servers - t;
        let snaps = synthetic_replies(quorum, 8, readers + 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("S{servers}_t{t}")),
            &snaps,
            |b, snaps| {
                b.iter(|| {
                    let (index, mask) =
                        WitnessIndex::from_views(snaps.iter().map(SnapshotSource::view));
                    index.selector(mask, servers, t, readers + 1).select_return_value()
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("witness_incremental_select");
    for (servers, t, readers) in shapes {
        let quorum = servers - t;
        let snaps = synthetic_replies(quorum, 8, readers + 2);
        let (index, mask) = WitnessIndex::from_views(snaps.iter().map(SnapshotSource::view));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("S{servers}_t{t}")),
            &(index, mask),
            |b, (index, mask)| {
                b.iter(|| index.selector(*mask, servers, t, readers + 1).select_return_value())
            },
        );
    }
    group.finish();

    // Slow-read baseline for the ablation: picking the max tag only.
    let mut group = c.benchmark_group("slow_read_max_baseline");
    let snaps = synthetic_replies(12, 8, 4);
    group.bench_function("max_tag", |b| {
        b.iter(|| snaps.iter().filter_map(Snapshot::max_value).max())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_admissible
}
criterion_main!(benches);
