//! Criterion bench: the `admissible(·)` predicate (ablation of the fast
//! read's extra decision cost over a plain max-tag slow read).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mwr_core::{Admissibility, Snapshot, ValueRecord};
use mwr_types::{ClientId, Tag, TaggedValue, Value, WriterId};

/// Builds quorum replies where `values` distinct tagged values are spread
/// across `quorum` snapshots with `witnesses` registered clients each. As
/// in any real protocol state, the value's own writer is registered
/// everywhere the value is stored (so something is always admissible); the
/// remaining witnesses vary per snapshot, which is what makes the
/// intersection search non-trivial.
fn replies(quorum: usize, values: usize, witnesses: usize) -> Vec<Snapshot> {
    (0..quorum)
        .map(|s| Snapshot {
            entries: (0..values)
                .map(|v| {
                    let mut updated: Vec<ClientId> =
                        vec![ClientId::writer((v % 2) as u32)];
                    updated.extend((0..witnesses).map(|w| {
                        if (s + w) % 2 == 0 {
                            ClientId::reader(w as u32)
                        } else {
                            ClientId::reader((w + witnesses) as u32)
                        }
                    }));
                    updated.sort_unstable();
                    updated.dedup();
                    ValueRecord {
                        value: TaggedValue::new(
                            Tag::new(v as u64 + 1, WriterId::new((v % 2) as u32)),
                            Value::new(v as u64),
                        ),
                        updated,
                    }
                })
                .collect(),
        })
        .collect()
}

fn bench_admissible(c: &mut Criterion) {
    let mut group = c.benchmark_group("admissible_select");
    for (servers, t, readers) in [(5usize, 1usize, 2usize), (9, 2, 2), (13, 3, 2), (25, 4, 2)] {
        let quorum = servers - t;
        let snaps = replies(quorum, 8, readers + 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("S{servers}_t{t}")),
            &snaps,
            |b, snaps| {
                b.iter(|| {
                    Admissibility::new(snaps, servers, t, readers + 1).select_return_value()
                })
            },
        );
    }
    group.finish();

    // Slow-read baseline for the ablation: picking the max tag only.
    let mut group = c.benchmark_group("slow_read_max_baseline");
    let snaps = replies(12, 8, 4);
    group.bench_function("max_tag", |b| {
        b.iter(|| snaps.iter().filter_map(Snapshot::max_value).max())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_admissible
}
criterion_main!(benches);
