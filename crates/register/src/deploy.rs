//! The [`Deployment`] builder: one validated path from (config, spec,
//! backend, knobs) to a running register.

use std::time::Duration;

use mwr_almost::TunableCluster;
use mwr_byz::{ByzBehavior, ByzCluster, ByzConfig, ByzReadMode};
use mwr_core::{ClientEvent, Cluster, FastWire, Msg, Protocol, SimCluster};
use mwr_runtime::{
    FaultEvent, FaultPlan, InMemoryTransport, RetryPolicy, RuntimeCluster, TcpRegistry, TcpTuning,
};
use mwr_sim::Simulation;
use mwr_types::ClusterConfig;
use mwr_workload::{WorkloadReport, WorkloadSpec};

use crate::audit::{AuditConfig, AuditSidecar};
use crate::error::DeployError;
use crate::handle::{Handle, LiveHandle, SimHandle};
use crate::spec::{Backend, Spec};

/// A deployment blueprint: cluster configuration, protocol spec, backend,
/// and knobs, validated as a whole before anything starts.
///
/// See the [crate docs](crate) for the full walkthrough; the short form:
///
/// ```
/// use mwr_core::Protocol;
/// use mwr_register::{Backend, Deployment};
/// use mwr_types::{ClusterConfig, Value};
///
/// let config = ClusterConfig::new(5, 1, 2, 2)?;
/// let live = Deployment::new(config)
///     .protocol(Protocol::W2R1)
///     .backend(Backend::InMemory)
///     .in_memory()?;
/// let mut writer = live.writer(0)?;
/// let mut reader = live.reader(0)?;
/// let written = writer.write(Value::new(1))?;
/// assert_eq!(reader.read()?, written);
/// live.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Deployment {
    config: ClusterConfig,
    spec: Spec,
    backend: Backend,
    wire: Option<FastWire>,
    gc: Option<bool>,
    timeout: Option<Duration>,
    tcp_tuning: Option<TcpTuning>,
    audit: Option<AuditConfig>,
    retry: Option<RetryPolicy>,
    faults: Option<FaultPlan>,
}

impl Deployment {
    /// Creates a blueprint for `config` with the defaults: the paper's
    /// W2R1 on the simulator backend with seed 0.
    pub fn new(config: ClusterConfig) -> Self {
        Deployment {
            config,
            spec: Spec::Core(Protocol::W2R1),
            backend: Backend::Sim { seed: 0 },
            wire: None,
            gc: None,
            timeout: None,
            tcp_tuning: None,
            audit: None,
            retry: None,
            faults: None,
        }
    }

    /// Creates a Byzantine deployment straight from the masking-quorum
    /// arithmetic: the crash-view [`ClusterConfig`] (`t = b`) is derived
    /// from `config` instead of hand-supplied, so it cannot disagree.
    pub fn byz(config: ByzConfig, read_mode: ByzReadMode, behavior: ByzBehavior) -> Self {
        let crash_view = ClusterConfig::new(
            config.servers(),
            config.byz(),
            config.readers(),
            config.writers(),
        )
        .expect("every valid ByzConfig has a valid crash view (S ≥ 4b + 1 > b)");
        Deployment::new(crash_view).protocol(Spec::Byz { config, read_mode, behavior })
    }

    /// Selects the protocol: a core [`Protocol`], a
    /// [`TunableSpec`](mwr_almost::TunableSpec), or a full [`Spec`]
    /// (required for [`Spec::Byz`]; see also [`byz`](Self::byz), which
    /// derives the matching cluster config for you).
    pub fn protocol(mut self, spec: impl Into<Spec>) -> Self {
        self.spec = spec.into();
        self
    }

    /// Selects the execution backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the fast-read wire format. Core protocols only
    /// ([`FastWire::FullInfo`] restores the paper's O(history) payloads).
    pub fn fast_wire(mut self, wire: FastWire) -> Self {
        self.wire = Some(wire);
        self
    }

    /// Enables or disables acknowledged-floor GC on the servers. Core
    /// protocols on the simulator backend only — the live runtime always
    /// runs with GC on.
    pub fn gc(mut self, gc: bool) -> Self {
        self.gc = Some(gc);
        self
    }

    /// Sets the per-round-trip quorum timeout for live clients. Live
    /// backends only — the simulator runs in virtual time.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Tunes the TCP send path: writer-pipeline coalescing batch, bounded
    /// per-peer queue depth, reconnect backoff, and the legacy direct-write
    /// toggle benchmarks compare against. TCP backend only — the in-memory
    /// transport delivers straight into the destination's channel with no
    /// pipeline to tune, and the simulator has no sockets at all.
    pub fn tcp_tuning(mut self, tuning: TcpTuning) -> Self {
        self.tcp_tuning = Some(tuning);
        self
    }

    /// Arms the deployment with a streaming linearizability auditor: every
    /// client the live handle mints emits sampled operation records into a
    /// sidecar thread running `mwr-check`'s
    /// [`StreamingAuditor`](mwr_check::StreamingAuditor), so workloads and
    /// fault scenarios run continuously verified. Live backends only — the
    /// simulator's histories are checked post-hoc with
    /// [`check_atomicity`](mwr_check::check_atomicity). Collect the
    /// verdict with
    /// [`LiveHandle::shutdown_audited`](crate::LiveHandle::shutdown_audited).
    pub fn audit(mut self, audit: AuditConfig) -> Self {
        self.audit = Some(audit);
        self
    }

    /// Sets the bounded retry policy live clients use to ride out
    /// transient fault windows (a crashed-then-rejoining server, a churn
    /// spike): a timed-out round is re-broadcast up to `attempts` times,
    /// `backoff` apart. Safe because every protocol round is idempotent
    /// and acknowledgements deduplicate by server across attempts. Live
    /// backends only — the simulator has no timeouts to retry. The
    /// default (no knob) is one attempt: fail fast, exactly the old
    /// behavior.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Arms the deployment with a deterministic [`FaultPlan`]: when the
    /// live handle is driven with
    /// [`LiveHandle::run_chaos`](crate::LiveHandle::run_chaos), an
    /// injector walks the plan in order — crashing servers, rejoining
    /// them through quorum state transfer, running churn bursts of
    /// short-lived depart-cleanly clients — while the drive measures
    /// whether the service held up. Live backends only; the simulator
    /// schedules crashes natively in virtual time (and has no rejoin —
    /// simulated crashes are permanent by construction).
    pub fn inject(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The protocol spec.
    pub fn spec(&self) -> Spec {
        self.spec
    }

    /// Checks the whole combination — spec × backend × knobs — and
    /// explains the first unsupported pairing.
    ///
    /// # Errors
    ///
    /// [`DeployError::Unsupported`], [`DeployError::Knob`] or
    /// [`DeployError::ByzMismatch`], with the offending pair named.
    pub fn validate(&self) -> Result<(), DeployError> {
        let live = !matches!(self.backend, Backend::Sim { .. });
        match &self.spec {
            Spec::Core(_) => {}
            Spec::Tunable(_) if live => {
                return Err(DeployError::Unsupported {
                    family: self.spec.family(),
                    backend: self.backend.name(),
                    reason: "tunable-quorum clients exist only as simulator automata; \
                             a live tunable client has not been wired yet",
                });
            }
            Spec::Byz { .. } if live => {
                return Err(DeployError::Unsupported {
                    family: self.spec.family(),
                    backend: self.backend.name(),
                    reason: "Byzantine servers and vouching clients exist only as \
                             simulator automata; the live runtime has not been wired yet",
                });
            }
            Spec::Tunable(_) => {}
            Spec::Byz { config: byz, .. } => {
                let crash_view = (byz.servers(), byz.byz(), byz.readers(), byz.writers());
                let deployed = (
                    self.config.servers(),
                    self.config.max_faults(),
                    self.config.readers(),
                    self.config.writers(),
                );
                if crash_view != deployed {
                    return Err(DeployError::ByzMismatch {
                        detail: format!(
                            "ByzConfig is {byz} (crash view S={} t={} R={} W={}) but the \
                             deployment config is {}; they must agree with t = b",
                            crash_view.0, crash_view.1, crash_view.2, crash_view.3, self.config,
                        ),
                    });
                }
            }
        }
        if self.wire.is_some() && !matches!(self.spec, Spec::Core(_)) {
            return Err(DeployError::Knob {
                knob: "fast_wire",
                reason: "only the core protocols have a fast-read wire format \
                         (tunable reads are threshold reads; byz stays full-info deliberately)",
            });
        }
        if let Some(_gc) = self.gc {
            if !matches!(self.spec, Spec::Core(_)) {
                return Err(DeployError::Knob {
                    knob: "gc",
                    reason: "only the core servers run acknowledged-floor GC \
                             (tunable servers are plain; byz stays full-info deliberately)",
                });
            }
            if live {
                return Err(DeployError::Knob {
                    knob: "gc",
                    reason: "the live runtime always runs acknowledged-floor GC; \
                             the knob exists to restore the paper-faithful model in the simulator",
                });
            }
        }
        if self.timeout.is_some() && !live {
            return Err(DeployError::Knob {
                knob: "timeout",
                reason: "timeouts are wall-clock; the simulator runs in virtual time \
                         and never blocks",
            });
        }
        if let Some(tuning) = self.tcp_tuning {
            if self.backend != Backend::Tcp {
                return Err(DeployError::Knob {
                    knob: "tcp_tuning",
                    reason: "writer pipelines and frame coalescing exist only on the TCP \
                             transport; the in-memory transport delivers directly and the \
                             simulator has no sockets",
                });
            }
            if tuning.batch == 0 || tuning.queue_depth == 0 {
                return Err(DeployError::Knob {
                    knob: "tcp_tuning",
                    reason: "batch and queue_depth must both be at least 1 \
                             (a zero-capacity pipeline could never move a frame)",
                });
            }
        }
        if let Some(audit) = self.audit {
            if !live {
                return Err(DeployError::Knob {
                    knob: "audit",
                    reason: "the streaming auditor taps live clients; simulator \
                             histories are deterministic and checked post-hoc with \
                             mwr_check::check_atomicity",
                });
            }
            if !(audit.sample_rate.is_finite()
                && audit.sample_rate > 0.0
                && audit.sample_rate <= 1.0)
            {
                return Err(DeployError::Knob {
                    knob: "audit",
                    reason: "sample_rate must be in (0, 1]",
                });
            }
            if audit.window == 0 {
                return Err(DeployError::Knob {
                    knob: "audit",
                    reason: "window must be at least 1 (the auditor needs to retain \
                             something to check)",
                });
            }
        }
        if let Some(retry) = self.retry {
            if !live {
                return Err(DeployError::Knob {
                    knob: "retry",
                    reason: "retries re-broadcast after wall-clock timeouts; the simulator \
                             runs in virtual time and never times out",
                });
            }
            if retry.attempts == 0 {
                return Err(DeployError::Knob {
                    knob: "retry",
                    reason: "attempts must be at least 1 (zero attempts could never \
                             issue the operation)",
                });
            }
        }
        if let Some(plan) = self.faults {
            if !live {
                return Err(DeployError::Knob {
                    knob: "faults",
                    reason: "the fault injector crashes and rejoins live server threads; \
                             simulator crashes are scheduled natively in virtual time and \
                             are permanent (no rejoin path exists there)",
                });
            }
            if let Some(max) = plan.max_server() {
                if max as usize >= self.config.servers() {
                    return Err(DeployError::Knob {
                        knob: "faults",
                        reason: "the plan crashes or rejoins a server index outside the \
                                 deployment's configuration",
                    });
                }
            }
            let churny =
                plan.steps().iter().any(|s| matches!(s.event, FaultEvent::ChurnBurst { .. }));
            if churny && self.config.readers() < 2 {
                return Err(DeployError::Knob {
                    knob: "faults",
                    reason: "churn bursts reserve the highest reader slot for short-lived \
                             clients; the configuration needs at least 2 readers so one \
                             stable reader remains",
                });
            }
        }
        Ok(())
    }

    /// Builds the validated sim-side cluster blueprint — the
    /// [`SimCluster`] the workload and checking harnesses accept. Useful
    /// when a harness wants to run many seeds against one blueprint;
    /// [`sim`](Self::sim) wraps it into a seeded [`SimHandle`].
    ///
    /// # Errors
    ///
    /// Validation errors; the backend is *not* consulted, so this also
    /// works for live-backed deployments that want a simulated twin.
    pub fn sim_cluster(&self) -> Result<AnySimCluster, DeployError> {
        // Validate with the backend forced to sim (shedding the live-only
        // knobs): this path exists precisely to give live deployments a
        // simulated twin.
        let sim_view = Deployment {
            backend: Backend::Sim { seed: 0 },
            timeout: None,
            tcp_tuning: None,
            audit: None,
            retry: None,
            faults: None,
            ..*self
        };
        sim_view.validate()?;
        Ok(match self.spec {
            Spec::Core(protocol) => {
                let mut cluster = Cluster::new(self.config, protocol);
                if let Some(wire) = self.wire {
                    cluster = cluster.with_fast_wire(wire);
                }
                if let Some(gc) = self.gc {
                    cluster = cluster.with_gc(gc);
                }
                AnySimCluster::Core(cluster)
            }
            Spec::Tunable(spec) => AnySimCluster::Tunable(TunableCluster::new(self.config, spec)),
            Spec::Byz { config, read_mode, behavior } => {
                AnySimCluster::Byz(ByzCluster::new(config, read_mode, behavior))
            }
        })
    }

    /// Deploys on the simulator backend.
    ///
    /// # Errors
    ///
    /// Validation errors, or [`DeployError::WrongBackend`] if the
    /// deployment is configured for a live backend.
    pub fn sim(&self) -> Result<SimHandle, DeployError> {
        self.validate()?;
        let Backend::Sim { seed } = self.backend else {
            return Err(DeployError::WrongBackend {
                requested: "sim",
                configured: self.backend.name(),
            });
        };
        Ok(SimHandle::new(&self.sim_cluster()?, seed))
    }

    /// Deploys on the in-memory live backend: every server on its own
    /// thread over crossbeam channels.
    ///
    /// # Errors
    ///
    /// Validation errors, or [`DeployError::WrongBackend`] if the
    /// deployment is configured for another backend.
    pub fn in_memory(&self) -> Result<LiveHandle<InMemoryTransport>, DeployError> {
        self.validate()?;
        if self.backend != Backend::InMemory {
            return Err(DeployError::WrongBackend {
                requested: "in-memory",
                configured: self.backend.name(),
            });
        }
        self.live_on(InMemoryTransport::new())
    }

    /// Deploys on the TCP live backend: every server on its own thread
    /// behind a loopback socket.
    ///
    /// # Errors
    ///
    /// Validation errors, [`DeployError::WrongBackend`] if the deployment
    /// is configured for another backend, or a
    /// [`DeployError::Transport`] if a socket cannot be bound.
    pub fn tcp(&self) -> Result<LiveHandle<TcpRegistry>, DeployError> {
        self.validate()?;
        if self.backend != Backend::Tcp {
            return Err(DeployError::WrongBackend {
                requested: "tcp",
                configured: self.backend.name(),
            });
        }
        self.live_on(TcpRegistry::new().with_tuning(self.tcp_tuning.unwrap_or_default()))
    }

    fn live_on<F: mwr_runtime::EndpointFactory>(
        &self,
        factory: F,
    ) -> Result<LiveHandle<F>, DeployError> {
        let Spec::Core(protocol) = self.spec else {
            unreachable!("validate() rejects non-core specs on live backends");
        };
        let sidecar = match self.audit {
            Some(cfg) => Some(AuditSidecar::spawn(cfg).map_err(|e| {
                DeployError::Transport(mwr_runtime::TransportError::Io { kind: e.kind() })
            })?),
            None => None,
        };
        let cluster = RuntimeCluster::start_on(factory, self.config, protocol)?;
        Ok(LiveHandle::new(
            cluster,
            self.wire.unwrap_or_default(),
            self.timeout,
            sidecar,
            self.retry.unwrap_or_default(),
            self.faults,
        ))
    }

    /// Deploys on whichever backend this deployment is configured for,
    /// returning the dispatching [`Handle`]. Prefer the typed
    /// [`sim`](Self::sim) / [`in_memory`](Self::in_memory) /
    /// [`tcp`](Self::tcp) when the backend is statically known.
    ///
    /// # Errors
    ///
    /// Validation and transport errors, as for the typed constructors.
    pub fn deploy(&self) -> Result<Handle, DeployError> {
        Ok(match self.backend {
            Backend::Sim { .. } => Handle::Sim(self.sim()?),
            Backend::InMemory => Handle::InMemory(self.in_memory()?),
            Backend::Tcp => Handle::Tcp(self.tcp()?),
        })
    }

    /// Runs one closed-loop contended workload on this deployment's
    /// backend — the same [`WorkloadSpec`] drives simulator clients
    /// (virtual time) and live clients (ticks = microseconds), so a
    /// workload written once compares all three backends.
    ///
    /// On the simulator backend the delays are seeded by the **spec's**
    /// `seed` (overriding [`Backend::Sim`]'s schedule-replay seed), so
    /// sweeping `spec.seed` varies the run exactly as
    /// [`mwr_workload::run_closed_loop`] does; on live backends the
    /// cluster is started, driven, and shut down within the call.
    ///
    /// # Errors
    ///
    /// Validation, simulator, and runtime errors.
    pub fn run_closed_loop(&self, spec: WorkloadSpec) -> Result<WorkloadReport, DeployError> {
        match self.backend {
            Backend::Sim { .. } => {
                let seeded = Deployment { backend: Backend::Sim { seed: spec.seed }, ..*self };
                Ok(seeded.sim()?.run_closed_loop(spec)?)
            }
            Backend::InMemory => {
                let handle = self.in_memory()?;
                let report = handle.run_closed_loop(spec);
                handle.shutdown();
                report
            }
            Backend::Tcp => {
                let handle = self.tcp()?;
                let report = handle.run_closed_loop(spec);
                handle.shutdown();
                report
            }
        }
    }
}

/// The sim-side cluster blueprint behind a deployment: one type
/// implementing [`SimCluster`] over all three protocol families, so any
/// schedule- or workload-driven harness accepts any family.
#[derive(Debug, Clone, Copy)]
pub enum AnySimCluster {
    /// A core crash-tolerant cluster.
    Core(Cluster),
    /// A tunable-quorum cluster.
    Tunable(TunableCluster),
    /// A Byzantine cluster.
    Byz(ByzCluster),
}

impl SimCluster for AnySimCluster {
    fn install(&self, sim: &mut Simulation<Msg, ClientEvent>) {
        match self {
            AnySimCluster::Core(c) => c.install(sim),
            AnySimCluster::Tunable(c) => c.install(sim),
            AnySimCluster::Byz(c) => c.install(sim),
        }
    }

    fn client_config(&self) -> ClusterConfig {
        match self {
            AnySimCluster::Core(c) => c.client_config(),
            AnySimCluster::Tunable(c) => c.client_config(),
            AnySimCluster::Byz(c) => c.client_config(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_byz::{ByzBehavior, ByzConfig, ByzReadMode};
    use mwr_core::ScheduledOp;
    use mwr_sim::SimTime;
    use mwr_types::Value;

    fn config() -> ClusterConfig {
        ClusterConfig::new(5, 1, 2, 2).unwrap()
    }

    fn byz_spec() -> Spec {
        Spec::Byz {
            config: ByzConfig::new(5, 1, 2, 2).unwrap(),
            read_mode: ByzReadMode::Fast,
            behavior: ByzBehavior::StaleReplier,
        }
    }

    #[test]
    fn every_family_deploys_on_the_simulator() {
        let schedule = [
            (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(4) }),
            (SimTime::from_ticks(200), ScheduledOp::Read { reader: 0 }),
        ];
        for spec in [
            Spec::Core(Protocol::W2R1),
            Spec::Tunable(mwr_almost::TunableSpec::strong()),
            byz_spec(),
        ] {
            let mut handle = Deployment::new(config())
                .protocol(spec)
                .backend(Backend::Sim { seed: 3 })
                .sim()
                .unwrap();
            let events = handle.run_schedule(&schedule).unwrap();
            assert!(
                events.iter().any(|(_, e)| matches!(e, ClientEvent::Completed { .. })),
                "{spec:?}: operations complete"
            );
        }
    }

    #[test]
    fn unsupported_family_backend_pairs_are_rejected_with_reasons() {
        for backend in [Backend::InMemory, Backend::Tcp] {
            for spec in [Spec::Tunable(mwr_almost::TunableSpec::fastest()), byz_spec()] {
                let err =
                    Deployment::new(config()).protocol(spec).backend(backend).deploy().unwrap_err();
                let DeployError::Unsupported { backend: b, .. } = err else {
                    panic!("expected Unsupported, got {err}");
                };
                assert_eq!(b, backend.name());
            }
        }
    }

    #[test]
    fn knobs_are_validated_per_combination() {
        // timeout is a live-only knob.
        let err = Deployment::new(config())
            .timeout(Duration::from_secs(1))
            .sim()
            .unwrap_err();
        assert!(matches!(err, DeployError::Knob { knob: "timeout", .. }), "{err}");
        // fast_wire and gc are core-only knobs.
        let err = Deployment::new(config())
            .protocol(mwr_almost::TunableSpec::fastest())
            .fast_wire(FastWire::FullInfo)
            .sim()
            .unwrap_err();
        assert!(matches!(err, DeployError::Knob { knob: "fast_wire", .. }), "{err}");
        let err = Deployment::new(config()).protocol(byz_spec()).gc(false).sim().unwrap_err();
        assert!(matches!(err, DeployError::Knob { knob: "gc", .. }), "{err}");
        // gc cannot be toggled on the live runtime.
        let err = Deployment::new(config())
            .backend(Backend::InMemory)
            .gc(false)
            .in_memory()
            .unwrap_err();
        assert!(matches!(err, DeployError::Knob { knob: "gc", .. }), "{err}");
    }

    #[test]
    fn tcp_tuning_is_validated_per_backend() {
        // TCP-only: the other backends have no writer pipelines.
        for backend in [Backend::Sim { seed: 0 }, Backend::InMemory] {
            let err = Deployment::new(config())
                .backend(backend)
                .tcp_tuning(TcpTuning::default())
                .deploy()
                .unwrap_err();
            assert!(matches!(err, DeployError::Knob { knob: "tcp_tuning", .. }), "{err}");
        }
        // Degenerate pipeline dimensions are rejected up front.
        let err = Deployment::new(config())
            .backend(Backend::Tcp)
            .tcp_tuning(TcpTuning { batch: 0, ..TcpTuning::default() })
            .tcp()
            .unwrap_err();
        assert!(matches!(err, DeployError::Knob { knob: "tcp_tuning", .. }), "{err}");
        // A valid tuning reaches the registry and the cluster works.
        let handle = Deployment::new(config())
            .protocol(Protocol::W2R1)
            .backend(Backend::Tcp)
            .tcp_tuning(TcpTuning { batch: 8, queue_depth: 32, ..TcpTuning::default() })
            .tcp()
            .unwrap();
        let mut w = handle.writer(0).unwrap();
        let mut r = handle.reader(0).unwrap();
        let written = w.write(Value::new(3)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        handle.shutdown();
        // And a live deployment carrying the knob still gets a sim twin.
        let dep = Deployment::new(config())
            .backend(Backend::Tcp)
            .tcp_tuning(TcpTuning::default());
        assert!(dep.sim_cluster().is_ok());
    }

    #[test]
    fn audit_knob_is_validated_per_backend_and_range() {
        use crate::audit::AuditConfig;
        // Live-only: the simulator is checked post-hoc.
        let err = Deployment::new(config()).audit(AuditConfig::default()).sim().unwrap_err();
        assert!(matches!(err, DeployError::Knob { knob: "audit", .. }), "{err}");
        // Degenerate rates and windows are rejected up front.
        for bad in [AuditConfig::sampled(0.0), AuditConfig::sampled(1.5), AuditConfig {
            window: 0,
            ..AuditConfig::default()
        }] {
            let err = Deployment::new(config())
                .backend(Backend::InMemory)
                .audit(bad)
                .in_memory()
                .unwrap_err();
            assert!(matches!(err, DeployError::Knob { knob: "audit", .. }), "{err}");
        }
        // An audited live deployment still gets a sim twin.
        let dep = Deployment::new(config())
            .backend(Backend::InMemory)
            .audit(AuditConfig::default());
        assert!(dep.sim_cluster().is_ok());
    }

    #[test]
    fn retry_and_faults_are_validated_per_backend_and_shape() {
        // Both are live-only knobs.
        let err = Deployment::new(config()).retry(RetryPolicy::default()).sim().unwrap_err();
        assert!(matches!(err, DeployError::Knob { knob: "retry", .. }), "{err}");
        let err = Deployment::new(config()).inject(FaultPlan::new()).sim().unwrap_err();
        assert!(matches!(err, DeployError::Knob { knob: "faults", .. }), "{err}");
        // Zero attempts could never issue the operation.
        let err = Deployment::new(config())
            .backend(Backend::InMemory)
            .retry(RetryPolicy { attempts: 0, backoff: Duration::ZERO })
            .in_memory()
            .unwrap_err();
        assert!(matches!(err, DeployError::Knob { knob: "retry", .. }), "{err}");
        // Server indices must fit the configuration (S = 5 here).
        let err = Deployment::new(config())
            .backend(Backend::InMemory)
            .inject(FaultPlan::new().at_ops(1, FaultEvent::CrashServer(5)))
            .in_memory()
            .unwrap_err();
        assert!(matches!(err, DeployError::Knob { knob: "faults", .. }), "{err}");
        // Churn bursts need a reserved reader slot plus a stable reader.
        let one_reader = ClusterConfig::new(5, 1, 1, 2).unwrap();
        let err = Deployment::new(one_reader)
            .backend(Backend::InMemory)
            .inject(FaultPlan::churn_storm(10, 1, 5))
            .in_memory()
            .unwrap_err();
        assert!(matches!(err, DeployError::Knob { knob: "faults", .. }), "{err}");
        // A live deployment carrying both knobs still gets a sim twin.
        let dep = Deployment::new(config())
            .backend(Backend::InMemory)
            .retry(RetryPolicy { attempts: 3, backoff: Duration::from_millis(1) })
            .inject(FaultPlan::rolling_restart(5, 50));
        assert!(dep.sim_cluster().is_ok());
    }

    #[test]
    fn armed_fault_plans_run_through_run_chaos_only() {
        let dep = Deployment::new(config())
            .backend(Backend::InMemory)
            .retry(RetryPolicy { attempts: 4, backoff: Duration::from_millis(1) })
            .timeout(Duration::from_secs(2))
            .inject(
                FaultPlan::new()
                    .at_ops(10, FaultEvent::CrashServer(0))
                    .at_ops(40, FaultEvent::RejoinServer(0)),
            );
        // The plain drives refuse an armed plan instead of ignoring it.
        let handle = dep.in_memory().unwrap();
        let err = handle.run_open_loop(Duration::from_millis(5)).unwrap_err();
        assert!(matches!(err, DeployError::Knob { knob: "faults", .. }), "{err}");
        let err = handle.run_closed_loop(WorkloadSpec::default()).unwrap_err();
        assert!(matches!(err, DeployError::Knob { knob: "faults", .. }), "{err}");
        handle.shutdown();
        // run_chaos executes the plan and heals the cluster.
        let mut handle = dep.in_memory().unwrap();
        let report = handle.run_chaos(Duration::from_millis(300)).unwrap();
        assert_eq!(report.crashes, 1, "{report:?}");
        assert_eq!(report.rejoins, 1, "{report:?}");
        assert!(report.healed(), "{report:?}");
        assert_eq!(report.live_servers, vec![0, 1, 2, 3, 4]);
        handle.shutdown();
    }

    #[test]
    fn live_handles_reconfigure_with_minted_clients_serving() {
        let mut handle = Deployment::new(config())
            .backend(Backend::InMemory)
            .timeout(Duration::from_secs(2))
            .retry(RetryPolicy { attempts: 4, backoff: Duration::from_millis(2) })
            .in_memory()
            .unwrap();
        let mut w = handle.writer(0).unwrap();
        let mut r = handle.reader(0).unwrap();
        let written = w.write(Value::new(11)).unwrap();
        let added = handle.reconfigure(2, &[0, 1]).unwrap();
        assert_eq!(added, vec![5, 6]);
        assert_eq!(handle.members(), vec![2, 3, 4, 5, 6]);
        // The pre-handover clients keep serving across the epoch change.
        assert_eq!(r.read().unwrap(), written);
        let next = w.write(Value::new(12)).unwrap();
        assert_eq!(r.read().unwrap(), next);
        handle.shutdown();
    }

    #[test]
    fn audited_open_loop_reports_a_clean_verdict() {
        use crate::audit::AuditConfig;
        let handle = Deployment::new(config())
            .backend(Backend::InMemory)
            .audit(AuditConfig { window: 256, ..AuditConfig::default() })
            .in_memory()
            .unwrap();
        let report = handle.run_open_loop(Duration::from_millis(30)).unwrap();
        assert!(report.ops() > 0);
        let (_handled, audit) = handle.shutdown_audited();
        let audit = audit.expect("deployment was armed");
        assert!(audit.verdict.is_ok(), "live traffic must be atomic: {audit}");
        assert!(audit.stats.audited > 0, "operations reached the auditor: {audit}");
        // The window stayed bounded: the high-water mark cannot retain
        // anywhere near the full run.
        assert!(
            audit.stats.window_high_water < audit.stats.audited as usize,
            "auditor truncated settled history: {audit}"
        );
    }

    #[test]
    fn unaudited_handles_report_no_audit() {
        let handle =
            Deployment::new(config()).backend(Backend::InMemory).in_memory().unwrap();
        let (_, audit) = handle.shutdown_audited();
        assert!(audit.is_none());
    }

    #[test]
    fn open_loop_drive_runs_on_a_fresh_handle_only() {
        let handle =
            Deployment::new(config()).backend(Backend::InMemory).in_memory().unwrap();
        let report = handle.run_open_loop(Duration::from_millis(20)).unwrap();
        assert!(report.ops() > 0, "saturating clients complete operations");
        let err = handle.run_open_loop(Duration::from_millis(5)).unwrap_err();
        assert!(matches!(err, DeployError::HandlesInUse), "{err}");
        handle.shutdown();
    }

    #[test]
    fn byz_spec_must_agree_with_the_deployment_config() {
        let err = Deployment::new(ClusterConfig::new(9, 2, 2, 2).unwrap())
            .protocol(byz_spec()) // S=5 b=1
            .sim()
            .unwrap_err();
        assert!(matches!(err, DeployError::ByzMismatch { .. }), "{err}");
    }

    #[test]
    fn typed_starts_enforce_the_configured_backend() {
        let dep = Deployment::new(config()).backend(Backend::InMemory);
        let err = dep.sim().unwrap_err();
        assert!(
            matches!(
                err,
                DeployError::WrongBackend { requested: "sim", configured: "in-memory" }
            ),
            "{err}"
        );
        let err = Deployment::new(config()).tcp().unwrap_err();
        assert!(matches!(err, DeployError::WrongBackend { requested: "tcp", .. }), "{err}");
    }

    #[test]
    fn live_deployments_mint_working_handles_on_both_transports() {
        for backend in [Backend::InMemory, Backend::Tcp] {
            let dep = Deployment::new(config())
                .protocol(Protocol::W2R1)
                .backend(backend)
                .timeout(Duration::from_secs(5));
            let handle = dep.deploy().unwrap();
            let (written, read, handled) = match handle {
                Handle::InMemory(h) => {
                    let mut w = h.writer(0).unwrap();
                    let mut r = h.reader(0).unwrap();
                    let written = w.write(Value::new(7)).unwrap();
                    (written, r.read().unwrap(), h.shutdown())
                }
                Handle::Tcp(h) => {
                    let mut w = h.writer(0).unwrap();
                    let mut r = h.reader(0).unwrap();
                    let written = w.write(Value::new(7)).unwrap();
                    (written, r.read().unwrap(), h.shutdown())
                }
                Handle::Sim(_) => unreachable!("live backend configured"),
            };
            assert_eq!(read, written, "{}", backend.name());
            assert!(handled > 0);
        }
    }

    #[test]
    fn run_closed_loop_on_the_sim_backend_honors_the_spec_seed() {
        // The facade and the standalone workload driver must agree on
        // seed semantics: `Deployment::run_closed_loop` seeds the sim
        // from spec.seed (as every seed-sweeping harness expects), not
        // from the backend's schedule-replay seed. Pinned by equality
        // with the standalone driver, which takes spec.seed by contract.
        let dep = Deployment::new(config()).protocol(Protocol::W2R1);
        let spec = WorkloadSpec {
            duration: mwr_sim::SimTime::from_ticks(1_000),
            think_time: mwr_sim::SimTime::from_ticks(5),
            seed: 4, // deliberately different from the backend's seed 0
        };
        let facade = dep.run_closed_loop(spec).unwrap();
        let direct =
            mwr_workload::run_closed_loop(&dep.sim_cluster().unwrap(), spec).unwrap();
        assert_eq!(facade.events, direct.events, "facade must replay the driver's run");
        // And the seed genuinely reaches the simulation: a handle built
        // on the matching backend seed reproduces the same stream.
        let handle_events =
            dep.backend(Backend::Sim { seed: spec.seed }).sim().unwrap().run_closed_loop(spec);
        assert_eq!(facade.events, handle_events.unwrap().events);
    }

    #[test]
    fn live_closed_loop_refuses_a_handle_with_minted_clients() {
        let handle =
            Deployment::new(config()).backend(Backend::InMemory).in_memory().unwrap();
        let _writer = handle.writer(0).unwrap();
        let err = handle.run_closed_loop(WorkloadSpec::default()).unwrap_err();
        assert!(matches!(err, DeployError::HandlesInUse), "{err}");
        handle.shutdown();
    }

    #[test]
    fn live_closed_loop_refuses_a_second_run_on_the_same_handle() {
        // The driver opened every client endpoint during the first run;
        // both a re-run and a later writer() must be turned away cleanly
        // rather than colliding with the driver's endpoints.
        let handle =
            Deployment::new(config()).backend(Backend::InMemory).in_memory().unwrap();
        let spec = WorkloadSpec {
            duration: mwr_sim::SimTime::from_ticks(2_000), // 2 ms live
            think_time: mwr_sim::SimTime::from_ticks(100),
            seed: 0,
        };
        handle.run_closed_loop(spec).unwrap();
        let err = handle.run_closed_loop(spec).unwrap_err();
        assert!(matches!(err, DeployError::HandlesInUse), "{err}");
        let err = handle.writer(0).unwrap_err();
        assert!(matches!(err, DeployError::HandlesInUse), "{err}");
        handle.shutdown();
    }

    #[test]
    fn byz_constructor_derives_the_crash_view() {
        let byz = ByzConfig::new(9, 2, 3, 2).unwrap();
        let dep = Deployment::byz(byz, ByzReadMode::Fast, ByzBehavior::Honest);
        assert_eq!(dep.config(), ClusterConfig::new(9, 2, 3, 2).unwrap());
        assert!(dep.validate().is_ok(), "derived crash view always agrees");
    }

    #[test]
    fn sim_cluster_gives_live_deployments_a_simulated_twin() {
        let dep = Deployment::new(config())
            .protocol(Protocol::W2R1)
            .backend(Backend::Tcp)
            .timeout(Duration::from_secs(1));
        let twin = dep.sim_cluster().unwrap();
        let events = twin
            .run_schedule(
                9,
                &[(SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(1) })],
            )
            .unwrap();
        assert!(!events.is_empty());
    }
}
