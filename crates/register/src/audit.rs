//! Continuous linearizability auditing of live deployments.
//!
//! [`Deployment::audit`](crate::Deployment::audit) arms a live deployment
//! with an [`AuditConfig`]. The resulting
//! [`LiveHandle`](crate::LiveHandle) then owns an **audit sidecar**: every
//! client the handle mints (or its workload drivers mint) carries an
//! [`AuditTap`](mwr_runtime::AuditTap) emitting sampled operation records,
//! and a dedicated thread folds those records into `mwr-check`'s
//! [`StreamingAuditor`](mwr_check::StreamingAuditor) — atomicity is
//! checked *while the traffic runs*, with the auditor's window truncation
//! keeping memory bounded under indefinite load.
//!
//! Collect the verdict with
//! [`LiveHandle::shutdown_audited`](crate::LiveHandle::shutdown_audited),
//! which drains the tap, finalizes the auditor, and returns the
//! [`AuditReport`] next to the usual handled-requests count.
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use mwr_core::Protocol;
//! use mwr_register::{AuditConfig, Backend, Deployment};
//! use mwr_types::ClusterConfig;
//!
//! let config = ClusterConfig::new(3, 1, 1, 1)?;
//! let live = Deployment::new(config)
//!     .protocol(Protocol::W2R1)
//!     .backend(Backend::InMemory)
//!     .audit(AuditConfig::default()) // sample every operation
//!     .in_memory()?;
//! live.run_open_loop(Duration::from_millis(5))?;
//! let (_handled, report) = live.shutdown_audited();
//! let report = report.expect("deployment was armed with an auditor");
//! assert!(report.verdict.is_ok(), "live traffic was atomic: {report}");
//! assert!(report.stats.audited > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::thread::{self, JoinHandle};

use mwr_check::{AuditReport, StreamConfig, StreamingAuditor};
use mwr_runtime::{AuditReceiver, AuditTap, DEFAULT_TAP_CAPACITY};

/// What the audit sidecar does the moment the streaming verdict turns
/// into a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnViolation {
    /// Keep consuming records; the violation is carried (sticky) in the
    /// final [`AuditReport`].
    #[default]
    Record,
    /// Panic the sidecar thread immediately — fail fast for CI fault
    /// scenarios. The panic is re-raised on the thread that collects the
    /// report via [`shutdown_audited`](crate::LiveHandle::shutdown_audited).
    Panic,
}

/// Continuous-audit knob for live deployments, set via
/// [`Deployment::audit`](crate::Deployment::audit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditConfig {
    /// Fraction of reads sampled into the auditor, in `(0, 1]`. Writes
    /// are always recorded — they are the scarce events every read's
    /// verdict depends on.
    pub sample_rate: f64,
    /// Bound on completed operations the auditor retains before forcing a
    /// check-and-truncate pass (the streaming window).
    pub window: usize,
    /// What to do when a violation surfaces mid-run.
    pub on_violation: OnViolation,
}

impl Default for AuditConfig {
    fn default() -> Self {
        let stream = StreamConfig::default();
        AuditConfig {
            sample_rate: 1.0,
            window: stream.window,
            on_violation: OnViolation::Record,
        }
    }
}

impl AuditConfig {
    /// Audit a `rate` fraction of reads (writes are always recorded),
    /// with the default window and [`OnViolation::Record`].
    pub fn sampled(rate: f64) -> Self {
        AuditConfig { sample_rate: rate, ..AuditConfig::default() }
    }
}

/// The armed sidecar a [`LiveHandle`](crate::LiveHandle) owns: the tap its
/// clients write into, plus the thread folding tap records into the
/// streaming auditor.
///
/// Public so the keyspace facade (`mwr-keyspace`) can arm one sidecar per
/// register: atomicity is a per-register property, so each register's
/// clients share a tap and get their own verdict.
#[derive(Debug)]
pub struct AuditSidecar {
    tap: AuditTap,
    join: JoinHandle<AuditReport>,
}

impl AuditSidecar {
    /// Creates the tap and spawns the consuming thread.
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::Error`] if the OS refuses to spawn the
    /// sidecar thread.
    pub fn spawn(cfg: AuditConfig) -> std::io::Result<AuditSidecar> {
        let (tap, rx) = AuditTap::bounded(cfg.sample_rate, DEFAULT_TAP_CAPACITY);
        let stream = StreamConfig { window: cfg.window.max(1), ..StreamConfig::default() };
        let on_violation = cfg.on_violation;
        let join = thread::Builder::new()
            .name("mwr-audit".into())
            .spawn(move || sidecar_loop(&rx, stream, on_violation))?;
        Ok(AuditSidecar { tap, join })
    }

    /// The tap to clone into every client this deployment mints.
    pub fn tap(&self) -> &AuditTap {
        &self.tap
    }

    /// Drops the handle's tap clone and joins the sidecar. Minted clients
    /// hold their own tap clones, so the join completes once they are all
    /// dropped; a sidecar that panicked ([`OnViolation::Panic`]) re-raises
    /// here.
    pub fn finish(self) -> AuditReport {
        let AuditSidecar { tap, join } = self;
        drop(tap);
        match join.join() {
            Ok(report) => report,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

fn sidecar_loop(rx: &AuditReceiver, cfg: StreamConfig, on_violation: OnViolation) -> AuditReport {
    let mut auditor = StreamingAuditor::new(cfg);
    while let Ok(record) = rx.recv() {
        auditor.observe(record);
        if on_violation == OnViolation::Panic && !auditor.verdict().is_ok() {
            panic!("live linearizability violation: {:?}", auditor.verdict());
        }
    }
    auditor.finish()
}
