//! Deployment-time and run-time errors of the facade.

use std::fmt;

use mwr_runtime::{RuntimeError, TransportError};
use mwr_sim::SimError;

/// Why a [`Deployment`](crate::Deployment) could not be built or run.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// The protocol family is not wired to the requested backend (yet).
    Unsupported {
        /// The spec's family (`core`, `tunable`, `byzantine`).
        family: &'static str,
        /// The requested backend (`sim`, `in-memory`, `tcp`).
        backend: &'static str,
        /// What is missing.
        reason: &'static str,
    },
    /// A knob was set that the chosen protocol/backend combination does
    /// not accept.
    Knob {
        /// The offending knob (`fast_wire`, `gc`, `timeout`).
        knob: &'static str,
        /// Why the combination rejects it.
        reason: &'static str,
    },
    /// The Byzantine spec's own configuration disagrees with the
    /// deployment's cluster configuration.
    ByzMismatch {
        /// Rendered description of the disagreement.
        detail: String,
    },
    /// A typed start method was called for a backend other than the one
    /// configured with [`Deployment::backend`](crate::Deployment::backend).
    WrongBackend {
        /// The backend the start method builds.
        requested: &'static str,
        /// The backend the deployment is configured for.
        configured: &'static str,
    },
    /// `run_closed_loop` was called on a live handle that had already
    /// minted `writer()`/`reader()` clients; the closed-loop driver needs
    /// the client endpoints for itself. Deploy a fresh handle (or use
    /// `Deployment::run_closed_loop`, which always does).
    HandlesInUse,
    /// The live transport failed while starting servers or opening client
    /// endpoints.
    Transport(TransportError),
    /// The simulator reported an error while driving a workload.
    Sim(SimError),
    /// A live client operation failed while driving a workload.
    Runtime(RuntimeError),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Unsupported { family, backend, reason } => {
                write!(f, "the {family} family is not supported on the {backend} backend: {reason}")
            }
            DeployError::Knob { knob, reason } => {
                write!(f, "the {knob} knob does not apply here: {reason}")
            }
            DeployError::ByzMismatch { detail } => {
                write!(f, "byzantine spec disagrees with the deployment config: {detail}")
            }
            DeployError::WrongBackend { requested, configured } => write!(
                f,
                "deployment is configured for the {configured} backend, not {requested}; \
                 adjust .backend(..) or call the matching start method"
            ),
            DeployError::HandlesInUse => write!(
                f,
                "run_closed_loop needs a freshly deployed live handle: writer()/reader() \
                 clients were already minted on this one"
            ),
            DeployError::Transport(e) => write!(f, "transport: {e}"),
            DeployError::Sim(e) => write!(f, "simulator: {e}"),
            DeployError::Runtime(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<TransportError> for DeployError {
    fn from(e: TransportError) -> Self {
        DeployError::Transport(e)
    }
}

impl From<SimError> for DeployError {
    fn from(e: SimError) -> Self {
        DeployError::Sim(e)
    }
}

impl From<RuntimeError> for DeployError {
    fn from(e: RuntimeError) -> Self {
        DeployError::Runtime(e)
    }
}
