//! One register API: the [`Deployment`] facade over every `mwr` protocol
//! family and every backend.
//!
//! The paper's contribution is a *design space* — W2R1/W2R2/W2Ra and the
//! provably-impossible fast-write points — and the workspace grows three
//! protocol families over it (the core crash-tolerant protocols, the
//! tunable-quorum "almost strong" clients, and the Byzantine masking-quorum
//! extension) plus three execution backends (the deterministic simulator,
//! the in-memory thread runtime, and loopback TCP). This crate is the
//! single entry point that assembles any supported combination:
//!
//! ```text
//! Deployment::new(config)           what cluster: S, t, R, W
//!     .protocol(spec)               which family/protocol: Spec::{Core,Tunable,Byz}
//!     .backend(backend)             where it runs: Backend::{Sim, InMemory, Tcp}
//!     .fast_wire(..) .gc(..)        optional knobs, validated per combination
//!     .timeout(..) .audit(..)
//!     .retry(..) .inject(..)
//!     .sim() / .in_memory() / .tcp() / .deploy()
//! ```
//!
//! Unsupported combinations (e.g. a Byzantine cluster over TCP, which is
//! not wired yet) are rejected with a [`DeployError`] explaining exactly
//! which pair is unsupported, instead of failing deep inside a transport.
//!
//! # Examples
//!
//! The paper's W2R1 register, simulated and then live, through one API:
//!
//! ```
//! use mwr_core::{Protocol, ScheduledOp};
//! use mwr_register::{Backend, Deployment};
//! use mwr_sim::SimTime;
//! use mwr_types::{ClusterConfig, Value};
//!
//! let config = ClusterConfig::new(5, 1, 2, 2)?;
//!
//! // Deterministic simulation: schedule-driven, checkable.
//! let mut sim = Deployment::new(config)
//!     .protocol(Protocol::W2R1)
//!     .backend(Backend::Sim { seed: 42 })
//!     .sim()?;
//! let events = sim.run_schedule(&[
//!     (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(7) }),
//!     (SimTime::from_ticks(100), ScheduledOp::Read { reader: 0 }),
//! ])?;
//! assert_eq!(events.len(), 5);
//!
//! // The same register on real threads: blocking writer/reader handles.
//! let live = Deployment::new(config)
//!     .protocol(Protocol::W2R1)
//!     .backend(Backend::InMemory)
//!     .in_memory()?;
//! let mut writer = live.writer(0)?;
//! let mut reader = live.reader(0)?;
//! let written = writer.write(Value::new(9))?;
//! assert_eq!(reader.read()?, written);
//! live.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
mod deploy;
mod error;
mod handle;
mod spec;

pub use audit::{AuditConfig, AuditSidecar, OnViolation};
pub use deploy::{AnySimCluster, Deployment};
pub use error::DeployError;
pub use handle::{Handle, LiveHandle, Reader, SimHandle, Writer};
pub use spec::{Backend, Spec};

// The vocabulary a facade user needs without naming the member crates.
pub use mwr_check::{AuditReport, AuditStats, Verdict, Violation};
pub use mwr_core::{FastWire, Protocol, ScheduledOp, SimCluster};
pub use mwr_runtime::{FaultEvent, FaultPlan, FaultStep, FaultTrigger, RetryPolicy, TcpTuning};
pub use mwr_workload::ChaosReport;
