//! What a deployment yields: a schedule-driven [`SimHandle`] on the
//! simulator backend, a [`LiveHandle`] minting blocking [`Writer`]/
//! [`Reader`] clients on the live backends.

use std::time::Duration;

use mwr_core::{ClientEvent, FastWire, Msg, ScheduledOp, SimCluster};
use mwr_runtime::{
    EndpointFactory, FaultPlan, InMemoryTransport, LiveReader, LiveWriter, RetryPolicy,
    RuntimeCluster, TcpRegistry,
};
use mwr_sim::{SimError, SimTime, Simulation};
use mwr_types::ClusterConfig;
use mwr_check::AuditReport;
use mwr_workload::{
    drive_closed_loop, run_chaos_live, run_closed_loop_live_audited, run_open_loop_live_audited,
    ChaosReport, ThroughputReport, WorkloadReport, WorkloadSpec,
};

use crate::audit::AuditSidecar;
use crate::deploy::AnySimCluster;
use crate::error::DeployError;

/// A blocking writer handle on a live backend: `write(value)` returns the
/// tagged value the register now holds.
pub type Writer<E> = LiveWriter<E>;

/// A blocking reader handle on a live backend: `read()` returns the
/// current tagged value.
pub type Reader<E> = LiveReader<E>;

/// A deployed register on the simulator backend: an assembled simulation
/// plus schedule-driven execution.
///
/// Obtained from [`Deployment::sim`](crate::Deployment::sim). The
/// underlying [`Simulation`] is exposed through
/// [`sim_mut`](Self::sim_mut) for delay models, geo matrices, crash and
/// partition schedules.
#[derive(Debug)]
pub struct SimHandle {
    config: ClusterConfig,
    sim: Simulation<Msg, ClientEvent>,
}

impl SimHandle {
    pub(crate) fn new(cluster: &AnySimCluster, seed: u64) -> Self {
        SimHandle { config: cluster.client_config(), sim: cluster.build_sim(seed) }
    }

    /// The crash-view cluster configuration operations are scheduled
    /// against.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The assembled simulation.
    pub fn sim(&self) -> &Simulation<Msg, ClientEvent> {
        &self.sim
    }

    /// Mutable access to the simulation, for delay models, geo matrices,
    /// crash schedules and link holds before (or between) runs.
    pub fn sim_mut(&mut self) -> &mut Simulation<Msg, ClientEvent> {
        &mut self.sim
    }

    /// Schedules one operation invocation at virtual time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcess`] if the reader/writer index is
    /// out of range for the configuration.
    pub fn schedule(&mut self, at: SimTime, op: ScheduledOp) -> Result<(), SimError> {
        op.schedule_into(&mut self.sim, at)
    }

    /// Runs the simulation to quiescence and returns the client events
    /// emitted since the last drain.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (livelock guard).
    pub fn run_to_quiescence(&mut self) -> Result<Vec<(SimTime, ClientEvent)>, SimError> {
        self.sim.run_until_quiescent()?;
        Ok(self.sim.drain_notifications())
    }

    /// Schedules a full harness schedule and runs it to quiescence — the
    /// facade's equivalent of `SimCluster::run_schedule`, on the seed the
    /// deployment's backend fixed.
    ///
    /// # Errors
    ///
    /// Propagates scheduling and simulation errors.
    pub fn run_schedule(
        &mut self,
        ops: &[(SimTime, ScheduledOp)],
    ) -> Result<Vec<(SimTime, ClientEvent)>, SimError> {
        for (at, op) in ops {
            op.schedule_into(&mut self.sim, *at)?;
        }
        self.run_to_quiescence()
    }

    /// Drives this simulation with closed-loop clients (see
    /// [`mwr_workload::run_closed_loop`]). The simulation must be fresh:
    /// each handle supports one closed-loop run.
    ///
    /// The spec's `seed` is ignored here — delays were already seeded by
    /// [`Backend::Sim`](crate::Backend::Sim) when the handle was built.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_closed_loop(&mut self, spec: WorkloadSpec) -> Result<WorkloadReport, SimError> {
        drive_closed_loop(&mut self.sim, self.config, spec)
    }
}

/// A deployed register on a live backend: servers running, blocking
/// clients on demand, with the deployment's wire and timeout knobs applied
/// to every handle it mints.
///
/// Obtained from [`Deployment::in_memory`](crate::Deployment::in_memory)
/// or [`Deployment::tcp`](crate::Deployment::tcp).
#[derive(Debug)]
pub struct LiveHandle<F: EndpointFactory> {
    cluster: RuntimeCluster<F>,
    wire: FastWire,
    timeout: Option<Duration>,
    /// Whether `writer()`/`reader()` has minted a client — the closed-loop
    /// driver needs the client endpoints exclusively, so it refuses to run
    /// once this is set (uniformly on both transports).
    minted: std::cell::Cell<bool>,
    /// Whether `run_closed_loop` has driven this cluster — its driver
    /// opened every client endpoint, so later minting (or a second run)
    /// is refused (uniformly on both transports).
    driven: std::cell::Cell<bool>,
    /// The streaming-audit sidecar, when the deployment was armed with
    /// [`Deployment::audit`](crate::Deployment::audit): every client this
    /// handle mints gets a tap clone, and `shutdown_audited` collects the
    /// verdict.
    audit: Option<AuditSidecar>,
    /// The bounded retry policy applied to every client this handle mints
    /// (and to the drive's clients). Default: one attempt, no backoff.
    retry: RetryPolicy,
    /// The fault plan armed with [`Deployment::inject`](crate::Deployment::inject),
    /// executed by [`run_chaos`](Self::run_chaos).
    faults: Option<FaultPlan>,
}

impl<F: EndpointFactory> LiveHandle<F> {
    pub(crate) fn new(
        cluster: RuntimeCluster<F>,
        wire: FastWire,
        timeout: Option<Duration>,
        audit: Option<AuditSidecar>,
        retry: RetryPolicy,
        faults: Option<FaultPlan>,
    ) -> Self {
        LiveHandle {
            cluster,
            wire,
            timeout,
            minted: std::cell::Cell::new(false),
            driven: std::cell::Cell::new(false),
            audit,
            retry,
            faults,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.cluster.config()
    }

    /// The underlying runtime cluster, for transport-level access.
    pub fn cluster(&self) -> &RuntimeCluster<F> {
        &self.cluster
    }

    /// Creates writer `idx`'s blocking client, with the deployment's
    /// timeout applied.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::HandlesInUse`] after
    /// [`run_closed_loop`](Self::run_closed_loop) has driven this handle
    /// (its driver holds every client endpoint), or a
    /// [`DeployError::Transport`] if the client endpoint cannot be
    /// opened.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the writer was already created.
    pub fn writer(&self, idx: u32) -> Result<Writer<F::Endpoint>, DeployError> {
        if self.driven.get() {
            return Err(DeployError::HandlesInUse);
        }
        let mut writer = self.cluster.writer(idx)?.with_retry(self.retry);
        self.minted.set(true);
        if let Some(t) = self.timeout {
            writer = writer.with_timeout(t);
        }
        if let Some(sidecar) = &self.audit {
            writer = writer.with_tap(sidecar.tap().clone());
        }
        Ok(writer)
    }

    /// Creates reader `idx`'s blocking client, with the deployment's wire
    /// format and timeout applied.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::HandlesInUse`] after
    /// [`run_closed_loop`](Self::run_closed_loop) has driven this handle,
    /// or a [`DeployError::Transport`] if the client endpoint cannot be
    /// opened.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the reader was already created.
    pub fn reader(&self, idx: u32) -> Result<Reader<F::Endpoint>, DeployError> {
        if self.driven.get() {
            return Err(DeployError::HandlesInUse);
        }
        let mut reader = self.cluster.reader_with_wire(idx, self.wire)?.with_retry(self.retry);
        self.minted.set(true);
        if let Some(t) = self.timeout {
            reader = reader.with_timeout(t);
        }
        if let Some(sidecar) = &self.audit {
            reader = reader.with_tap(sidecar.tap().clone());
        }
        Ok(reader)
    }

    /// Crashes server `idx` (removes it from delivery and stops its
    /// thread) — fault injection, identical on both live backends.
    ///
    /// # Panics
    ///
    /// Panics if the server was already crashed.
    pub fn crash_server(&mut self, idx: u32) {
        self.cluster.crash_server(idx);
    }

    /// Rejoins crashed server `idx` through quorum state transfer: the
    /// new incarnation fetches catch-up snapshots from a quorum of live
    /// peers, installs them above its pre-crash version stamps, and only
    /// then starts answering — identical on both live backends.
    ///
    /// # Errors
    ///
    /// A [`DeployError::Transport`] if fewer than a quorum of live peers
    /// answer the fetch (the rejoin is refused and can be retried).
    ///
    /// # Panics
    ///
    /// Panics if server `idx` is currently running.
    pub fn rejoin_server(&mut self, idx: u32) -> Result<(), DeployError> {
        Ok(self.cluster.rejoin_server(idx)?)
    }

    /// The indices of currently-running servers, ascending.
    pub fn live_servers(&self) -> Vec<u32> {
        self.cluster.live_servers()
    }

    /// The current member servers, ascending — differs from the original
    /// configuration after a [`reconfigure`](Self::reconfigure).
    pub fn members(&self) -> Vec<u32> {
        self.cluster.members().to_vec()
    }

    /// Reconfigures the live server set: adds `add` fresh servers and
    /// retires the servers in `remove` through the joint-quorum handover
    /// (announce → joint window → state transfer → commit) while minted
    /// clients keep serving — they watch the cluster view and refresh
    /// their endpoint sets mid-round when the config epoch moves.
    /// Identical on both live backends. Returns the added servers' ids.
    ///
    /// # Errors
    ///
    /// A [`DeployError::Transport`] if the handover is refused (it could
    /// not assemble both the old and the new quorum within the window) —
    /// the cluster rolls forward to a stable epoch over the unchanged
    /// member set and can be retried.
    ///
    /// # Panics
    ///
    /// Panics if `remove` names a non-member, if the change is empty, or
    /// if the resulting shape would not assemble quorums.
    pub fn reconfigure(&mut self, add: usize, remove: &[u32]) -> Result<Vec<u32>, DeployError> {
        Ok(self.cluster.reconfigure(add, remove)?)
    }

    /// Drives this cluster with closed-loop clients (see
    /// [`mwr_workload::run_closed_loop_live`]; ticks are microseconds).
    /// The driver opens every client endpoint itself, so the handle must
    /// be freshly deployed — [`Deployment::run_closed_loop`](crate::Deployment::run_closed_loop)
    /// always satisfies this.
    ///
    /// # Errors
    ///
    /// [`DeployError::HandlesInUse`] if `writer()`/`reader()` already
    /// minted a client on this handle; otherwise the first client's
    /// [`RuntimeError`](mwr_runtime::RuntimeError) on endpoint or quorum
    /// failures.
    pub fn run_closed_loop(&self, spec: WorkloadSpec) -> Result<WorkloadReport, DeployError> {
        if self.minted.get() || self.driven.get() {
            return Err(DeployError::HandlesInUse);
        }
        if self.faults.is_some() {
            return Err(DeployError::Knob {
                knob: "faults",
                reason: "a fault plan is armed; drive it with run_chaos, which owns the \
                         cluster mutably and reports what the plan did",
            });
        }
        self.driven.set(true);
        let tap = self.audit.as_ref().map(AuditSidecar::tap);
        Ok(run_closed_loop_live_audited(
            &self.cluster,
            self.wire,
            self.timeout,
            self.retry,
            spec,
            tap,
        )?)
    }

    /// Drives this cluster with open-loop (saturating) clients for
    /// `duration` (see [`mwr_workload::run_open_loop_live`]): every
    /// configured reader and writer issues back-to-back operations, so the
    /// offered load is set by the deployment's client population. Like
    /// [`run_closed_loop`](Self::run_closed_loop), the driver needs every
    /// client endpoint, so the handle must be freshly deployed.
    ///
    /// # Errors
    ///
    /// [`DeployError::HandlesInUse`] if clients were already minted or a
    /// drive already ran; otherwise the first client's
    /// [`RuntimeError`](mwr_runtime::RuntimeError).
    pub fn run_open_loop(&self, duration: Duration) -> Result<ThroughputReport, DeployError> {
        if self.minted.get() || self.driven.get() {
            return Err(DeployError::HandlesInUse);
        }
        if self.faults.is_some() {
            return Err(DeployError::Knob {
                knob: "faults",
                reason: "a fault plan is armed; drive it with run_chaos, which owns the \
                         cluster mutably and reports what the plan did",
            });
        }
        self.driven.set(true);
        let tap = self.audit.as_ref().map(AuditSidecar::tap);
        Ok(run_open_loop_live_audited(
            &self.cluster,
            self.wire,
            self.timeout,
            self.retry,
            duration,
            tap,
        )?)
    }

    /// Drives this cluster open-loop for `duration` while executing the
    /// armed [`FaultPlan`] (see
    /// [`Deployment::inject`](crate::Deployment::inject)): an injector
    /// walks the plan in order, crashing servers, rejoining them through
    /// quorum state transfer, and running churn bursts of short-lived
    /// clients that depart floor-safely, while stable clients (armed with
    /// the deployment's retry policy) hammer the register. Works with no
    /// plan armed too — it is then exactly
    /// [`run_open_loop`](Self::run_open_loop) with a
    /// [`ChaosReport`] wrapper.
    ///
    /// Like the other drives, the handle must be freshly deployed; unlike
    /// them it needs `&mut` because crash and rejoin restructure the
    /// cluster.
    ///
    /// # Errors
    ///
    /// [`DeployError::HandlesInUse`] if clients were already minted or a
    /// drive already ran; otherwise a
    /// [`RuntimeError`](mwr_runtime::RuntimeError) for setup failures.
    /// Operation failures *during* the drive are counted in the report's
    /// `failed_ops`, never returned.
    pub fn run_chaos(&mut self, duration: Duration) -> Result<ChaosReport, DeployError> {
        if self.minted.get() || self.driven.get() {
            return Err(DeployError::HandlesInUse);
        }
        self.driven.set(true);
        let tap = self.audit.as_ref().map(AuditSidecar::tap);
        Ok(run_chaos_live(
            &mut self.cluster,
            self.wire,
            self.timeout,
            self.retry,
            self.faults.unwrap_or_default(),
            duration,
            tap,
        )?)
    }

    /// Shuts down all remaining servers; returns total requests handled.
    /// On an audited handle this discards the audit verdict — use
    /// [`shutdown_audited`](Self::shutdown_audited) to collect it.
    pub fn shutdown(self) -> u64 {
        self.cluster.shutdown()
    }

    /// Shuts down all remaining servers and collects the audit sidecar's
    /// final [`AuditReport`] (`None` if the deployment was not armed with
    /// [`Deployment::audit`](crate::Deployment::audit)).
    ///
    /// Joining the sidecar requires every tap clone to be gone: drop all
    /// minted [`Writer`]/[`Reader`] clients before calling, or the join
    /// blocks until they drop. A sidecar configured with
    /// [`OnViolation::Panic`](crate::OnViolation::Panic) that hit a
    /// violation re-raises its panic here.
    pub fn shutdown_audited(self) -> (u64, Option<AuditReport>) {
        let LiveHandle { cluster, audit, .. } = self;
        let report = audit.map(AuditSidecar::finish);
        (cluster.shutdown(), report)
    }
}

/// A deployed register on whichever backend the deployment selected —
/// the result of [`Deployment::deploy`](crate::Deployment::deploy), for
/// callers that dispatch over backends at run time. Callers that know the
/// backend statically should prefer the typed
/// [`sim`](crate::Deployment::sim) /
/// [`in_memory`](crate::Deployment::in_memory) /
/// [`tcp`](crate::Deployment::tcp) constructors, which skip the enum.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one short-lived dispatcher per deployment
pub enum Handle {
    /// The simulator backend.
    Sim(SimHandle),
    /// The in-memory live backend.
    InMemory(LiveHandle<InMemoryTransport>),
    /// The TCP live backend.
    Tcp(LiveHandle<TcpRegistry>),
}

impl Handle {
    /// Extracts the simulator handle.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::WrongBackend`] if another backend was
    /// deployed.
    pub fn into_sim(self) -> Result<SimHandle, DeployError> {
        match self {
            Handle::Sim(h) => Ok(h),
            other => Err(DeployError::WrongBackend {
                requested: "sim",
                configured: other.backend_name(),
            }),
        }
    }

    /// The deployed backend's name.
    pub fn backend_name(&self) -> &'static str {
        match self {
            Handle::Sim(_) => "sim",
            Handle::InMemory(_) => "in-memory",
            Handle::Tcp(_) => "tcp",
        }
    }
}
