//! What to deploy ([`Spec`]) and where to run it ([`Backend`]).

use mwr_almost::TunableSpec;
use mwr_byz::{ByzBehavior, ByzConfig, ByzReadMode};
use mwr_core::Protocol;

/// The protocol family and its parameters: which register emulation the
/// deployment runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Spec {
    /// A core crash-tolerant protocol from the paper's design space
    /// (W2R2, W2R1, W2Ra, the single-writer points, or the naive
    /// impossibility witnesses).
    Core(Protocol),
    /// Tunable-quorum clients (Cassandra-style consistency levels, §7
    /// future work). Simulator-only for now.
    Tunable(TunableSpec),
    /// Byzantine masking-quorum clusters (§5 extension). Simulator-only
    /// for now.
    Byz {
        /// Masking-quorum arithmetic: `S`, `b`, `R`, `W`. Must agree with
        /// the deployment's [`ClusterConfig`](mwr_types::ClusterConfig)
        /// under `t = b`.
        config: ByzConfig,
        /// Vouched slow (two round-trips) or vouched fast (one) reads.
        read_mode: ByzReadMode,
        /// The behavior assigned to the `b` Byzantine servers.
        behavior: ByzBehavior,
    },
}

impl Spec {
    /// The family name, used in error messages.
    pub fn family(&self) -> &'static str {
        match self {
            Spec::Core(_) => "core",
            Spec::Tunable(_) => "tunable",
            Spec::Byz { .. } => "byzantine",
        }
    }
}

impl From<Protocol> for Spec {
    fn from(protocol: Protocol) -> Self {
        Spec::Core(protocol)
    }
}

impl From<TunableSpec> for Spec {
    fn from(spec: TunableSpec) -> Self {
        Spec::Tunable(spec)
    }
}

/// The execution backend: where the deployed register runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The deterministic discrete-event simulator — schedule-driven,
    /// reproducible, checkable.
    Sim {
        /// RNG seed for message delays and delivery order.
        seed: u64,
    },
    /// The live runtime over in-memory crossbeam channels: one thread per
    /// server, blocking clients.
    InMemory,
    /// The live runtime over loopback TCP sockets with length-prefixed
    /// frames.
    Tcp,
}

impl Backend {
    /// The backend name, used in error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Sim { .. } => "sim",
            Backend::InMemory => "in-memory",
            Backend::Tcp => "tcp",
        }
    }
}
