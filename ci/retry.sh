#!/usr/bin/env bash
# Retry-once wrapper for CI steps that can die to runner infrastructure
# (a wedged socket accept, a starved timing-sensitive test on the shared
# 1-core box) rather than to a real regression. Runs the command; on a
# non-zero exit, runs it exactly once more. Both attempts' combined
# stdout/stderr — including the runtime's server/client thread panics —
# are tee'd to ci-logs/<slug>.log so a failing job can upload its
# diagnostics as artifacts instead of timing out silently.
#
# Usage: ci/retry.sh <command> [args...]
set -uo pipefail

if [ "$#" -eq 0 ]; then
  echo "usage: ci/retry.sh <command> [args...]" >&2
  exit 2
fi

slug="$(printf '%s' "$*" | tr -c 'A-Za-z0-9._-' '_' | cut -c1-100)"
log="ci-logs/${slug}.log"
mkdir -p ci-logs

status=1
for attempt in 1 2; do
  {
    echo "=== attempt ${attempt}: $*"
    date -u +'=== started %Y-%m-%dT%H:%M:%SZ'
  } | tee -a "$log"
  "$@" 2>&1 | tee -a "$log"
  status=${PIPESTATUS[0]}
  if [ "$status" -eq 0 ]; then
    if [ "$attempt" -eq 2 ]; then
      echo "::warning::passed on retry (attempt 2): $*"
    fi
    exit 0
  fi
  echo "::warning::attempt ${attempt} failed (exit ${status}): $*" | tee -a "$log"
done

echo "::error::failed twice (exit ${status}): $* — full output in ${log}"
exit "$status"
